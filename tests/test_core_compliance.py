"""Tests for the RFC 9276 compliance engine (the paper's core logic)."""

import pytest

from repro.core.guidance import GUIDANCE, Audience, Requirement, item
from repro.core.resolver_compliance import (
    PROBE_ITERATIONS,
    ProbeResult,
    classify_resolver,
)
from repro.core.resolver_compliance import summarize as summarize_resolvers
from repro.core.zone_compliance import (
    Nsec3Observation,
    check_rfc5155_consistency,
    check_zone_compliance,
)
from repro.core.zone_compliance import summarize as summarize_zones
from repro.dns.edns import EDE_UNSUPPORTED_NSEC3_ITERATIONS
from repro.dns.rcode import Rcode


class TestGuidance:
    def test_twelve_items(self):
        assert len(GUIDANCE) == 12
        assert [entry.number for entry in GUIDANCE] == list(range(1, 13))

    def test_item2_is_must(self):
        assert item(2).keyword is Requirement.MUST
        assert item(2).audience is Audience.AUTHORITATIVE

    def test_item_audiences_match_paper_split(self):
        auth = [e for e in GUIDANCE if e.audience is Audience.AUTHORITATIVE]
        resolver = [e for e in GUIDANCE if e.audience is Audience.RESOLVER]
        assert [e.number for e in auth] == [1, 2, 3, 4, 5]
        assert [e.number for e in resolver] == [6, 7, 8, 9, 10, 11, 12]

    def test_unknown_item_raises(self):
        with pytest.raises(KeyError):
            item(13)


def observation(**kwargs):
    defaults = dict(
        domain="test.example",
        dnssec_enabled=True,
        nsec3param_records=((1, 0, b""),),
        nsec3_records=((1, 0, b""),),
    )
    defaults.update(kwargs)
    return Nsec3Observation(**defaults)


class TestRfc5155Consistency:
    def test_single_consistent_param(self):
        enabled, reason = check_rfc5155_consistency(observation())
        assert enabled and not reason

    def test_no_nsec3param(self):
        enabled, reason = check_rfc5155_consistency(
            observation(nsec3param_records=())
        )
        assert not enabled and "no NSEC3PARAM" in reason

    def test_multiple_nsec3param(self):
        enabled, reason = check_rfc5155_consistency(
            observation(nsec3param_records=((1, 0, b""), (1, 5, b"")))
        )
        assert not enabled and "more than one" in reason

    def test_inconsistent_nsec3_records(self):
        enabled, reason = check_rfc5155_consistency(
            observation(nsec3_records=((1, 0, b""), (1, 3, b"")))
        )
        assert not enabled and "inconsistent" in reason

    def test_nsec3_vs_param_mismatch(self):
        enabled, reason = check_rfc5155_consistency(
            observation(nsec3_records=((1, 9, b""),))
        )
        assert not enabled and "differ" in reason

    def test_no_nsec3_records_is_acceptable(self):
        # A domain may never have been probed negatively.
        enabled, __ = check_rfc5155_consistency(observation(nsec3_records=()))
        assert enabled


class TestZoneCompliance:
    def test_fully_compliant(self):
        report = check_zone_compliance(observation())
        assert report.nsec3_enabled
        assert report.item2_zero_iterations
        assert report.item3_no_salt
        assert report.rfc9276_compliant
        assert not report.violations

    def test_iterations_violation(self):
        report = check_zone_compliance(
            observation(
                nsec3param_records=((1, 10, b""),), nsec3_records=((1, 10, b""),)
            )
        )
        assert not report.item2_zero_iterations
        assert report.iterations == 10
        assert any("Item 2" in v for v in report.violations)

    def test_salt_violation(self):
        report = check_zone_compliance(
            observation(
                nsec3param_records=((1, 0, b"\xaa\xbb"),),
                nsec3_records=((1, 0, b"\xaa\xbb"),),
            )
        )
        assert not report.item3_no_salt
        assert report.salt_length == 2

    def test_optout_small_zone_flagged(self):
        report = check_zone_compliance(
            observation(opt_out_seen=True, delegation_count=3)
        )
        assert not report.item4_optout_ok

    def test_optout_large_zone_ok(self):
        report = check_zone_compliance(
            observation(opt_out_seen=True, delegation_count=50_000)
        )
        assert report.item4_optout_ok

    def test_open_zone_item1(self):
        report = check_zone_compliance(observation(zone_published_openly=True))
        assert report.item1_nsec3_justified is False

    def test_summary(self):
        reports = [
            check_zone_compliance(observation()),
            check_zone_compliance(
                observation(nsec3param_records=((1, 5, b"s"),), nsec3_records=())
            ),
            check_zone_compliance(observation(nsec3param_records=())),
        ]
        totals = summarize_zones(reports)
        assert totals["domains"] == 3
        assert totals["nsec3_enabled"] == 2
        assert totals["item2_compliant"] == 1
        assert totals["excluded"] == 1


def matrix_for(
    insecure_above=None,
    servfail_above=None,
    ede27=False,
    validating=True,
    item7_sloppy=False,
):
    """Synthesise a probe matrix as an ideal policy-following resolver."""
    matrix = {
        "valid": ProbeResult(Rcode.NOERROR, ad=validating),
        "expired": ProbeResult(
            Rcode.SERVFAIL if validating else Rcode.NXDOMAIN, ad=False
        ),
    }
    for count in PROBE_ITERATIONS:
        if count == 0:
            continue
        ede = (EDE_UNSUPPORTED_NSEC3_ITERATIONS,) if ede27 else ()
        if servfail_above is not None and count > servfail_above:
            matrix[count] = ProbeResult(Rcode.SERVFAIL, ede_codes=ede)
        elif insecure_above is not None and count > insecure_above:
            matrix[count] = ProbeResult(Rcode.NXDOMAIN, ad=False, ede_codes=ede)
        else:
            matrix[count] = ProbeResult(Rcode.NXDOMAIN, ad=validating)
    if servfail_above is not None and 2501 > servfail_above and not item7_sloppy:
        control = ProbeResult(Rcode.SERVFAIL)
    elif item7_sloppy:
        control = ProbeResult(Rcode.NXDOMAIN, ad=False)
    else:
        control = ProbeResult(Rcode.SERVFAIL)
    matrix["it-2501-expired"] = control
    return matrix


class TestResolverClassification:
    def test_item6_threshold_found(self):
        cls = classify_resolver(matrix_for(insecure_above=150))
        assert cls.is_validating
        assert cls.implements_item6
        assert cls.insecure_threshold == 150
        assert not cls.implements_item8

    def test_item8_threshold_found(self):
        cls = classify_resolver(matrix_for(servfail_above=150))
        assert cls.implements_item8
        assert cls.servfail_threshold == 150
        assert not cls.implements_item6

    def test_item8_at_zero_is_strict(self):
        cls = classify_resolver(matrix_for(servfail_above=0))
        assert cls.implements_item8
        assert cls.servfail_threshold == 0
        assert cls.strict_servfail_at_one

    def test_no_limit_resolver(self):
        cls = classify_resolver(matrix_for())
        assert cls.is_validating
        assert not cls.limits_iterations

    def test_non_validating(self):
        cls = classify_resolver(matrix_for(validating=False))
        assert not cls.is_validating

    def test_ede27_detected(self):
        cls = classify_resolver(matrix_for(servfail_above=100, ede27=True))
        assert cls.ede27_support

    def test_ede27_absent(self):
        cls = classify_resolver(matrix_for(servfail_above=100, ede27=False))
        assert not cls.ede27_support

    def test_item7_violation(self):
        cls = classify_resolver(matrix_for(insecure_above=150, item7_sloppy=True))
        assert cls.item7_violation

    def test_item7_compliant(self):
        cls = classify_resolver(matrix_for(insecure_above=150))
        assert not cls.item7_violation

    def test_item12_gap(self):
        cls = classify_resolver(matrix_for(insecure_above=50, servfail_above=150))
        assert cls.implements_item6 and cls.implements_item8
        assert cls.item12_gap

    def test_no_item12_gap_when_same_threshold(self):
        cls = classify_resolver(matrix_for(servfail_above=150))
        assert not cls.item12_gap

    def test_google_shape(self):
        cls = classify_resolver(matrix_for(insecure_above=100))
        assert cls.insecure_threshold == 100

    def test_summary(self):
        classifications = [
            classify_resolver(matrix_for(insecure_above=150)),
            classify_resolver(matrix_for(servfail_above=0)),
            classify_resolver(matrix_for()),
            classify_resolver(matrix_for(validating=False)),
        ]
        totals = summarize_resolvers(classifications)
        assert totals["resolvers"] == 4
        assert totals["validating"] == 3
        assert totals["limit_iterations"] == 2
        assert totals["servfail_at_one"] == 1
