"""Tests for CDFs, headline stats, Table 2 and figure series builders."""

import pytest

from repro.analysis.cdf import Cdf
from repro.analysis.figures import figure1_series, figure2_series, figure3_series
from repro.analysis.stats import domain_headline_stats, resolver_headline_stats
from repro.analysis.tables import format_operator_table, operator_table, registered_domain
from repro.core.resolver_compliance import PROBE_ITERATIONS, ProbeResult, classify_resolver
from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance
from repro.dns.rcode import Rcode
from repro.scanner.nsec3_scan import DomainScanResult
from repro.scanner.resolver_scan import SurveyEntry


class TestCdf:
    def test_fractions(self):
        cdf = Cdf([1, 2, 2, 3, 10])
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(2) == pytest.approx(0.6)
        assert cdf.fraction_at_or_below(10) == 1.0

    def test_percentile(self):
        cdf = Cdf(range(1, 101))
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(0.999) == 100
        assert cdf.percentile(1.0) == 100

    def test_points_deduplicate(self):
        cdf = Cdf([5, 5, 5])
        assert cdf.points() == [(5, 1.0)]

    def test_points_max_points(self):
        cdf = Cdf(range(1000))
        assert len(cdf.points(max_points=10)) == 10

    def test_series_at(self):
        cdf = Cdf([1, 2, 3, 4])
        series = cdf.series_at([2, 4])
        assert series == [(2, 0.5), (4, 1.0)]

    def test_empty(self):
        assert Cdf([]).fraction_at_or_below(5) == 0.0
        with pytest.raises(ValueError):
            Cdf([]).percentile(0.5)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            Cdf([1]).percentile(0.0)


def fake_result(domain, iterations=None, salt=0, ns=("ns1.op.net.",), opt_out=False):
    """A synthetic stage-2 result (nsec3-enabled iff iterations given)."""
    if iterations is None:
        observation = Nsec3Observation(domain=domain, nsec3param_records=())
    else:
        params = ((1, iterations, b"\x00" * salt),)
        observation = Nsec3Observation(
            domain=domain,
            nsec3param_records=params,
            nsec3_records=params,
            opt_out_seen=opt_out,
        )
    result = DomainScanResult(domain=domain)
    result.observation = observation
    result.report = check_zone_compliance(observation)
    result.ns_targets = ns
    result.denial = "nsec3" if iterations is not None else ""
    return result


class TestHeadlines:
    def test_domain_headline(self):
        results = [
            fake_result("a.com", 0, 0),
            fake_result("b.com", 1, 8),
            fake_result("c.com", 10, 8, opt_out=True),
            fake_result("d.com", None),
        ]
        headline = domain_headline_stats(results, total_domains=40)
        assert headline.nsec3_enabled == 3
        assert headline.zero_iterations == 1
        assert headline.zero_iterations_pct == pytest.approx(33.3, abs=0.1)
        assert headline.non_compliant_pct == pytest.approx(66.7, abs=0.1)
        assert headline.opt_out == 1
        assert headline.max_iterations == 10
        assert headline.dnssec_pct == pytest.approx(10.0)
        assert len(headline.rows()) == 7

    def test_resolver_headline(self):
        def matrix(**kw):
            from tests.test_core_compliance import matrix_for

            return matrix_for(**kw)

        classifications = [
            classify_resolver(matrix(insecure_above=150)),
            classify_resolver(matrix(servfail_above=0)),
            classify_resolver(matrix()),
        ]
        headline = resolver_headline_stats(classifications)
        assert headline.validators == 3
        assert headline.item6 == 1
        assert headline.item8 == 1
        assert headline.servfail_at_one == 1
        assert headline.limit_pct == pytest.approx(66.7, abs=0.1)


class TestOperatorTable:
    def test_registered_domain(self):
        assert registered_domain("ns1.dns.operator.net.") == "operator.net"
        assert registered_domain("short.") == "short"

    def test_exclusive_aggregation(self):
        results = [
            fake_result("a.com", 1, 8, ns=("ns1.big.net.", "ns2.big.net.")),
            fake_result("b.com", 1, 8, ns=("ns1.big.net.",)),
            fake_result("c.com", 0, 0, ns=("ns1.small.org.",)),
            # Mixed operators: not exclusively served, excluded.
            fake_result("d.com", 5, 5, ns=("ns1.big.net.", "ns1.small.org.")),
        ]
        rows = operator_table(results)
        assert rows[0].operator == "big.net"
        assert rows[0].domains == 2
        assert rows[0].top_params[0][1:] == (1, 8)
        assert {r.operator for r in rows} == {"big.net", "small.org"}

    def test_share_over_all_nsec3(self):
        results = [fake_result(f"x{i}.com", 1, 8) for i in range(4)]
        rows = operator_table(results)
        assert rows[0].share_pct == pytest.approx(100.0)

    def test_format(self):
        rows = operator_table([fake_result("a.com", 1, 8)])
        text = format_operator_table(rows)
        assert "op.net" in text and "1/8" in text


class TestFigures:
    def test_figure1(self):
        results = [fake_result(f"d{i}.com", it, salt) for i, (it, salt) in
                   enumerate([(0, 0), (1, 8), (5, 8), (500, 8)])]
        fig = figure1_series(results)
        assert fig.iterations_cdf.fraction_at_or_below(0) == pytest.approx(0.25)
        assert fig.iterations_cdf.fraction_at_or_below(5) == pytest.approx(0.75)
        assert fig.salt_length_cdf.fraction_at_or_below(0) == pytest.approx(0.25)
        rows = fig.rows((0, 500))
        assert rows[-1][1] == pytest.approx(100.0)

    def test_figure2(self):
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            tranco_rank: int

        specs = [Spec("a.com", 1), Spec("b.com", 2), Spec("c.com", 3)]
        results = [
            fake_result("a.com", 0, 0),
            fake_result("b.com", 9, 8),
            fake_result("c.com", None),
        ]
        fig = figure2_series(results, specs, list_size=3)
        assert fig.counts["ranked_nsec3"] == 2
        assert fig.counts["zero_iterations"] == 1
        assert len(fig.rows(buckets=3)) == 3

    def test_figure3(self):
        def entry(insecure_above):
            from tests.test_core_compliance import matrix_for

            matrix = matrix_for(insecure_above=insecure_above)
            return SurveyEntry(None, matrix, classify_resolver(matrix))

        entries = [entry(150), entry(150), entry(50)]
        fig = figure3_series(entries, "open-v4")
        assert fig.validators == 3
        nx, adnx, servfail = fig.series[100]
        assert nx == pytest.approx(100.0)
        assert adnx == pytest.approx(2 / 3 * 100, abs=0.1)
        assert servfail == 0.0
        nx, adnx, __ = fig.series[200]
        assert adnx == 0.0

    def test_figure3_excludes_non_validators(self):
        from tests.test_core_compliance import matrix_for

        matrix = matrix_for(validating=False)
        entries = [SurveyEntry(None, matrix, classify_resolver(matrix))]
        fig = figure3_series(entries, "open-v6")
        assert fig.validators == 0
