"""Tests for the cross-process signed-zone build cache.

The cache must be observably transparent: a load mutates the zone and
charges the cost model exactly like the cold sign it replaces, and any
change to the inputs (zone content, signing policy, key material, cache
schema) must change the fingerprint so stale artifacts are unreachable.
Corruption is detected by the CRC frame and rebuilt, never trusted.
"""

import multiprocessing
import random

import pytest

from repro import fastpath
from repro.crypto.keys import ALG_ECDSAP256SHA256, generate_keypair
from repro.dnssec.costmodel import meter
from repro.dnssec.signer import canonical_rrset_wire
from repro.testbed.internet import _pooled_keys
from repro.zone import build_cache, signing
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, _zone_fingerprint, sign_zone


def _build_zone(n_hosts=6, extra=None):
    builder = (
        ZoneBuilder("cache-test.example")
        .soa("ns1.cache-test.example", "h.cache-test.example")
        .ns("ns1.cache-test.example.")
        .a("ns1", "192.0.2.53")
    )
    for index in range(n_hosts):
        builder.a(f"host-{index}", f"192.0.2.{10 + index}")
    if extra is not None:
        builder.a(extra, "192.0.2.200")
    return builder.build()


def _keys(seed=11):
    rng = random.Random(seed)
    ksk = generate_keypair(ALG_ECDSAP256SHA256, ksk=True, rng=rng)
    zsk = generate_keypair(ALG_ECDSAP256SHA256, ksk=False, rng=rng)
    return ksk, zsk


def _policy(**overrides):
    overrides.setdefault("nsec3", Nsec3Params(iterations=5, salt=b"\xca\xfe"))
    return SigningPolicy(**overrides)


def _dnssec_dump(zone):
    """Every RRset and RRSIG of *zone* as one canonical byte string."""
    parts = [canonical_rrset_wire(rrset) for rrset in zone.all_rrsets()]
    for (name, covered), rrset in sorted(
        zone.rrsigs.items(), key=lambda item: (str(item[0][0]), item[0][1])
    ):
        parts.append(canonical_rrset_wire(rrset))
    return b"".join(parts)


@pytest.fixture
def cache(tmp_path):
    handle = build_cache.activate(str(tmp_path / "build-cache"))
    yield handle
    build_cache.deactivate()


class TestRoundTrip:
    def test_load_is_byte_and_cost_identical_to_cold_sign(self, cache):
        ksk, zsk = _keys()
        fired = []
        signing.zone_signed_listener = fired.append
        try:
            cold = _build_zone()
            before = meter.snapshot()
            sign_zone(cold, _policy(), ksk=ksk, zsk=zsk)
            cold_delta = meter.snapshot() - before

            warm = _build_zone()
            before = meter.snapshot()
            sign_zone(warm, _policy(), ksk=ksk, zsk=zsk)
            warm_delta = meter.snapshot() - before
        finally:
            signing.zone_signed_listener = None

        assert cache.events == {"miss": 1, "store": 1, "hit": 1, "load": 1}
        assert _dnssec_dump(warm) == _dnssec_dump(cold)
        # Generation-keyed caches (packed answers) must see the same
        # mutation count either way.
        assert warm.generation == cold.generation
        # A load charges the meter like the rebuild it replaces.
        assert warm_delta == cold_delta
        assert len(fired) == 2  # listener fires on cold sign and on load

    def test_nsec_zone_round_trips(self, cache):
        ksk, zsk = _keys()
        cold = _build_zone()
        sign_zone(cold, _policy(nsec3=None), ksk=ksk, zsk=zsk)
        warm = _build_zone()
        sign_zone(warm, _policy(nsec3=None), ksk=ksk, zsk=zsk)
        assert cache.events["hit"] == 1
        assert _dnssec_dump(warm) == _dnssec_dump(cold)
        assert warm.nsec_chain is not None and warm.nsec3_chain is None

    def test_disabled_switch_forces_cold_rebuilds(self, cache):
        ksk, zsk = _keys()
        with fastpath.disabled("build_cache"):
            assert build_cache.active() is None
            assert build_cache.handle() is cache
            first = _build_zone()
            sign_zone(first, _policy(), ksk=ksk, zsk=zsk)
            second = _build_zone()
            sign_zone(second, _policy(), ksk=ksk, zsk=zsk)
        assert cache.events == {}  # never consulted
        assert _dnssec_dump(first) == _dnssec_dump(second)


class TestInvalidation:
    def test_every_input_change_invalidates_the_key(self, cache):
        ksk, zsk = _keys()
        base = _build_zone()
        fingerprints = {_zone_fingerprint(base, _policy(), ksk, zsk)}

        variants = [
            (_build_zone(extra="added"), _policy(), ksk, zsk),  # zone content
            (_build_zone(), _policy(nsec3=Nsec3Params(iterations=6, salt=b"\xca\xfe")), ksk, zsk),
            (_build_zone(), _policy(nsec3=Nsec3Params(iterations=5, salt=b"\xca\xff")), ksk, zsk),
            (_build_zone(), _policy(nsec3=Nsec3Params(iterations=5, salt=b"\xca\xfe", opt_out=True)), ksk, zsk),
            (_build_zone(), _policy(expired=True), ksk, zsk),
            (_build_zone(), _policy(expired_nsec3_only=True), ksk, zsk),
            (_build_zone(), _policy(), *_keys(seed=12)),  # key material
        ]
        for zone, policy, k, z in variants:
            fingerprints.add(_zone_fingerprint(zone, policy, k, z))
        assert len(fingerprints) == 1 + len(variants)

        # And end to end: every variant is a miss that signs and stores.
        sign_zone(base, _policy(), ksk=ksk, zsk=zsk)
        for zone, policy, k, z in variants:
            sign_zone(zone, policy, ksk=k, zsk=z)
        assert cache.events["miss"] == 1 + len(variants)
        assert "hit" not in cache.events

    def test_seed_reaches_the_key_through_zone_content(self, cache):
        # The testbed's zones draw their records from a seeded rng; two
        # seeds produce different content and therefore different keys.
        ksk, zsk = _keys()
        zones = []
        for seed in (3, 4):
            rng = random.Random(seed)
            builder = ZoneBuilder("seeded.example").soa(
                "ns1.seeded.example", "h.seeded.example"
            ).ns("ns1.seeded.example.")
            for index in range(4):
                builder.a(f"h{index}", f"192.0.2.{rng.randrange(1, 250)}")
            zones.append(builder.build())
        fp_a = _zone_fingerprint(zones[0], _policy(), ksk, zsk)
        fp_b = _zone_fingerprint(zones[1], _policy(), ksk, zsk)
        assert fp_a != fp_b

    def test_schema_version_bump_invalidates(self, cache, monkeypatch):
        ksk, zsk = _keys()
        sign_zone(_build_zone(), _policy(), ksk=ksk, zsk=zsk)
        assert cache.events == {"miss": 1, "store": 1}
        monkeypatch.setattr(build_cache, "SCHEMA_VERSION", build_cache.SCHEMA_VERSION + 1)
        sign_zone(_build_zone(), _policy(), ksk=ksk, zsk=zsk)
        assert cache.events["miss"] == 2
        assert "hit" not in cache.events


class TestCorruption:
    def _entry_paths(self, cache):
        import os

        return [
            os.path.join(cache.directory, name)
            for name in sorted(os.listdir(cache.directory))
            if name.endswith(".entry")
        ]

    def test_bit_flip_is_detected_and_rebuilt(self, cache):
        ksk, zsk = _keys()
        cold = _build_zone()
        sign_zone(cold, _policy(), ksk=ksk, zsk=zsk)
        (path,) = self._entry_paths(cache)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x40  # flip a bit inside the JSON payload
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        rebuilt = _build_zone()
        sign_zone(rebuilt, _policy(), ksk=ksk, zsk=zsk)
        assert cache.events["corrupt"] == 1
        assert cache.events["miss"] == 2  # rebuilt, not trusted
        assert _dnssec_dump(rebuilt) == _dnssec_dump(cold)
        # The rewrite is valid again: a third signer hits.
        third = _build_zone()
        sign_zone(third, _policy(), ksk=ksk, zsk=zsk)
        assert cache.events["hit"] == 1
        assert _dnssec_dump(third) == _dnssec_dump(cold)

    def test_truncated_and_foreign_entries_read_as_corrupt(self, cache):
        ksk, zsk = _keys()
        sign_zone(_build_zone(), _policy(), ksk=ksk, zsk=zsk)
        (path,) = self._entry_paths(cache)
        for garbage in (b"", b"not an entry", build_cache.ENTRY_MAGIC + b"\x01"):
            with open(path, "wb") as handle:
                handle.write(garbage)
            zone = _build_zone()
            sign_zone(zone, _policy(), ksk=ksk, zsk=zsk)
            assert zone.signed
        assert cache.events["corrupt"] == 3
        assert "hit" not in cache.events


class TestKeyPool:
    def test_pool_material_round_trips_to_identical_keys(self, cache):
        first = _pooled_keys(seed=5, size=2)
        second = _pooled_keys(seed=5, size=2)
        assert cache.events == {"miss": 1, "store": 1, "hit": 1, "load": 1}
        for name in ("alpha.example", "beta.example"):
            for a, b in zip(first.pair_for(name), second.pair_for(name)):
                assert a.dnskey.to_wire() == b.dnskey.to_wire()
                # CRT factors survive, so the rebuilt pool signs fast
                # *and* identically.
                assert a.sign(b"probe") == b.sign(b"probe")

    def test_seed_change_misses(self, cache):
        _pooled_keys(seed=5, size=2)
        _pooled_keys(seed=6, size=2)
        assert cache.events["miss"] == 2
        assert "hit" not in cache.events


def _race_worker(cache_dir, out_path):
    """Spawn target: sign the shared test zone against the shared cache."""
    from repro.zone import build_cache as child_cache

    child_cache.activate(cache_dir)
    zone = _build_zone(n_hosts=12)
    ksk, zsk = _keys()
    sign_zone(zone, _policy(), ksk=ksk, zsk=zsk)
    with open(out_path, "wb") as handle:
        handle.write(_dnssec_dump(zone).hex().encode("ascii"))


class TestRace:
    def test_racing_processes_converge_to_identical_bytes(self, tmp_path):
        cache_dir = str(tmp_path / "build-cache")
        outs = [str(tmp_path / f"worker-{index}.out") for index in range(2)]
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_race_worker, args=(cache_dir, out))
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        dumps = [open(out, "rb").read() for out in outs]
        assert dumps[0] and dumps[0] == dumps[1]
        # Exactly one signed-zone entry: the loser loaded, not re-stored.
        import os

        entries = [
            name
            for name in os.listdir(cache_dir)
            if name.startswith("zone-") and name.endswith(".entry")
        ]
        assert len(entries) == 1
