"""Round-trip tests (wire + presentation) for every rdata type."""

import pytest

from repro.dns.name import Name
from repro.dns.rdata import (
    A,
    AAAA,
    CNAME,
    DNSKEY,
    DS,
    MX,
    NS,
    NSEC,
    NSEC3,
    NSEC3PARAM,
    PTR,
    SOA,
    SRV,
    TXT,
    GenericRdata,
    class_for,
    parse_rdata,
    rdata_from_text,
)
from repro.dns.rdata.nsec3 import NSEC3_FLAG_OPTOUT
from repro.dns.types import RdataType
from repro.dns.wire import Reader


def wire_round_trip(rdata):
    wire = rdata.to_wire()
    parsed = parse_rdata(rdata.rrtype, Reader(wire), len(wire))
    assert parsed == rdata, (rdata.to_text(), parsed.to_text())
    return parsed


def text_round_trip(rdata):
    parsed = rdata_from_text(rdata.rrtype, rdata.to_text())
    assert parsed == rdata
    return parsed


SAMPLES = [
    A("192.0.2.1"),
    AAAA("2001:db8::1"),
    NS("ns1.example.com."),
    CNAME("target.example.org."),
    PTR("host.example.net."),
    MX(10, "mail.example.com."),
    SRV(0, 5, 443, "server.example.com."),
    SOA("ns1.example.com.", "admin.example.com.", 2024010101, 7200, 3600, 1209600, 300),
    TXT(["hello world", "second string"]),
    DNSKEY(257, 3, 13, b"\x01" * 64),
    DS(12345, 13, 2, b"\xab" * 32),
    NSEC("next.example.com.", [RdataType.A, RdataType.RRSIG, RdataType.NSEC]),
    NSEC3(1, NSEC3_FLAG_OPTOUT, 10, b"\xaa\xbb", b"\x11" * 20, [RdataType.A]),
    NSEC3PARAM(1, 0, 0, b""),
]


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_wire_round_trip(rdata):
    wire_round_trip(rdata)


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_text_round_trip(rdata):
    text_round_trip(rdata)


class TestAddress:
    def test_a_rejects_bad_length(self):
        with pytest.raises(ValueError):
            parse_rdata(RdataType.A, Reader(b"\x01\x02"), 2)

    def test_aaaa_rejects_bad_length(self):
        with pytest.raises(ValueError):
            parse_rdata(RdataType.AAAA, Reader(b"\x01" * 4), 4)

    def test_a_text(self):
        assert A("10.1.2.3").to_text() == "10.1.2.3"


class TestTxt:
    def test_too_long_string_rejected(self):
        with pytest.raises(ValueError):
            TXT(["x" * 256])

    def test_single_string_shorthand(self):
        assert TXT("abc").strings == (b"abc",)

    def test_quoted_parse(self):
        parsed = TXT.from_text('"one two" "three"')
        assert parsed.strings == (b"one two", b"three")


class TestDnskey:
    def test_key_tag_stable(self):
        key = DNSKEY(256, 3, 8, bytes(range(64)))
        assert key.key_tag() == DNSKEY(256, 3, 8, bytes(range(64))).key_tag()

    def test_flags_helpers(self):
        ksk = DNSKEY(257, 3, 8, b"k")
        zsk = DNSKEY(256, 3, 8, b"k")
        assert ksk.is_sep() and ksk.is_zone_key()
        assert not zsk.is_sep() and zsk.is_zone_key()
        assert not ksk.is_revoked()


class TestRrsig:
    def test_time_format(self):
        from repro.dns.rdata.dnssec import RRSIG, sigtime_from_text, sigtime_to_text

        assert sigtime_from_text(sigtime_to_text(1_700_000_000)) == 1_700_000_000
        sig = RRSIG(1, 13, 2, 300, 1_700_100_000, 1_700_000_000, 1, "example.com.", b"s")
        assert sig.is_valid_at(1_700_050_000)
        assert not sig.is_valid_at(1_700_200_000)
        assert not sig.is_valid_at(1_699_000_000)

    def test_rdata_prefix_excludes_signature(self):
        from repro.dns.rdata.dnssec import RRSIG

        sig_a = RRSIG(1, 13, 2, 300, 20, 10, 1, "example.com.", b"AAAA")
        sig_b = RRSIG(1, 13, 2, 300, 20, 10, 1, "example.com.", b"BBBB")
        assert sig_a.rdata_prefix() == sig_b.rdata_prefix()

    def test_wire_round_trip_with_signature(self):
        from repro.dns.rdata.dnssec import RRSIG

        sig = RRSIG(
            int(RdataType.NSEC3), 8, 3, 3600, 1_700_100_000, 1_700_000_000,
            54321, "zone.example.", b"\x99" * 64,
        )
        wire_round_trip(sig)
        text_round_trip(sig)


class TestNsec3:
    def test_opt_out_flag(self):
        assert NSEC3(1, 1, 0, b"", b"\x00" * 20, []).opt_out
        assert not NSEC3(1, 0, 0, b"", b"\x00" * 20, []).opt_out

    def test_parameters_tuple(self):
        record = NSEC3(1, 0, 7, b"\xde\xad", b"\x00" * 20, [])
        assert record.parameters() == (1, 7, b"\xde\xad")

    def test_iterations_bounds(self):
        with pytest.raises(ValueError):
            NSEC3(1, 0, 70000, b"", b"\x00" * 20, [])
        with pytest.raises(ValueError):
            NSEC3PARAM(1, 0, -1, b"")

    def test_salt_too_long(self):
        with pytest.raises(ValueError):
            NSEC3PARAM(1, 0, 0, b"\x00" * 256)

    def test_empty_salt_text(self):
        assert NSEC3PARAM(1, 0, 0, b"").to_text() == "1 0 0 -"
        assert NSEC3PARAM.from_text("1 0 0 -").salt == b""

    def test_covers_type(self):
        record = NSEC3(1, 0, 0, b"", b"\x00" * 20, [RdataType.A, RdataType.TXT])
        assert record.covers_type(RdataType.A)
        assert not record.covers_type(RdataType.AAAA)


class TestGeneric:
    def test_unknown_type_round_trip(self):
        rdata = GenericRdata(65280, b"\x01\x02\x03")
        wire = rdata.to_wire()
        parsed = parse_rdata(65280, Reader(wire), len(wire))
        assert parsed.data == b"\x01\x02\x03"

    def test_rfc3597_text(self):
        rdata = GenericRdata(65280, b"\xab\xcd")
        assert rdata.to_text() == "\\# 2 abcd"
        parsed = GenericRdata.from_text("\\# 2 abcd", rrtype=65280)
        assert parsed.data == b"\xab\xcd"

    def test_rfc3597_length_mismatch(self):
        with pytest.raises(ValueError):
            GenericRdata.from_text("\\# 3 abcd")

    def test_class_for_unknown(self):
        assert class_for(64999) is GenericRdata

    def test_length_mismatch_detected(self):
        wire = A("1.2.3.4").to_wire()
        with pytest.raises(ValueError):
            parse_rdata(RdataType.A, Reader(wire + b"\x00"), 5)


class TestCanonicalForm:
    def test_ns_lowercased(self):
        assert NS("NS1.Example.COM.").canonical_wire() == NS(
            "ns1.example.com."
        ).canonical_wire()

    def test_mx_lowercased(self):
        assert MX(5, "Mail.EXAMPLE.com.").canonical_wire() == MX(
            5, "mail.example.com."
        ).canonical_wire()

    def test_soa_lowercased(self):
        upper = SOA("NS1.EXAMPLE.COM.", "ADMIN.EXAMPLE.COM.", 1, 2, 3, 4, 5)
        lower = SOA("ns1.example.com.", "admin.example.com.", 1, 2, 3, 4, 5)
        assert upper.canonical_wire() == lower.canonical_wire()

    def test_rdata_ordering_by_canonical_wire(self):
        a1 = A("1.1.1.1")
        a2 = A("2.2.2.2")
        assert a1 < a2
        assert sorted([a2, a1]) == [a1, a2]
