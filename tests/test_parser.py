"""Tests for the master-file zone parser."""

import pytest

from repro.dns.name import Name
from repro.dns.types import RdataType
from repro.zone.parser import ZoneParseError, parse_zone_text

BASIC = """
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1.example.com. hostmaster.example.com. (
            2024010101 ; serial
            7200       ; refresh
            3600       ; retry
            1209600    ; expire
            300 )      ; minimum
        IN NS  ns1.example.com.
ns1     IN A   192.0.2.1
www 600 IN A   192.0.2.2
        IN TXT "web server"
mail    IN MX  10 mx.example.com.
v6      IN AAAA 2001:db8::1
"""


class TestBasics:
    def test_parses_all_records(self):
        zone = parse_zone_text(BASIC)
        assert zone.origin == Name.from_text("example.com")
        assert zone.get_rrset("ns1.example.com", RdataType.A) is not None
        assert zone.get_rrset("mail.example.com", RdataType.MX) is not None
        assert zone.get_rrset("v6.example.com", RdataType.AAAA) is not None

    def test_ttl_handling(self):
        zone = parse_zone_text(BASIC)
        assert zone.get_rrset("ns1.example.com", RdataType.A).ttl == 3600
        assert zone.get_rrset("www.example.com", RdataType.A).ttl == 600

    def test_owner_inheritance(self):
        zone = parse_zone_text(BASIC)
        txt = zone.get_rrset("www.example.com", RdataType.TXT)
        assert txt is not None
        assert txt[0].strings == (b"web server",)

    def test_multiline_soa(self):
        zone = parse_zone_text(BASIC)
        soa = zone.soa[0]
        assert soa.serial == 2024010101
        assert soa.minimum == 300

    def test_at_sign(self):
        zone = parse_zone_text(BASIC)
        assert zone.get_rrset("example.com", RdataType.NS) is not None

    def test_comments_stripped(self):
        zone = parse_zone_text("$ORIGIN t.\n$TTL 60\n@ IN SOA n.t. h.t. 1 2 3 4 5 ; tail\n@ IN NS n.t. ; c\n")
        assert zone.soa is not None

    def test_semicolon_inside_quotes_kept(self):
        text = '$ORIGIN t.\n$TTL 60\n@ IN SOA n.t. h.t. 1 2 3 4 5\n@ IN NS n.t.\nx IN TXT "a;b"\n'
        zone = parse_zone_text(text)
        assert zone.get_rrset("x.t", RdataType.TXT)[0].strings == (b"a;b",)


class TestOriginHandling:
    def test_explicit_origin_argument(self):
        zone = parse_zone_text("@ IN SOA n h 1 2 3 4 5\n@ IN NS n.x.\n", origin="x.")
        assert zone.origin == Name.from_text("x.")

    def test_origin_inferred_from_soa(self):
        zone = parse_zone_text("y. IN SOA n.y. h.y. 1 2 3 4 5\ny. IN NS n.y.\n")
        assert zone.origin == Name.from_text("y.")

    def test_relative_before_origin_rejected(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("www IN A 1.2.3.4\n")

    def test_cannot_infer_without_soa(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("www.x. IN A 1.2.3.4\n")


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN t.\n@ IN SOA n.t. h.t. ( 1 2 3\n")

    def test_unknown_directive(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$INCLUDE other.zone\n")

    def test_bad_type(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN t.\nx IN BOGUSTYPE data\n")

    def test_bad_rdata(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN t.\nx IN A not-an-ip\n")

    def test_missing_type(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN t.\nx 300 IN\n")

    def test_inherit_without_previous_owner(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN t.\n  IN A 1.2.3.4\n")


class TestDnssecTypes:
    def test_parses_nsec3param(self):
        text = (
            "$ORIGIN s.\n$TTL 60\n@ IN SOA n.s. h.s. 1 2 3 4 5\n@ IN NS n.s.\n"
            "@ IN NSEC3PARAM 1 0 5 AABB\n"
        )
        zone = parse_zone_text(text)
        param = zone.get_rrset("s.", RdataType.NSEC3PARAM)[0]
        assert param.iterations == 5
        assert param.salt == b"\xaa\xbb"

    def test_parses_ds(self):
        text = (
            "$ORIGIN s.\n$TTL 60\n@ IN SOA n.s. h.s. 1 2 3 4 5\n@ IN NS n.s.\n"
            "child IN DS 12345 13 2 " + "AB" * 32 + "\n"
        )
        zone = parse_zone_text(text)
        ds = zone.get_rrset("child.s.", RdataType.DS)[0]
        assert ds.key_tag == 12345

    def test_round_trip_through_text(self):
        import random

        from repro.zone.builder import ZoneBuilder
        from repro.zone.nsec3chain import Nsec3Params
        from repro.zone.signing import SigningPolicy, sign_zone

        zone = (
            ZoneBuilder("round.test")
            .soa("ns.round.test", "h.round.test")
            .ns("ns.round.test.")
            .a("ns", "192.0.2.1")
            .a("www", "192.0.2.2")
            .build()
        )
        sign_zone(zone, SigningPolicy(nsec3=Nsec3Params(iterations=1)),
                  rng=random.Random(3))
        text = "\n".join(rrset.to_text() for rrset in zone.all_rrsets())
        reparsed = parse_zone_text(text, origin="round.test")
        assert reparsed.get_rrset("round.test", RdataType.DNSKEY) is not None
        assert reparsed.get_rrset("round.test", RdataType.NSEC3PARAM) is not None
        assert reparsed.record_count() == zone.record_count()
