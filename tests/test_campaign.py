"""Tests for resumable campaigns and chaos-run convergence.

Covers the durable checkpoint protocol (CRC32-framed journal with
truncate-to-last-good-frame recovery, atomic fsynced snapshots, strict
version/schema validation with the ``--discard-checkpoint`` escape
hatch), journal fuzzing at every byte offset, the scan engine's
requeue/recover path, the zero-duplicate-queries resume guarantee, and
the headline acceptance scenario: a survey run under burst loss, a
flapping resolver, and a garbage-emitting authoritative classifies
every resolver exactly as a clean run does.
"""

import json

import pytest

from repro.dns.message import Message, make_response
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.faults import Blackout, Corruption, FaultPlan, Flapping, GilbertElliott
from repro.net.network import Host, Network
from repro.resolver.stub import StubAnswer
from repro.scanner.campaign import (
    JOURNAL_MAGIC,
    CampaignCheckpoint,
    CampaignError,
    answer_from_record,
    answer_to_record,
    job_key,
    read_journal_payloads,
)
from repro.scanner.engine import ScanEngine
from repro.scanner.resolver_scan import (
    ResolverSurvey,
    SurveyRetryPolicy,
    matrix_from_record,
    matrix_to_record,
)
from repro.testbed.internet import build_internet
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
)
from repro.testbed.resolvers import deploy_resolvers
from repro.testbed.rfc9276_wild import build_probe_zones


class Answering(Host):
    """A stand-in resolver that answers every query and counts qnames."""

    def __init__(self):
        self.seen = []

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        query = Message.from_wire(wire)
        self.seen.append(str(query.question[0].name))
        return make_response(query, recursion_available=True).to_wire()


class TestJobKey:
    def test_normalises_case_and_dot(self):
        assert job_key("WWW.Example.COM.", RdataType.A) == "www.example.com/1"
        assert job_key("www.example.com", 1) == "www.example.com/1"


class TestAnswerRecords:
    def test_roundtrip(self):
        answer = StubAnswer(
            rcode=Rcode.NXDOMAIN, ad=True, ra=True, answer=[],
            ede_codes=(27,), answered=True,
        )
        rebuilt = answer_from_record(answer_to_record(answer))
        assert rebuilt.rcode == Rcode.NXDOMAIN
        assert rebuilt.ad and rebuilt.ra and rebuilt.answered
        assert rebuilt.ede_codes == (27,)

    def test_timeout_roundtrip(self):
        rebuilt = answer_from_record(answer_to_record(StubAnswer.timeout()))
        assert not rebuilt.answered


class TestCheckpoint:
    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path)
        checkpoint.record("a/1", {"rcode": 0})
        checkpoint.flush()

        reloaded = CampaignCheckpoint(path)
        assert reloaded.done("a/1")
        assert reloaded.get("a/1") == {"rcode": 0}
        assert not reloaded.done("b/1")

    def test_incremental_flush_appends_to_journal(self, tmp_path):
        path = tmp_path / "ck.json"
        journal = tmp_path / "ck.json.journal"
        checkpoint = CampaignCheckpoint(path, flush_every=2)
        checkpoint.record("a/1", {})
        assert not journal.exists()  # below the flush threshold
        checkpoint.record("b/1", {})
        assert journal.exists()
        assert len(read_journal_payloads(journal)) == 2
        assert len(CampaignCheckpoint(path)) == 2

    def test_compact_folds_journal_into_snapshot(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, flush_every=1)
        checkpoint.record("a/1", {"rcode": 0})
        checkpoint.note("a/1", "requeued")
        checkpoint.flush()
        checkpoint.compact()
        # Snapshot holds everything; the journal is magic-only.
        assert (tmp_path / "ck.json.journal").read_bytes() == JOURNAL_MAGIC
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["records"] == {"a/1": {"rcode": 0}}
        assert payload["notes"] == {"requeued": ["a/1"]}
        reloaded = CampaignCheckpoint(path)
        assert reloaded.done("a/1") and reloaded.noted("a/1", "requeued")

    def test_auto_compaction_bounds_journal(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, flush_every=1, compact_every=4)
        for index in range(10):
            checkpoint.record(f"k{index}/1", {})
        assert len(read_journal_payloads(tmp_path / "ck.json.journal")) < 4
        assert len(CampaignCheckpoint(path)) == 10

    def test_corrupt_snapshot_raises_campaign_error(self, tmp_path):
        # The snapshot is written atomically, so an unparseable file is
        # foreign or damaged at rest — never silently discarded.
        path = tmp_path / "ck.json"
        path.write_text("{truncated by a crash", encoding="utf-8")
        with pytest.raises(CampaignError, match="discard-checkpoint"):
            CampaignCheckpoint(path)

    def test_version_mismatch_raises_campaign_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps({"version": 999, "records": {"a/1": {}}}), encoding="utf-8"
        )
        with pytest.raises(CampaignError, match="version"):
            CampaignCheckpoint(path)

    def test_schema_mismatch_raises_campaign_error(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, schema="scan-answer/1")
        checkpoint.record("a/1", {})
        checkpoint.compact()
        with pytest.raises(CampaignError, match="scan-answer/1"):
            CampaignCheckpoint(path, schema="survey-matrix/1")
        # Same schema (and schema-less readers) load fine.
        assert len(CampaignCheckpoint(path, schema="scan-answer/1")) == 1
        assert len(CampaignCheckpoint(path)) == 1

    def test_discard_archives_and_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("not a checkpoint", encoding="utf-8")
        (tmp_path / "ck.json.journal").write_bytes(b"junk")
        checkpoint = CampaignCheckpoint(path, discard=True)
        assert len(checkpoint) == 0
        # The evidence is archived, not destroyed.
        assert (tmp_path / "ck.json.invalid").read_text(
            encoding="utf-8"
        ) == "not a checkpoint"
        assert (tmp_path / "ck.json.journal.invalid").exists()
        checkpoint.record("a/1", {})
        checkpoint.flush()
        assert CampaignCheckpoint(path).done("a/1")

    def test_bad_record_shape_raises_campaign_error(self):
        with pytest.raises(CampaignError, match="discard-checkpoint"):
            answer_from_record({"wrong": "shape"})

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path)
        checkpoint.record("a/1", {})
        checkpoint.flush()
        checkpoint.compact()
        assert not (tmp_path / "ck.json.tmp").exists()

    def test_notes_are_idempotent_across_reloads(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, flush_every=1)
        assert checkpoint.note("job/1", "requeued") is True
        assert checkpoint.note("job/1", "requeued") is False
        reloaded = CampaignCheckpoint(path)
        assert reloaded.note("job/1", "requeued") is False
        assert reloaded.noted("job/1", "requeued")
        assert reloaded.notes("requeued") == frozenset({"job/1"})


def _journal_with_frames(tmp_path, n_frames, flush_every=1):
    """A checkpoint whose journal holds *n_frames* record frames."""
    path = tmp_path / "ck.json"
    checkpoint = CampaignCheckpoint(path, flush_every=flush_every)
    for index in range(n_frames):
        checkpoint.record(f"k{index}/1", {"rcode": 0, "i": index})
    checkpoint.flush()
    return path, tmp_path / "ck.json.journal"


def _good_prefix_keys(blob):
    """The record keys recoverable from a damaged journal blob."""
    import struct
    import zlib

    keys = []
    if not blob.startswith(JOURNAL_MAGIC):
        return keys
    offset = len(JOURNAL_MAGIC)
    header = struct.Struct("<II")
    while offset + header.size <= len(blob):
        length, crc = header.unpack_from(blob, offset)
        start = offset + header.size
        if length > (1 << 24) or start + length > len(blob):
            break
        body = blob[start:start + length]
        if zlib.crc32(body) != crc:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        keys.append(payload["k"])
        offset = start + length
    return keys


class TestJournalFuzz:
    """Satellite: seeded fuzzing of the journal at every byte offset.

    Every truncation point and every single-bit flip must recover to
    exactly the last good frame prefix — never crash, never resurrect
    damaged data, never lose an intact earlier frame.
    """

    N_FRAMES = 6

    def test_truncation_at_every_byte_offset(self, tmp_path):
        path, journal_path = _journal_with_frames(tmp_path, self.N_FRAMES)
        blob = journal_path.read_bytes()
        for cut in range(len(blob) + 1):
            sub = tmp_path / f"cut{cut}"
            sub.mkdir()
            target = sub / "ck.json"
            (sub / "ck.json.journal").write_bytes(blob[:cut])
            expected = _good_prefix_keys(blob[:cut])
            checkpoint = CampaignCheckpoint(target)
            assert sorted(checkpoint.keys()) == sorted(expected), (
                f"truncation at byte {cut}"
            )
            # Recovery truncated the file back to the good prefix, so a
            # second load sees a clean journal.
            assert sorted(CampaignCheckpoint(target).keys()) == sorted(expected)

    def test_bitflip_at_every_byte_offset(self, tmp_path):
        path, journal_path = _journal_with_frames(tmp_path, self.N_FRAMES)
        blob = journal_path.read_bytes()
        for offset in range(len(blob)):
            flipped = bytearray(blob)
            flipped[offset] ^= 0x40
            sub = tmp_path / f"flip{offset}"
            sub.mkdir()
            target = sub / "ck.json"
            (sub / "ck.json.journal").write_bytes(bytes(flipped))
            expected = _good_prefix_keys(bytes(flipped))
            checkpoint = CampaignCheckpoint(target)
            got = sorted(checkpoint.keys())
            assert got == sorted(expected), f"bit flip at byte {offset}"
            # A flip inside the magic drops everything; a flip in frame
            # i's bytes keeps frames < i (CRC catches the damage).
            if offset >= len(JOURNAL_MAGIC):
                frame_span = (len(blob) - len(JOURNAL_MAGIC)) // self.N_FRAMES
                damaged_frame = (offset - len(JOURNAL_MAGIC)) // frame_span
                assert len(got) >= min(damaged_frame, self.N_FRAMES)

    def test_torn_tail_recovery_then_zero_duplicate_resume(self, tmp_path):
        """The acceptance path: damage the tail, reload, resume — the
        journaled prefix is never re-queried."""
        net = Network()
        resolver = Answering()
        net.attach("192.0.2.53", resolver)
        engine = ScanEngine(net, "198.51.100.1", "192.0.2.53")
        path = tmp_path / "scan.json"
        jobs = [(f"d{i}.test", RdataType.A) for i in range(8)]
        engine.run_campaign(jobs, checkpoint=CampaignCheckpoint(path, flush_every=1))
        assert len(resolver.seen) == 8

        journal_path = tmp_path / "scan.json.journal"
        blob = journal_path.read_bytes()
        # Tear mid-way through the last frame (a real SIGKILL tail).
        journal_path.write_bytes(blob[: len(blob) - 7])
        checkpoint = CampaignCheckpoint(path)
        survivors = set(checkpoint.keys())
        assert len(survivors) == 7

        engine2 = ScanEngine(net, "198.51.100.2", "192.0.2.53")
        result = engine2.run_campaign(jobs, checkpoint=checkpoint)
        assert result.resumed == 7
        assert engine2.stats.queries == 1  # only the torn-off target
        assert sorted(resolver.seen) == sorted(
            [f"d{i}.test." for i in range(8)] + ["d7.test."]
        )


class TestMatrixRecords:
    def test_roundtrip_preserves_key_types(self):
        from repro.core.resolver_compliance import ProbeResult

        matrix = {
            "valid": ProbeResult(rcode=Rcode.NOERROR, ad=True),
            150: ProbeResult(rcode=Rcode.SERVFAIL, ede_codes=(27,)),
        }
        rebuilt = matrix_from_record(matrix_to_record(matrix))
        assert set(rebuilt) == {"valid", 150}
        assert rebuilt[150].rcode == Rcode.SERVFAIL
        assert rebuilt[150].ede_codes == (27,)
        assert rebuilt["valid"].ad


class TestRunCampaign:
    def _engine(self):
        net = Network()
        resolver = Answering()
        net.attach("192.0.2.53", resolver)
        return net, resolver, ScanEngine(net, "198.51.100.1", "192.0.2.53")

    def test_plain_run_answers_all(self):
        __, __, engine = self._engine()
        jobs = [(f"d{i}.test", RdataType.A) for i in range(5)]
        result = engine.run_campaign(jobs)
        assert len(result.answers) == 5
        assert all(a.answered for a in result.answers)
        assert result.requeued == 0 and result.failed == []

    def test_duplicate_jobs_answered_once(self):
        __, resolver, engine = self._engine()
        jobs = [("dup.test", RdataType.A), ("DUP.test.", RdataType.A)]
        result = engine.run_campaign(jobs)
        assert len(result.answers) == 2
        assert len(resolver.seen) == 1

    def test_resume_issues_zero_duplicate_queries(self, tmp_path):
        net, resolver, engine = self._engine()
        path = tmp_path / "scan.json"
        jobs = [(f"d{i}.test", RdataType.A) for i in range(8)]
        engine.run_campaign(jobs, checkpoint=CampaignCheckpoint(path))
        assert len(resolver.seen) == 8

        # A fresh engine (fresh process, conceptually) resumes the campaign.
        engine2 = ScanEngine(net, "198.51.100.2", "192.0.2.53")
        datagrams_before = net.stats.datagrams
        result = engine2.run_campaign(jobs, checkpoint=CampaignCheckpoint(path))
        assert result.resumed == 8
        assert engine2.stats.queries == 0
        assert net.stats.datagrams == datagrams_before  # nothing hit the wire
        assert len(result.answers) == 8
        assert all(a.answered for a in result.answers)

    def test_interrupted_campaign_finishes_remainder_only(self, tmp_path):
        net, resolver, engine = self._engine()
        path = tmp_path / "scan.json"
        jobs = [(f"d{i}.test", RdataType.A) for i in range(10)]
        engine.run_campaign(jobs[:4], checkpoint=CampaignCheckpoint(path))

        engine2 = ScanEngine(net, "198.51.100.2", "192.0.2.53")
        result = engine2.run_campaign(jobs, checkpoint=CampaignCheckpoint(path))
        assert result.resumed == 4
        assert engine2.stats.queries == 6
        # Every target was queried exactly once across both sessions.
        assert sorted(resolver.seen) == sorted(
            f"d{i}.test." for i in range(10)
        )

    def test_requeue_recovers_after_outage(self, tmp_path):
        net, resolver, engine = self._engine()
        # The resolver is dark for the first five simulated seconds; the
        # requeue pass waits past the window and recovers every target.
        net.set_faults(FaultPlan([Blackout("192.0.2.53", 0.0, 5000.0)]))
        jobs = [(f"d{i}.test", RdataType.A) for i in range(3)]
        result = engine.run_campaign(
            jobs, requeue_attempts=1, requeue_delay_ms=10_000.0
        )
        assert result.requeued == 3
        assert result.recovered == 3
        assert result.failed == []
        assert all(a.answered for a in result.answers)

    def test_exhausted_targets_recorded_as_failed(self, tmp_path):
        net, __, engine = self._engine()
        net.set_faults(FaultPlan([Blackout("192.0.2.53", 0.0, 1e12)]))
        path = tmp_path / "scan.json"
        jobs = [("dead.test", RdataType.A)]
        result = engine.run_campaign(
            jobs,
            checkpoint=CampaignCheckpoint(path),
            requeue_attempts=1,
            requeue_delay_ms=100.0,
        )
        assert result.failed == ["dead.test/1"]
        assert not result.answers[0].answered

        # The failure is checkpointed: a resume does not re-burn budget.
        engine2 = ScanEngine(net, "198.51.100.2", "192.0.2.53")
        resumed = engine2.run_campaign(jobs, checkpoint=CampaignCheckpoint(path))
        assert resumed.resumed == 1
        assert engine2.stats.queries == 0


#: Small-but-representative population for the acceptance scenario.
ACCEPTANCE_CONFIG = PopulationConfig(
    n_domains=20,
    n_tlds=20,
    tld_dnssec=18,
    tld_nsec3=16,
    tld_zero_iterations=8,
    tld_identity_digital=3,
    tld_saltless=8,
    tld_salt8=6,
    tld_salt10=1,
)

SURVEY_ITERATIONS = (1, 25, 50, 100, 150, 151, 500)


def _build_survey_world(seed=13):
    tlds = generate_tlds(ACCEPTANCE_CONFIG)
    domains = generate_population(ACCEPTANCE_CONFIG, tlds=tlds)
    inet = build_internet(domains, tlds, seed=seed)
    probes = build_probe_zones(inet)
    deployment = deploy_resolvers(
        inet, open_v4=6, open_v6=2, closed_v4=0, closed_v6=0, seed=seed
    )
    return inet, probes, deployment


def _classification_fields(classification):
    return (
        classification.is_validating,
        classification.limits_iterations,
        classification.implements_item6,
        classification.insecure_threshold,
        classification.implements_item8,
        classification.servfail_threshold,
        classification.ede27_support,
        classification.item7_violation,
    )


@pytest.mark.slow
class TestChaosSurveyAcceptance:
    def test_chaos_survey_matches_clean_classifications(self):
        """Burst loss + one flapping resolver + one garbage-spewing probe
        authoritative must not change a single resolver classification."""
        clean_inet, clean_probes, clean_deployment = _build_survey_world()
        clean_survey = ResolverSurvey(
            clean_inet.network,
            clean_probes,
            clean_inet.allocator.next_v4(),
            iterations=SURVEY_ITERATIONS,
        )
        clean_entries = clean_survey.run(clean_deployment)

        chaos_inet, chaos_probes, chaos_deployment = _build_survey_world()
        flapped_ip = chaos_deployment[0].ip
        chaos_inet.network.set_faults(
            FaultPlan(
                [
                    GilbertElliott(p_enter=0.05, p_exit=0.35, loss_bad=0.5, seed=99),
                    Flapping(flapped_ip, period_ms=3000.0, down_fraction=0.4),
                    Corruption(
                        rate=0.3,
                        kinds=("garbage",),
                        dst_ip=chaos_probes.server_ips[0],
                        seed=99,
                    ),
                ]
            )
        )
        chaos_survey = ResolverSurvey(
            chaos_inet.network,
            chaos_probes,
            chaos_inet.allocator.next_v4(),
            iterations=SURVEY_ITERATIONS,
            retry_policy=SurveyRetryPolicy(require_stable=True),
        )
        chaos_entries = chaos_survey.run(chaos_deployment)

        assert len(clean_entries) == len(chaos_entries)
        faults = chaos_inet.network.faults.injected
        assert sum(faults.values()) > 0, "the weather never fired"
        # Requeued resolvers land at the end of the chaos entry list, so
        # compare by resolver address, not by position.
        chaos_by_ip = {entry.resolver.ip: entry for entry in chaos_entries}
        assert set(chaos_by_ip) == {entry.resolver.ip for entry in clean_entries}
        for clean in clean_entries:
            chaos = chaos_by_ip[clean.resolver.ip]
            assert _classification_fields(clean.classification) == (
                _classification_fields(chaos.classification)
            ), f"classification drifted for {clean.resolver.ip}"

    def test_survey_resume_issues_zero_queries(self, tmp_path):
        inet, probes, deployment = _build_survey_world(seed=17)
        path = tmp_path / "survey.json"
        survey = ResolverSurvey(
            inet.network,
            probes,
            inet.allocator.next_v4(),
            iterations=SURVEY_ITERATIONS,
            retry_policy=SurveyRetryPolicy(),
            checkpoint_path=str(path),
        )
        entries = survey.run(deployment)
        assert entries and not any(e.resumed for e in entries)

        datagrams_before = inet.network.stats.datagrams
        resumed_survey = ResolverSurvey(
            inet.network,
            probes,
            inet.allocator.next_v4(),
            iterations=SURVEY_ITERATIONS,
            retry_policy=SurveyRetryPolicy(),
            checkpoint_path=str(path),
        )
        resumed_entries = resumed_survey.run(deployment)
        assert inet.network.stats.datagrams == datagrams_before
        assert all(e.resumed for e in resumed_entries)
        assert [
            _classification_fields(e.classification) for e in resumed_entries
        ] == [_classification_fields(e.classification) for e in entries]
