"""Tests for NSEC3 denial-of-existence proofs (RFC 5155 §7/§8)."""

import random

import pytest

from repro.dns.name import Name
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec.denial import (
    DenialError,
    collect_proof_records,
    hash_covers,
    owner_hash_of,
    verify_nodata,
    verify_nxdomain,
)
from repro.dnssec.nsec3hash import nsec3_hash
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

ZONE_NAME = "example.com"
PARAMS = Nsec3Params(iterations=2, salt=b"\x42")


@pytest.fixture(scope="module")
def zone():
    built = (
        ZoneBuilder(ZONE_NAME)
        .soa("ns1.example.com", "h.example.com")
        .ns("ns1.example.com.")
        .a("ns1", "192.0.2.1")
        .a("www", "192.0.2.2")
        .a("api", "192.0.2.3")
        .a("deep.sub", "192.0.2.4")
        .build()
    )
    return sign_zone(built, SigningPolicy(nsec3=PARAMS), rng=random.Random(4))


def digest_of(name):
    return nsec3_hash(
        Name.from_text(name).canonical_wire(), PARAMS.salt, PARAMS.iterations
    )


def proof_sections(zone, *names):
    """Assemble NSEC3 RRsets covering/matching *names* like a server would."""
    chain = zone.nsec3_chain
    seen = {}
    for name in names:
        digest = digest_of(name)
        entry = chain.find_matching(digest) or chain.find_covering(digest)
        seen[entry.owner_name] = entry
    return [
        RRset(e.owner_name, RdataType.NSEC3, 3600, [e.rdata]) for e in seen.values()
    ]


class TestHashCovers:
    def test_plain_interval(self):
        assert hash_covers(b"\x10", b"\x20", b"\x18")
        assert not hash_covers(b"\x10", b"\x20", b"\x20")
        assert not hash_covers(b"\x10", b"\x20", b"\x10")
        assert not hash_covers(b"\x10", b"\x20", b"\x30")

    def test_wraparound_interval(self):
        assert hash_covers(b"\xf0", b"\x10", b"\xff")
        assert hash_covers(b"\xf0", b"\x10", b"\x05")
        assert not hash_covers(b"\xf0", b"\x10", b"\x80")


class TestOwnerHash:
    def test_round_trip(self, zone):
        entry = zone.nsec3_chain.entries[0]
        assert owner_hash_of(entry.owner_name, ZONE_NAME) == entry.owner_hash

    def test_rejects_wrong_depth(self):
        with pytest.raises(DenialError):
            owner_hash_of(Name.from_text("a.b.example.com"), ZONE_NAME)

    def test_rejects_bad_label(self):
        with pytest.raises(DenialError):
            owner_hash_of(Name.from_text("notbase32!!.example.com"), ZONE_NAME)


class TestCollect:
    def test_collects_params(self, zone):
        section = proof_sections(zone, "nope.example.com")
        records, params = collect_proof_records(section, ZONE_NAME)
        assert params == (1, PARAMS.iterations, PARAMS.salt)
        assert records

    def test_inconsistent_params_rejected(self, zone):
        from repro.dns.rdata.nsec3 import NSEC3

        section = proof_sections(zone, "nope.example.com")
        rogue = NSEC3(1, 0, 99, b"", b"\x01" * 20, [])
        section.append(
            RRset(zone.nsec3_chain.entries[0].owner_name, RdataType.NSEC3, 60, [rogue])
        )
        with pytest.raises(DenialError):
            collect_proof_records(section, ZONE_NAME)

    def test_empty_section(self):
        records, params = collect_proof_records([], ZONE_NAME)
        assert records == [] and params is None


class TestNxdomain:
    def test_valid_proof(self, zone):
        qname = "doesnotexist.example.com"
        section = proof_sections(
            zone, ZONE_NAME, qname, f"*.{ZONE_NAME}"
        )
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nxdomain(qname, ZONE_NAME, records, params)
        assert proof.valid, proof.reason
        assert proof.closest_encloser == Name.from_text(ZONE_NAME)
        assert proof.iterations == PARAMS.iterations

    def test_deep_name_closest_encloser(self, zone):
        # sub.example.com is an empty non-terminal: closest encloser for
        # nope.deep.sub.example.com is deep.sub.example.com.
        qname = "nope.deep.sub.example.com"
        ce = "deep.sub.example.com"
        section = proof_sections(zone, ce, qname, f"*.{ce}")
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nxdomain(qname, ZONE_NAME, records, params)
        assert proof.valid, proof.reason
        assert proof.closest_encloser == Name.from_text(ce)

    def test_missing_next_closer_cover_fails(self, zone):
        qname = "doesnotexist.example.com"
        section = proof_sections(zone, ZONE_NAME)  # only the CE match
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nxdomain(qname, ZONE_NAME, records, params)
        assert not proof.valid

    def test_existing_name_fails(self, zone):
        section = proof_sections(zone, "www.example.com", ZONE_NAME)
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nxdomain("www.example.com", ZONE_NAME, records, params)
        assert not proof.valid
        assert "exists" in proof.reason

    def test_out_of_zone_fails(self, zone):
        section = proof_sections(zone, ZONE_NAME)
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nxdomain("x.other.net", ZONE_NAME, records, params)
        assert not proof.valid

    def test_no_records_fails(self):
        proof = verify_nxdomain("x.example.com", ZONE_NAME, [], None)
        assert not proof.valid

    def test_wildcard_not_required_when_disabled(self, zone):
        qname = "doesnotexist.example.com"
        section = proof_sections(zone, ZONE_NAME, qname)
        records, params = collect_proof_records(section, ZONE_NAME)
        strict = verify_nxdomain(qname, ZONE_NAME, records, params)
        relaxed = verify_nxdomain(
            qname, ZONE_NAME, records, params, require_wildcard=False
        )
        assert relaxed.valid
        # The wildcard hash may or may not fall in the same spans; relaxed
        # must never be stricter than strict.
        assert relaxed.valid >= strict.valid


class TestNodata:
    def test_valid_nodata(self, zone):
        section = proof_sections(zone, "www.example.com")
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nodata(
            "www.example.com", RdataType.AAAA, ZONE_NAME, records, params
        )
        assert proof.valid, proof.reason

    def test_type_present_fails(self, zone):
        section = proof_sections(zone, "www.example.com")
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nodata(
            "www.example.com", RdataType.A, ZONE_NAME, records, params
        )
        assert not proof.valid

    def test_no_match_without_optout_fails(self, zone):
        section = proof_sections(zone, ZONE_NAME)
        records, params = collect_proof_records(section, ZONE_NAME)
        proof = verify_nodata(
            "ghost.example.com", RdataType.A, ZONE_NAME, records, params
        )
        assert not proof.valid


class TestOptOut:
    @pytest.fixture(scope="class")
    def optout_zone(self):
        from repro.crypto.keys import make_ds
        from repro.dns.rdata import NS

        built = (
            ZoneBuilder("tld")
            .soa("ns1.tld", "h.tld")
            .ns("ns1.tld.")
            .a("ns1", "192.0.2.1")
            .delegate("insecure", "ns1.elsewhere.net.")
            .build()
        )
        params = Nsec3Params(iterations=1, salt=b"", opt_out=True)
        return sign_zone(built, SigningPolicy(nsec3=params), rng=random.Random(8))

    def test_insecure_delegation_not_in_chain(self, optout_zone):
        digest = nsec3_hash(
            Name.from_text("insecure.tld").canonical_wire(), b"", 1
        )
        assert optout_zone.nsec3_chain.find_matching(digest) is None

    def test_optout_nodata_ds_proof(self, optout_zone):
        chain = optout_zone.nsec3_chain
        digest = nsec3_hash(Name.from_text("insecure.tld").canonical_wire(), b"", 1)
        apex_digest = nsec3_hash(Name.from_text("tld").canonical_wire(), b"", 1)
        section = []
        seen = set()
        for entry in (chain.find_matching(apex_digest), chain.find_covering(digest)):
            if entry.owner_name not in seen:
                seen.add(entry.owner_name)
                section.append(
                    RRset(entry.owner_name, RdataType.NSEC3, 60, [entry.rdata])
                )
        records, params = collect_proof_records(section, "tld")
        proof = verify_nodata("insecure.tld", RdataType.DS, "tld", records, params)
        assert proof.valid, proof.reason
        assert proof.opt_out
