"""Edge cases and failure injection across the stack."""

import random

import pytest

from repro.dns.flags import Flag
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rdata import A, NSEC3
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dns.wire import WireError
from repro.net.network import Host, Network
from repro.resolver.policy import VENDOR_POLICIES, Nsec3Policy, RFC5155_MAX_ITERATIONS
from repro.resolver.stub import StubClient
from repro.resolver.validating import ValidatingResolver
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params, build_nsec3_chain
from repro.zone.signing import SigningPolicy, sign_zone


class TestMalformedWire:
    """The resolver and server must survive hostile bytes."""

    @pytest.mark.parametrize(
        "wire",
        [
            b"",
            b"\x00",
            b"\x00" * 11,
            b"\xff" * 12,
            b"\x00" * 12 + b"\xc0\x00",  # pointer into the header
            bytes.fromhex("000001000001000000000000") + b"\x3fx",  # truncated label
        ],
    )
    def test_message_decode_robust(self, wire):
        try:
            Message.from_wire(wire)
        except WireError:
            pass  # rejection is the expected outcome

    def test_server_ignores_garbage(self, mini_internet):
        server = mini_internet["servers"]["192.0.2.1"]
        assert server.handle_datagram(b"\x01\x02\x03", "9.9.9.9") is None

    def test_resolver_ignores_garbage(self, mini_internet):
        net = mini_internet["network"]
        resolver = ValidatingResolver(
            net, "198.51.100.150", mini_internet["root_addresses"],
            mini_internet["trust_anchor"],
        )
        assert resolver.handle_datagram(b"\xde\xad", "9.9.9.9") is None


class TestSpoofingResistance:
    """Forged data without valid signatures must be rejected."""

    def test_forged_answer_is_bogus(self, mini_internet):
        net = mini_internet["network"]

        class Spoofer(Host):
            """Answers authoritatively with an unsigned forged address."""

            def handle_datagram(self, wire, src_ip, via_tcp=False):
                from repro.dns.message import make_response

                query = Message.from_wire(wire)
                response = make_response(query)
                response.set_flag(Flag.AA)
                response.answer.append(
                    RRset(query.question[0].name, RdataType.A, 60, [A("66.66.66.66")])
                )
                return response.to_wire()

        # A resolver whose root hint points at the spoofer: nothing it says
        # can validate against the real trust anchor.
        net.attach("192.0.2.66", Spoofer())
        resolver = ValidatingResolver(
            net, "198.51.100.151", ["192.0.2.66"], mini_internet["trust_anchor"]
        )
        net.attach("198.51.100.151", resolver)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.SERVFAIL

    def test_stripped_rrsig_not_secure(self, mini_internet):
        """Without RRSIGs a signed zone's data must not get the AD bit."""
        net = mini_internet["network"]

        class SigStripper(Host):
            def __init__(self, upstream_ip):
                self.upstream_ip = upstream_ip

            def handle_datagram(self, wire, src_ip, via_tcp=False):
                raw = net.send("198.51.100.152", self.upstream_ip, wire, via_tcp)
                if raw is None:
                    return None
                response = Message.from_wire(raw)
                for section in (response.answer, response.authority):
                    section[:] = [
                        rrset
                        for rrset in section
                        if int(rrset.rrtype) != int(RdataType.RRSIG)
                    ]
                return response.to_wire()

        net.attach("192.0.2.67", SigStripper("192.0.2.1"))
        resolver = ValidatingResolver(
            net, "198.51.100.153", ["192.0.2.67"], mini_internet["trust_anchor"]
        )
        net.attach("198.51.100.153", resolver)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.SERVFAIL or not verdict.ad


class TestIterationBoundaries:
    def test_rfc5155_ceiling_respected_by_legacy(self):
        policy = VENDOR_POLICIES["legacy"]
        assert not policy.exceeds_insecure(RFC5155_MAX_ITERATIONS)
        assert policy.exceeds_insecure(RFC5155_MAX_ITERATIONS + 1)

    def test_policy_thresholds_are_exclusive(self):
        policy = Nsec3Policy(insecure_above=150, servfail_above=None)
        assert not policy.exceeds_insecure(150)
        assert policy.exceeds_insecure(151)

    def test_max_iterations_encodable(self):
        record = NSEC3(1, 0, 0xFFFF, b"", b"\x00" * 20, [])
        assert record.iterations == 0xFFFF

    def test_zero_length_chain_rejected_gracefully(self):
        zone = (
            ZoneBuilder("tiny.test")
            .soa("ns.tiny.test", "h.tiny.test")
            .ns("ns.tiny.test.")
            .build()
        )
        chain = build_nsec3_chain(zone, Nsec3Params())
        # Apex always hashes: a one-record chain pointing at itself.
        assert len(chain) >= 1
        entry = chain.entries[0]
        assert entry.rdata.next_hash == chain.entries[0].owner_hash or len(chain) > 1


class TestLossyNetwork:
    def test_resolution_survives_moderate_loss(self, mini_internet):
        lossy = Network(loss_rate=0.25, seed=8)
        # Rebuild servers on the lossy network reusing the signed zones.
        for ip, server in mini_internet["servers"].items():
            clone = AuthoritativeServer(server.name, lossy)
            for zone in server.zones.values():
                clone.add_zone(zone)
            lossy.attach(ip, clone)
        resolver = ValidatingResolver(
            lossy, "198.51.100.160", mini_internet["root_addresses"],
            mini_internet["trust_anchor"],
        )
        lossy.attach("198.51.100.160", resolver)
        resolver.engine.transport.retries = 6
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NOERROR
        assert verdict.ad

    def test_total_blackout_gives_servfail(self, mini_internet):
        dead = Network(loss_rate=1.0, seed=9)
        resolver = ValidatingResolver(
            dead, "198.51.100.161", ["192.0.2.1"], mini_internet["trust_anchor"]
        )
        dead.attach("198.51.100.161", resolver)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.SERVFAIL


class TestSaltEdgeCases:
    def test_maximum_salt_length(self):
        rng = random.Random(12)
        zone = (
            ZoneBuilder("salty.test")
            .soa("ns.salty.test", "h.salty.test")
            .ns("ns.salty.test.")
            .a("www", "192.0.2.1")
            .build()
        )
        params = Nsec3Params(iterations=0, salt=bytes(range(255))[:255])
        sign_zone(zone, SigningPolicy(nsec3=params), rng=rng)
        param_rrset = zone.get_rrset("salty.test", RdataType.NSEC3PARAM)
        assert len(param_rrset[0].salt) == 255

    def test_160_byte_salt_like_the_paper_tail(self):
        # 9 domains in the paper used 160-byte salts.
        rng = random.Random(13)
        zone = (
            ZoneBuilder("tail.test")
            .soa("ns.tail.test", "h.tail.test")
            .ns("ns.tail.test.")
            .a("www", "192.0.2.1")
            .build()
        )
        sign_zone(
            zone,
            SigningPolicy(nsec3=Nsec3Params(iterations=2, salt=b"\xa5" * 160)),
            rng=rng,
        )
        assert len(zone.nsec3_chain.params.salt) == 160


class TestCnameAcrossZones:
    def test_cross_zone_cname_resolves(self, mini_internet):
        net = mini_internet["network"]
        example = mini_internet["example"]
        # Add a CNAME pointing into unsigned.com, then re-sign example.com.
        from repro.dns.rdata import CNAME

        example.add("goto.example.com", RdataType.CNAME, 300, CNAME("www.unsigned.com."))
        sign_zone(
            example,
            SigningPolicy(nsec3=Nsec3Params(iterations=5, salt=b"\xca\xfe")),
            ksk=example.keys[0],
            zsk=example.keys[1],
            rng=random.Random(14),
        )
        resolver = ValidatingResolver(
            net, "198.51.100.162", mini_internet["root_addresses"],
            mini_internet["trust_anchor"],
        )
        net.attach("198.51.100.162", resolver)
        stub = StubClient(net, "203.0.113.99")
        answer = stub.ask(resolver.ip, "goto.example.com", RdataType.A)
        assert answer.rcode == Rcode.NOERROR
        targets = [
            r.to_text()
            for rrset in answer.answer
            if int(rrset.rrtype) == int(RdataType.A)
            for r in rrset
        ]
        assert "192.0.2.70" in targets
