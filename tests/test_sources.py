"""Tests for AXFR transfers and the §4.1 domain-list curation stage."""

import pytest

from repro.dns.types import RdataType
from repro.net.transport import QueryFailure
from repro.scanner.axfr import TransferRefused, axfr
from repro.testbed.sources import (
    collect_axfr,
    collect_czds,
    ct_log_feed,
    curate_domain_list,
    enable_paper_axfr,
    passive_dns_feed,
    registered_domain_of,
)


@pytest.fixture(scope="module")
def axfr_testbed(testbed):
    """The shared testbed with the four ccTLD transfers enabled."""
    enabled = enable_paper_axfr(testbed["inet"])
    assert enabled, "expected at least one of ch/nu/se/li in the TLD set"
    return testbed


class TestAxfr:
    def test_transfer_allowed_zone(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        source = inet.allocator.next_v4()
        from repro.testbed.sources import _registry_ip

        zone = inet.tld_zones["ch"]
        server_ip = _registry_ip(inet, zone)
        transfer = axfr(inet.network, source, server_ip, "ch")
        assert transfer.record_count() > 0
        # SOA appears once after the trailing-marker strip.
        soa_count = sum(
            1 for rrset in transfer.rrsets if int(rrset.rrtype) == int(RdataType.SOA)
        )
        assert soa_count == 1

    def test_transfer_refused_for_closed_zone(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        source = inet.allocator.next_v4()
        from repro.testbed.sources import _registry_ip

        zone = inet.tld_zones["com"]
        server_ip = _registry_ip(inet, zone)
        with pytest.raises(TransferRefused):
            axfr(inet.network, source, server_ip, "com")

    def test_notauth_for_unknown_zone(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        source = inet.allocator.next_v4()
        from repro.testbed.sources import _registry_ip

        server_ip = _registry_ip(inet, inet.tld_zones["ch"])
        with pytest.raises(QueryFailure):
            axfr(inet.network, source, server_ip, "not-hosted-here")

    def test_delegated_names_extracted(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        names, transferred, refused = collect_axfr(
            inet, inet.allocator.next_v4()
        )
        assert set(transferred) <= {"ch", "nu", "se", "li"}
        truth = {
            d.name for d in axfr_testbed["domains"] if d.tld in set(transferred)
        }
        # Operator infra domains also live in these zones; domains from the
        # population must all be present.
        assert truth <= names


class TestCzds:
    def test_only_open_registries(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        names, covered = collect_czds(inet)
        open_labels = {
            spec.label for spec in inet.tld_specs if spec.open_zone_data
        }
        assert set(covered) == {l for l in open_labels if l in inet.tld_zones}
        for name in list(names)[:20]:
            assert name.rsplit(".", 1)[-1] in open_labels


class TestFeeds:
    def test_ct_feed_has_www_entries(self, axfr_testbed):
        entries = ct_log_feed(axfr_testbed["domains"])
        assert any(entry.startswith("www.") for entry in entries)

    def test_passive_dns_has_junk(self, axfr_testbed):
        entries = passive_dns_feed(axfr_testbed["domains"])
        assert any(entry.endswith(".invalid") for entry in entries)

    def test_registered_domain_reduction(self):
        tlds = {"com", "net"}
        assert registered_domain_of("a.b.example.com", tlds) == "example.com"
        assert registered_domain_of("EXAMPLE.COM.", tlds) == "example.com"
        assert registered_domain_of("ghost.invalid", tlds) is None
        assert registered_domain_of("com", tlds) is None


class TestCuration:
    def test_high_ground_truth_coverage(self, axfr_testbed):
        inet = axfr_testbed["inet"]
        result = curate_domain_list(inet, inet.allocator.next_v4())
        # CZDS alone covers most TLDs; combined coverage should be high.
        assert result.ground_truth_coverage > 0.9
        assert result.duplicates_removed > 0
        assert result.per_source["czds"] > 0

    def test_curated_list_feeds_the_scanner(self, axfr_testbed):
        """The full §4.1 flow: curated list → DNSKEY scan."""
        from repro.resolver.policy import VENDOR_POLICIES
        from repro.scanner.dnskey_scan import dnskey_scan
        from repro.scanner.engine import ScanEngine

        inet = axfr_testbed["inet"]
        result = curate_domain_list(inet, inet.allocator.next_v4())
        upstream = inet.make_resolver(VENDOR_POLICIES["google"], name="curate-up")
        engine = ScanEngine(inet.network, inet.allocator.next_v4(), upstream.ip)
        sample = result.domains[:40]
        enabled = dnskey_scan(engine, sample)
        truth = {d.name for d in axfr_testbed["domains"] if d.dnssec}
        assert set(enabled) == truth & set(sample)
