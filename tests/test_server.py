"""Tests for the authoritative server's response assembly."""

import random

import pytest

from repro.crypto.keys import make_ds
from repro.dns.flags import Flag
from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rdata import A
from repro.dns.types import Opcode, RdataType
from repro.dnssec.denial import collect_proof_records, verify_nodata, verify_nxdomain
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

ZONE = "example.com"


@pytest.fixture(scope="module")
def server():
    rng = random.Random(10)
    zone = (
        ZoneBuilder(ZONE)
        .soa("ns1.example.com", "h.example.com")
        .ns("ns1.example.com.")
        .a("ns1", "192.0.2.1")
        .a("www", "192.0.2.2")
        .cname("alias", "www.example.com.")
        .wildcard_a("192.0.2.9", under="wild")
        .a("wild", "192.0.2.8")
        .delegate("kid", "ns1.kid.example.com.")
        .build()
    )
    zone.add("ns1.kid.example.com", RdataType.A, 60, A("192.0.2.50"))
    sign_zone(zone, SigningPolicy(nsec3=Nsec3Params(iterations=4, salt=b"\x01")),
              rng=rng)
    srv = AuthoritativeServer("test-auth")
    srv.add_zone(zone)
    return srv


def ask(server, qname, qtype, dnssec=True):
    return server.handle_query(make_query(qname, qtype, want_dnssec=dnssec))


class TestPositive:
    def test_answer_with_aa(self, server):
        response = ask(server, "www.example.com", RdataType.A)
        assert response.rcode == Rcode.NOERROR
        assert response.has_flag(Flag.AA)
        assert response.answer[0][0].to_text() == "192.0.2.2"

    def test_rrsig_included_when_do(self, server):
        response = ask(server, "www.example.com", RdataType.A)
        assert response.find_rrset(response.answer, "www.example.com", RdataType.RRSIG)

    def test_no_rrsig_without_do(self, server):
        response = ask(server, "www.example.com", RdataType.A, dnssec=False)
        assert not response.find_rrset(
            response.answer, "www.example.com", RdataType.RRSIG
        )

    def test_cname_chased_in_zone(self, server):
        response = ask(server, "alias.example.com", RdataType.A)
        assert response.find_rrset(response.answer, "alias.example.com", RdataType.CNAME)
        assert response.find_rrset(response.answer, "www.example.com", RdataType.A)

    def test_apex_ns_glue(self, server):
        response = ask(server, "example.com", RdataType.NS)
        assert response.find_rrset(response.additional, "ns1.example.com", RdataType.A)


class TestNegative:
    def test_nxdomain_has_soa_and_verifiable_proof(self, server):
        response = ask(server, "ghost.example.com", RdataType.A)
        assert response.rcode == Rcode.NXDOMAIN
        assert response.find_rrset(response.authority, ZONE, RdataType.SOA)
        records, params = collect_proof_records(response.authority, ZONE)
        proof = verify_nxdomain("ghost.example.com", ZONE, records, params)
        assert proof.valid, proof.reason

    def test_nodata_proof(self, server):
        response = ask(server, "www.example.com", RdataType.TXT)
        assert response.rcode == Rcode.NOERROR
        assert not response.answer
        records, params = collect_proof_records(response.authority, ZONE)
        proof = verify_nodata("www.example.com", RdataType.TXT, ZONE, records, params)
        assert proof.valid, proof.reason

    def test_no_nsec3_without_do(self, server):
        response = ask(server, "ghost.example.com", RdataType.A, dnssec=False)
        assert not any(
            int(rrset.rrtype) == int(RdataType.NSEC3) for rrset in response.authority
        )


class TestWildcard:
    def test_expansion_with_proof(self, server):
        response = ask(server, "anything.wild.example.com", RdataType.A)
        assert response.rcode == Rcode.NOERROR
        assert response.answer[0].name == Name.from_text("anything.wild.example.com")
        # The next-closer proof must be present for validators.
        assert any(
            int(rrset.rrtype) == int(RdataType.NSEC3) for rrset in response.authority
        )

    def test_wildcard_rrsig_retargeted(self, server):
        response = ask(server, "anything.wild.example.com", RdataType.A)
        sigs = response.find_rrset(
            response.answer, "anything.wild.example.com", RdataType.RRSIG
        )
        assert sigs is not None
        assert sigs[0].labels == 3  # *.wild.example.com minus the asterisk


class TestDelegation:
    def test_referral_shape(self, server):
        response = ask(server, "host.kid.example.com", RdataType.A)
        assert response.rcode == Rcode.NOERROR
        assert not response.has_flag(Flag.AA)
        assert not response.answer
        ns = response.find_rrset(response.authority, "kid.example.com", RdataType.NS)
        assert ns is not None

    def test_referral_includes_glue(self, server):
        response = ask(server, "host.kid.example.com", RdataType.A)
        assert response.find_rrset(
            response.additional, "ns1.kid.example.com", RdataType.A
        )

    def test_insecure_referral_carries_no_ds_proof(self, server):
        response = ask(server, "host.kid.example.com", RdataType.A)
        assert any(
            int(rrset.rrtype) == int(RdataType.NSEC3) for rrset in response.authority
        )


class TestErrors:
    def test_refused_outside_zones(self, server):
        response = ask(server, "www.other.net", RdataType.A)
        assert response.rcode == Rcode.REFUSED

    def test_formerr_on_response_message(self, server):
        query = make_query("www.example.com", RdataType.A)
        query.set_flag(Flag.QR)
        assert server.handle_query(query).rcode == Rcode.FORMERR

    def test_formerr_on_empty_question(self, server):
        query = make_query("www.example.com", RdataType.A)
        query.question = []
        assert server.handle_query(query).rcode == Rcode.FORMERR

    def test_notimpl_opcode(self, server):
        query = make_query("www.example.com", RdataType.A)
        query.opcode = Opcode.UPDATE
        assert server.handle_query(query).rcode == Rcode.FORMERR

    def test_garbage_datagram_ignored(self, server):
        assert server.handle_datagram(b"\x00\x01", "1.2.3.4") is None


class TestQueryLog:
    def test_queries_logged(self, server):
        before = len(server.log)
        ask(server, "logged.example.com", RdataType.A)
        assert len(server.log) == before + 1
        assert server.log.sources_for("logged.example.com") == ["?"]
