"""Tests for crash-safe multi-process campaign supervision.

Covers the deterministic unit partition, the ``kill`` fault-spec split,
the procpool heartbeat/watchdog machinery, the shard record codecs, the
partial-coverage merge for quarantined shards, and — under the ``slow``
marker — the headline acceptance property: a supervised fleet with
injected SIGKILLs/hangs produces a report byte-identical to the clean
single-process run, resuming every restart from the shard journal.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.zone_compliance import Nsec3Observation
from repro.net.faults import ProcessKill
from repro.net.procpool import (
    Heartbeat,
    HeartbeatWriter,
    Watchdog,
    backoff_delay,
    read_heartbeat,
    write_heartbeat,
)
from repro.scanner.campaign import CampaignCheckpoint, CampaignError
from repro.scanner.supervisor import (
    WORKER_SCHEMA,
    CampaignPlan,
    Coverage,
    _ShardState,
    _checkpoint_path,
    deployment_counts,
    merge_shards,
    observation_from_record,
    observation_to_record,
    plan_units,
    run_supervised,
    shard_units,
    split_fault_spec,
    unit_key,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _plan(role="study", domains=8, tlds=8, resolvers=3, workers=2, **kw):
    return CampaignPlan(
        role=role,
        domains=domains,
        tlds=tlds,
        resolvers=resolvers,
        seed=5,
        workers=workers,
        state_dir=kw.pop("state_dir", "/nonexistent"),
        **kw,
    )


class TestPlanUnits:
    def test_round_robin_partition_is_exact(self):
        plan = _plan()
        units, __, __ = plan_units(plan)
        shards = [shard_units(units, s, plan.workers) for s in range(plan.workers)]
        # Disjoint, exhaustive, and order-preserving within each shard.
        flat = [unit for shard in shards for unit in shard]
        assert sorted(map(unit_key, flat)) == sorted(map(unit_key, units))
        assert len(set(map(unit_key, flat))) == len(units)
        for shard in shards:
            indices = [units.index(unit) for unit in shard]
            assert indices == sorted(indices)

    def test_unit_kinds_by_role(self):
        study_units, domains, tlds = plan_units(_plan("study"))
        kinds = {kind for kind, __ in study_units}
        assert kinds == {"d", "t", "r"}
        assert sum(1 for k, __ in study_units if k == "d") == len(domains)
        assert sum(1 for k, __ in study_units if k == "t") == len(tlds)
        scan_units, __, __ = plan_units(_plan("scan"))
        assert {kind for kind, __ in scan_units} == {"d"}
        survey_units, __, __ = plan_units(_plan("survey"))
        assert {kind for kind, __ in survey_units} == {"r"}
        expected = sum(deployment_counts(3).values())
        assert len(survey_units) == expected

    def test_same_plan_same_units(self):
        # Supervisor and workers derive the list independently; any drift
        # would silently corrupt the merge.
        first, __, __ = plan_units(_plan())
        second, __, __ = plan_units(_plan())
        assert first == second

    def test_unit_key(self):
        assert unit_key(("d", "example.com")) == "d/example.com"
        assert unit_key(("r", "12")) == "r/12"


class TestSplitFaultSpec:
    def test_kill_only_leaves_no_network_spec(self):
        network, kills = split_fault_spec("kill:1.0:2:0.5", seed=9)
        assert network is None
        assert len(kills) == 1
        assert kills[0].rate == 1.0 and kills[0].max_kills == 2
        assert kills[0].hang_rate == 0.5

    def test_mixed_spec_strips_kill_tokens(self):
        network, kills = split_fault_spec(
            "burst:0.1,kill:1.0:1,jitter:5", seed=9
        )
        assert network == "burst:0.1,jitter:5"
        assert len(kills) == 1

    def test_network_only_passes_through(self):
        network, kills = split_fault_spec("burst:0.1", seed=9)
        assert network == "burst:0.1" and kills == []

    def test_empty(self):
        assert split_fault_spec(None) == (None, [])
        assert split_fault_spec("") == (None, [])


class TestCampaignPlanFromArgs:
    def _args(self, **kw):
        defaults = dict(
            domains=100,
            tlds=10,
            resolvers=5,
            seed=7,
            workers=2,
            state_dir="/tmp/x",
            concurrency=1,
            faults=None,
            metrics_out=None,
            discard_checkpoint=False,
            stall_timeout=60.0,
            max_restarts=3,
        )
        defaults.update(kw)
        return SimpleNamespace(**defaults)

    def test_survey_clamps_domains(self):
        plan = CampaignPlan.from_args(self._args(), "survey")
        assert plan.domains == 20
        assert CampaignPlan.from_args(self._args(), "study").domains == 100

    def test_kill_tuple_extracted(self):
        plan = CampaignPlan.from_args(
            self._args(faults="kill:0.9:2:0.25"), "study"
        )
        assert plan.faults is None
        rate, max_kills, hang_rate, kill_seed = plan.kill
        assert (rate, max_kills, hang_rate) == (0.9, 2, 0.25)
        # The derived per-model seed just has to be stable across calls.
        assert CampaignPlan.from_args(
            self._args(faults="kill:0.9:2:0.25"), "study"
        ).kill[3] == kill_seed

    def test_roundtrips_through_dict(self):
        plan = CampaignPlan.from_args(self._args(), "study")
        assert CampaignPlan(**plan.to_dict()) == plan


class TestProcessKillDeterminism:
    def test_sentence_is_deterministic(self):
        model = ProcessKill(rate=1.0, max_kills=2, hang_rate=0.5, seed=3)
        for shard in range(4):
            for attempt in range(2):
                assert model.decide(shard, attempt, 20) == model.decide(
                    shard, attempt, 20
                )

    def test_max_kills_bounds_attempts(self):
        model = ProcessKill(rate=1.0, max_kills=1, seed=3)
        action, __ = model.decide(0, 0, 20)
        assert action in ("kill", "hang")
        assert model.decide(0, 1, 20) == (None, None)

    def test_after_units_within_shard(self):
        model = ProcessKill(rate=1.0, max_kills=1, seed=3)
        for shard in range(8):
            __, after = model.decide(shard, 0, 10)
            assert 0 <= after < 10


class TestProcpool:
    def test_backoff_delay_doubles_and_caps(self):
        assert backoff_delay(0, 0.25) == 0.0
        assert backoff_delay(1, 0.25) == 0.25
        assert backoff_delay(2, 0.25) == 0.5
        assert backoff_delay(3, 0.25) == 1.0
        assert backoff_delay(50, 0.25) == 30.0

    def test_heartbeat_roundtrip(self, tmp_path):
        path = tmp_path / "w.hb"
        beat = Heartbeat(
            t=12.5, pid=42, attempt=1, phase="scan", units_done=7, built=31
        )
        write_heartbeat(path, beat)
        assert read_heartbeat(path) == beat
        assert not (tmp_path / "w.hb.tmp").exists()

    def test_read_heartbeat_defaults_missing_built(self, tmp_path):
        # Beats written by an older worker carry no built counter.
        path = tmp_path / "old.hb"
        path.write_text(
            '{"t": 1.0, "pid": 9, "attempt": 0, "phase": "build", '
            '"units_done": 0}'
        )
        beat = read_heartbeat(path)
        assert beat is not None and beat.built == 0

    def test_read_heartbeat_tolerates_garbage(self, tmp_path):
        assert read_heartbeat(tmp_path / "missing.hb") is None
        bad = tmp_path / "bad.hb"
        bad.write_text("not json")
        assert read_heartbeat(bad) is None

    def test_heartbeat_writer_beats_and_advances(self, tmp_path):
        path = tmp_path / "w.hb"
        writer = HeartbeatWriter(path, attempt=2, interval_s=0.05)
        writer.start(phase="build")
        try:
            assert read_heartbeat(path).phase == "build"
            writer.advance(units_done=3, phase="scan")
            beat = read_heartbeat(path)
            assert beat.units_done == 3 and beat.phase == "scan"
            assert beat.attempt == 2 and beat.pid == os.getpid()
            first_t = beat.t
            deadline = time.time() + 2.0
            while time.time() < deadline:
                if read_heartbeat(path).t != first_t:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("heartbeat thread never beat on its own")
        finally:
            writer.stop()

    def test_watchdog_progress_resets_deadline(self):
        clock = [0.0]
        watchdog = Watchdog(stall_timeout_s=10.0, clock=lambda: clock[0])
        beat = Heartbeat(t=0.0, pid=1, attempt=0, phase="scan", units_done=0)
        watchdog.observe(beat)
        clock[0] = 9.0
        assert not watchdog.stalled()
        watchdog.observe(
            Heartbeat(t=9.0, pid=1, attempt=0, phase="scan", units_done=1)
        )
        clock[0] = 15.0
        assert not watchdog.stalled()  # progress at t=9 restarted the clock
        clock[0] = 19.5
        assert watchdog.stalled()

    def test_watchdog_frozen_units_stall(self):
        # The hang fault: heartbeats keep arriving but units never move.
        clock = [0.0]
        watchdog = Watchdog(stall_timeout_s=5.0, clock=lambda: clock[0])
        for step in range(1, 30):
            clock[0] = step * 0.5
            watchdog.observe(
                Heartbeat(
                    t=clock[0], pid=1, attempt=0, phase="scan", units_done=4
                )
            )
            if watchdog.stalled():
                break
        else:
            pytest.fail("a hung worker was never declared stalled")
        assert clock[0] > 5.0

    def test_watchdog_build_phase_exempt_while_built_advances(self):
        # A worker signing zones completes no units, but it reports every
        # signed zone through the ``built`` counter; the deadline extends
        # only while that count moves.
        clock = [0.0]
        watchdog = Watchdog(stall_timeout_s=5.0, clock=lambda: clock[0])
        for step in range(1, 40):
            clock[0] = step * 0.5
            watchdog.observe(
                Heartbeat(
                    t=clock[0],
                    pid=1,
                    attempt=0,
                    phase="build",
                    units_done=0,
                    built=step,
                )
            )
        assert not watchdog.stalled()

    def test_watchdog_frozen_built_stalls_build_phase(self):
        # The beating thread stays alive (t advances) but the main thread
        # hangs mid-zone (built freezes): condemned after the timeout —
        # a live heartbeat clock alone no longer buys an exemption.
        clock = [0.0]
        watchdog = Watchdog(stall_timeout_s=5.0, clock=lambda: clock[0])
        for step in range(1, 30):
            clock[0] = step * 0.5
            watchdog.observe(
                Heartbeat(
                    t=clock[0],
                    pid=1,
                    attempt=0,
                    phase="build",
                    units_done=0,
                    built=3,
                )
            )
            if watchdog.stalled():
                break
        else:
            pytest.fail("a build hung mid-zone was never declared stalled")
        assert clock[0] > 5.0


class TestObservationRecords:
    def test_roundtrip(self):
        observation = Nsec3Observation(
            domain="example.com",
            dnssec_enabled=True,
            nsec3param_records=((1, 0, b""),),
            nsec3_records=((1, 0, b"\xca\xfe"), (1, 5, b"")),
            opt_out_seen=True,
            delegation_count=42,
            zone_published_openly=False,
        )
        rebuilt = observation_from_record(observation_to_record(observation))
        assert rebuilt.domain == observation.domain
        assert rebuilt.nsec3param_records == observation.nsec3param_records
        assert rebuilt.nsec3_records == observation.nsec3_records
        assert rebuilt.opt_out_seen and rebuilt.delegation_count == 42
        assert not rebuilt.zone_published_openly

    def test_foreign_record_raises_campaign_error(self):
        with pytest.raises(CampaignError, match="discard-checkpoint"):
            observation_from_record({"not": "an observation"})


class TestMergePartialCoverage:
    def test_lame_shard_degrades_to_partial_report(self, tmp_path):
        # Scan role: units are domains only, records need no testbed.
        plan = _plan(
            "scan", domains=8, tlds=6, resolvers=0, state_dir=str(tmp_path)
        )
        units, domain_specs, __ = plan_units(plan)
        shard0 = _ShardState(0, len(shard_units(units, 0, 2)))
        shard0.status = "done"
        shard1 = _ShardState(1, len(shard_units(units, 1, 2)))
        shard1.status = "lame"

        # Shard 0 delivered everything; shard 1's journal salvaged only
        # its first unit before it went lame.
        checkpoint0 = CampaignCheckpoint(
            _checkpoint_path(str(tmp_path), 0), schema=WORKER_SCHEMA
        )
        for unit in shard_units(units, 0, 2):
            checkpoint0.record(unit_key(unit), {"enabled": False})
        checkpoint0.flush()
        salvaged = shard_units(units, 1, 2)[0]
        checkpoint1 = CampaignCheckpoint(
            _checkpoint_path(str(tmp_path), 1), schema=WORKER_SCHEMA
        )
        checkpoint1.record(unit_key(salvaged), {"enabled": False})
        checkpoint1.flush()

        outcome = merge_shards(plan, units, domain_specs, [shard0, shard1])
        coverage = outcome.coverage
        assert not coverage.complete
        assert coverage.lame_shards == [1]
        assert coverage.units_merged == len(shard_units(units, 0, 2)) + 1
        lost = [unit_key(u) for u in shard_units(units, 1, 2)[1:]]
        assert coverage.missing == lost
        assert outcome.total_domains == len(domain_specs)

    def test_unreadable_shard_checkpoint_is_skipped(self, tmp_path):
        plan = _plan(
            "scan", domains=4, tlds=4, resolvers=0, state_dir=str(tmp_path)
        )
        units, domain_specs, __ = plan_units(plan)
        Path(_checkpoint_path(str(tmp_path), 0)).write_text("corrupt")
        shard0 = _ShardState(0, len(shard_units(units, 0, 2)))
        shard0.status = "lame"
        shard1 = _ShardState(1, len(shard_units(units, 1, 2)))
        shard1.status = "lame"
        outcome = merge_shards(plan, units, domain_specs, [shard0, shard1])
        assert outcome.coverage.units_merged == 0
        assert len(outcome.coverage.missing) == len(units)

    def test_coverage_complete_property(self):
        assert Coverage(units_total=4, units_merged=4).complete
        assert not Coverage(units_total=4, missing=["d/x"]).complete
        assert not Coverage(units_total=4, lame_shards=[1]).complete


def _run_cli(argv, **kw):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
        **kw,
    )


SMALL_STUDY = ["study", "--domains", "8", "--tlds", "8",
               "--resolvers", "3", "--seed", "5"]


@pytest.fixture(scope="module")
def single_process_study():
    """The clean single-process baseline every supervised run must match."""
    proc = _run_cli(SMALL_STUDY)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestSupervisedAcceptance:
    def test_clean_fleet_matches_single_process_bytes(
        self, tmp_path, single_process_study
    ):
        proc = _run_cli(
            SMALL_STUDY + ["--workers", "2", "--state-dir", str(tmp_path)]
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == single_process_study
        assert "coverage=30/30" in proc.stderr

    def test_killed_fleet_restarts_resumes_and_matches_bytes(
        self, tmp_path, single_process_study
    ):
        metrics_path = tmp_path / "metrics.json"
        proc = _run_cli(
            SMALL_STUDY
            + [
                "--workers", "2",
                "--state-dir", str(tmp_path / "state"),
                "--faults", "kill:1.0:1",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert proc.returncode == 0, proc.stderr
        # Both shards were SIGKILLed once and restarted, yet the report
        # is byte-identical to the clean single-process run.
        assert proc.stdout == single_process_study
        metrics = json.loads(metrics_path.read_text())
        restarts = sum(
            sample["value"]
            for sample in metrics["repro_supervisor_restarts_total"]["samples"]
        )
        assert restarts >= 2
        # Every restarted shard resumed its journaled prefix instead of
        # re-querying it: resumed + executed covers the shard exactly.
        resumed_total = 0
        for shard in (0, 1):
            report = json.loads(
                (tmp_path / "state" / f"shard-{shard}.done.json").read_text()
            )
            assert report["resumed"] + report["executed"] == report["units"]
            resumed_total += report["resumed"]
        assert resumed_total > 0

    def test_hung_worker_is_killed_by_watchdog(
        self, tmp_path, single_process_study
    ):
        proc = _run_cli(
            SMALL_STUDY
            + [
                "--workers", "2",
                "--state-dir", str(tmp_path),
                "--faults", "kill:1.0:1:1.0",  # hang_rate=1.0: all hangs
                "--stall-timeout", "3",
            ]
        )
        assert proc.returncode == 0, proc.stderr
        assert "heartbeat stalled" in proc.stderr
        assert proc.stdout == single_process_study

    def test_lame_shards_yield_partial_coverage(self, tmp_path):
        # No restart budget + guaranteed kills: both shards go lame, the
        # merge salvages their journals instead of sinking the campaign.
        plan = _plan(
            "scan",
            domains=8,
            tlds=6,
            resolvers=0,
            state_dir=str(tmp_path),
            kill=(1.0, 99, 0.0, 5),
            max_restarts=0,
            flush_every=1,
        )
        outcome = run_supervised(plan)
        assert sorted(outcome.coverage.lame_shards) == [0, 1]
        assert not outcome.coverage.complete
        assert 0 < outcome.coverage.units_merged < outcome.coverage.units_total

    def test_requires_at_least_two_workers(self, tmp_path):
        with pytest.raises(ValueError):
            run_supervised(_plan(workers=1, state_dir=str(tmp_path)))


class TestOperatorShutdown:
    """Graceful SIGTERM/SIGINT: journal flushed, no restart storm."""

    class _FakeCheckpoint:
        def __init__(self, log):
            self.log = log

        def flush(self):
            self.log.append("flush")

    class _FakeHeartbeat:
        def __init__(self, log):
            self.log = log

        def advance(self, **kwargs):
            self.log.append(("advance", kwargs))

        def stop(self):
            self.log.append("stop")

    def _flag(self):
        import signal as signal_module

        from repro.scanner.supervisor import _ShutdownFlag

        log = []
        flag = _ShutdownFlag(
            self._FakeCheckpoint(log), self._FakeHeartbeat(log)
        )
        return flag, log, signal_module

    def test_inert_until_a_signal_arrives(self):
        flag, log, __ = self._flag()
        flag.check()
        flag.check()
        assert log == []

    def test_check_flushes_says_goodbye_and_raises(self):
        from repro.scanner.supervisor import OperatorShutdown

        flag, log, signal_module = self._flag()
        flag._handle(signal_module.SIGTERM, None)  # what the handler does
        with pytest.raises(OperatorShutdown) as info:
            flag.check()
        assert info.value.signum == signal_module.SIGTERM
        # Journal first (nothing resumable may be lost), then the final
        # "terminated" heartbeat the supervisor recognises, then stop.
        assert log == [
            "flush",
            ("advance", {"phase": "terminated"}),
            "stop",
        ]

    def test_exit_code_encodes_the_signal(self):
        import signal as signal_module

        from repro.scanner.supervisor import OperatorShutdown

        stop = OperatorShutdown(signal_module.SIGTERM)
        assert 128 + stop.signum == 143
        assert "signal" in str(stop)

    def test_stopped_shard_merges_its_journal(self, tmp_path):
        plan = _plan(
            "scan", domains=8, tlds=6, resolvers=0, state_dir=str(tmp_path)
        )
        units, domain_specs, __ = plan_units(plan)
        shard0 = _ShardState(0, len(shard_units(units, 0, 2)))
        shard0.status = "done"
        shard1 = _ShardState(1, len(shard_units(units, 1, 2)))
        shard1.status = "stopped"

        checkpoint0 = CampaignCheckpoint(
            _checkpoint_path(str(tmp_path), 0), schema=WORKER_SCHEMA
        )
        for unit in shard_units(units, 0, 2):
            checkpoint0.record(unit_key(unit), {"enabled": False})
        checkpoint0.flush()
        # The operator's SIGTERM landed after shard 1 journaled one unit.
        salvaged = shard_units(units, 1, 2)[0]
        checkpoint1 = CampaignCheckpoint(
            _checkpoint_path(str(tmp_path), 1), schema=WORKER_SCHEMA
        )
        checkpoint1.record(unit_key(salvaged), {"enabled": False})
        checkpoint1.flush()

        outcome = merge_shards(plan, units, domain_specs, [shard0, shard1])
        coverage = outcome.coverage
        assert coverage.stopped_shards == [1]
        assert coverage.lame_shards == []
        # The flushed prefix made it into the merged report...
        assert coverage.units_merged == len(shard_units(units, 0, 2)) + 1
        # ...and the un-scanned tail is reported as missing, so a stop
        # mid-campaign still reads as partial coverage.
        assert not coverage.complete


class TestCliExitCodes:
    """Operator-facing CLI failures: one line on stderr, typed exit codes."""

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.__main__ as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_guidance", interrupted)
        assert cli.main(["guidance"]) == 130
        captured = capsys.readouterr()
        assert "repro: interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_campaign_error_exits_2_with_one_line(self, monkeypatch, capsys):
        import repro.__main__ as cli

        def failing(args):
            raise CampaignError("state dir belongs to another campaign")

        monkeypatch.setattr(cli, "cmd_guidance", failing)
        assert cli.main(["guidance"]) == 2
        captured = capsys.readouterr()
        assert "repro: state dir belongs to another campaign" in captured.err
        assert "Traceback" not in captured.err

    def test_exit_code_on_partial_returns_4(self, monkeypatch, tmp_path, capsys):
        import repro.__main__ as cli
        import repro.scanner.supervisor as supervisor_module

        coverage = Coverage(units_total=4, units_merged=3, missing=["d/x"])
        outcome = SimpleNamespace(
            domain_results=[], total_domains=2, coverage=coverage
        )
        monkeypatch.setattr(
            supervisor_module, "run_supervised", lambda plan: outcome
        )
        monkeypatch.setattr(
            supervisor_module.CampaignPlan,
            "from_args",
            classmethod(lambda cls, args, role: None),
        )
        args = SimpleNamespace(
            state_dir=str(tmp_path),
            metrics_out=None,
            exit_code_on_partial=True,
        )
        assert cli._run_supervised_command(args, "scan") == 4
        assert "exiting 4" in capsys.readouterr().err

    def test_complete_coverage_returns_none(self, monkeypatch, tmp_path):
        import repro.__main__ as cli
        import repro.scanner.supervisor as supervisor_module

        coverage = Coverage(units_total=4, units_merged=4)
        outcome = SimpleNamespace(
            domain_results=[], total_domains=2, coverage=coverage
        )
        monkeypatch.setattr(
            supervisor_module, "run_supervised", lambda plan: outcome
        )
        monkeypatch.setattr(
            supervisor_module.CampaignPlan,
            "from_args",
            classmethod(lambda cls, args, role: None),
        )
        args = SimpleNamespace(
            state_dir=str(tmp_path),
            metrics_out=None,
            exit_code_on_partial=True,
        )
        assert cli._run_supervised_command(args, "scan") is None
