"""Fuzz-style decode robustness: garbage bytes must fail as WireError only.

The resilient transport treats "does not parse" as one condition
(:class:`repro.dns.wire.WireError`); any other exception escaping
``Message.from_wire`` would crash a resolver or scanner mid-campaign.
These tests drive seeded random and corrupted inputs through the decoder
and check both that contract and the decode-work caps (record counts,
EDNS option counts) added against parse-amplification attacks.
"""

import random

import pytest

from repro.dns.flags import Flag
from repro.dns.message import Message, make_query, make_response
from repro.dns.rdata import A, NS
from repro.dns.rdata.opt import EdnsOption
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dns.wire import MAX_DECODE_RECORDS, MAX_EDNS_OPTIONS, WireError


def _sample_response():
    """A realistic response message with every section populated."""
    query = make_query("www.fuzz-target.example", RdataType.A, want_dnssec=True)
    response = make_response(query, recursion_available=True)
    response.set_flag(Flag.AA)
    response.answer.append(
        RRset("www.fuzz-target.example", RdataType.A, 300, [A("192.0.2.80")])
    )
    response.authority.append(
        RRset("fuzz-target.example", RdataType.NS, 3600, [NS("ns1.fuzz-target.example.")])
    )
    response.additional.append(
        RRset("ns1.fuzz-target.example", RdataType.A, 3600, [A("192.0.2.53")])
    )
    return response


def test_random_bytes_decode_only_raises_wire_error():
    rng = random.Random(0xD05)
    for __ in range(400):
        blob = bytes(rng.randrange(256) for __ in range(rng.randrange(0, 96)))
        try:
            Message.from_wire(blob)
        except WireError:
            pass  # the only acceptable failure mode


def test_bit_flip_corruption_only_raises_wire_error():
    wire = _sample_response().to_wire()
    rng = random.Random(0xF11)
    for __ in range(300):
        corrupted = bytearray(wire)
        for __ in range(rng.randrange(1, 6)):
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
        try:
            Message.from_wire(bytes(corrupted))
        except WireError:
            pass


def test_every_truncation_point_only_raises_wire_error():
    wire = _sample_response().to_wire()
    for cut in range(len(wire)):
        try:
            Message.from_wire(wire[:cut])
        except WireError:
            pass


def test_valid_message_roundtrips():
    response = _sample_response()
    decoded = Message.from_wire(response.to_wire())
    assert decoded.question == response.question
    assert decoded.find_rrset(decoded.answer, "www.fuzz-target.example", RdataType.A)


def test_record_count_cap_rejects_huge_claims():
    # A bare header claiming 4 x 65,535 records: the decoder must reject
    # it up front instead of iterating a quarter-million record headers.
    header = (0x1234).to_bytes(2, "big") + b"\x80\x00" + b"\xff\xff" * 4
    with pytest.raises(WireError, match="decode cap"):
        Message.from_wire(header)
    assert 4 * 0xFFFF > MAX_DECODE_RECORDS


def test_edns_option_count_cap():
    query = make_query("cap.example", RdataType.A)
    query.edns.options = [
        EdnsOption(65001 + (i % 3), b"pad") for i in range(MAX_EDNS_OPTIONS + 1)
    ]
    with pytest.raises(WireError, match="decode cap"):
        Message.from_wire(query.to_wire())


def test_edns_options_at_the_cap_decode():
    query = make_query("cap.example", RdataType.A)
    query.edns.options = [EdnsOption(65001, b"pad") for __ in range(MAX_EDNS_OPTIONS)]
    decoded = Message.from_wire(query.to_wire())
    assert len(decoded.edns.options) == MAX_EDNS_OPTIONS
