"""Tests for the pure-Python RSA and ECDSA implementations."""

import random

import pytest

from repro.crypto import ecdsa, rsa
from repro.crypto.primes import generate_prime, is_probable_prime


class TestPrimes:
    def test_small_primes(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert is_probable_prime(7919)

    def test_small_composites(self):
        assert not is_probable_prime(1)
        assert not is_probable_prime(0)
        assert not is_probable_prime(91)  # 7 * 13
        assert not is_probable_prime(561)  # Carmichael number

    def test_generated_prime_has_exact_bits(self):
        rng = random.Random(1)
        prime = generate_prime(128, rng=rng)
        assert prime.bit_length() == 128
        assert is_probable_prime(prime)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4)


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return rsa.generate_rsa_key(512, rng=random.Random(7))

    def test_sign_verify(self, key):
        signature = key.sign(b"the message", "sha256")
        assert key.public().verify(b"the message", signature, "sha256")

    def test_verify_rejects_wrong_message(self, key):
        signature = key.sign(b"the message", "sha256")
        assert not key.public().verify(b"other message", signature, "sha256")

    def test_verify_rejects_bitflip(self, key):
        signature = bytearray(key.sign(b"m", "sha256"))
        signature[10] ^= 0x01
        assert not key.public().verify(b"m", bytes(signature), "sha256")

    def test_verify_rejects_wrong_length(self, key):
        assert not key.public().verify(b"m", b"\x00" * 10, "sha256")

    def test_sha1_mode(self, key):
        signature = key.sign(b"legacy", "sha1")
        assert key.public().verify(b"legacy", signature, "sha1")
        assert not key.public().verify(b"legacy", signature, "sha256")

    def test_public_key_encoding_round_trip(self, key):
        encoded = rsa.encode_public_key(key)
        decoded = rsa.decode_public_key(encoded)
        assert decoded.n == key.n and decoded.e == key.e

    def test_long_exponent_encoding(self):
        # Force the 3-byte exponent-length header path.
        fake = rsa.RsaPublicKey((1 << 512) + 1, (1 << 2050) + 1)
        encoded = rsa.encode_public_key(fake)
        decoded = rsa.decode_public_key(encoded)
        assert decoded.e == fake.e and decoded.n == fake.n

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            rsa.decode_public_key(b"")
        with pytest.raises(ValueError):
            rsa.decode_public_key(b"\x00\x00")

    def test_modulus_too_small_for_digest(self):
        tiny = rsa.RsaPrivateKey(3 * 5, 3, 3)
        with pytest.raises(ValueError):
            tiny.sign(b"x", "sha256")


class TestEcdsa:
    @pytest.fixture(scope="class")
    def key(self):
        return ecdsa.generate_ecdsa_key(random.Random(11))

    def test_public_point_on_curve(self, key):
        assert ecdsa.is_on_curve(key.public_point)

    def test_sign_verify(self, key):
        signature = key.sign(b"hello ecdsa")
        assert len(signature) == 64
        assert key.public().verify(b"hello ecdsa", signature)

    def test_deterministic_signatures(self, key):
        # RFC 6979 nonces: same message, same signature.
        assert key.sign(b"stable") == key.sign(b"stable")

    def test_verify_rejects_wrong_message(self, key):
        signature = key.sign(b"one")
        assert not key.public().verify(b"two", signature)

    def test_verify_rejects_bitflip(self, key):
        signature = bytearray(key.sign(b"m"))
        signature[5] ^= 0x40
        assert not key.public().verify(b"m", bytes(signature))

    def test_verify_rejects_zero_r(self, key):
        assert not key.public().verify(b"m", b"\x00" * 64)

    def test_verify_rejects_bad_length(self, key):
        assert not key.public().verify(b"m", b"\x01" * 63)

    def test_public_key_encoding_round_trip(self, key):
        encoded = ecdsa.encode_public_key(key.public())
        assert len(encoded) == 64
        decoded = ecdsa.decode_public_key(encoded)
        assert decoded.point == key.public_point

    def test_decode_rejects_off_curve(self):
        with pytest.raises(ValueError):
            ecdsa.decode_public_key(b"\x01" * 64)

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ecdsa.decode_public_key(b"\x01" * 63)

    def test_scalar_mult_matches_known_vector(self):
        # 2·G for P-256 (public test vector).
        point = ecdsa._scalar_mult(2, (ecdsa.GX, ecdsa.GY))
        assert point[0] == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert point[1] == int(
            "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
        )

    def test_base_table_consistent_with_generic_mult(self):
        rng = random.Random(3)
        for __ in range(5):
            k = rng.getrandbits(160)
            fast = ecdsa._scalar_mult(k, (ecdsa.GX, ecdsa.GY))
            slow = ecdsa._from_jacobian(
                ecdsa._scalar_mult_jac(k, (ecdsa.GX, ecdsa.GY))
            )
            assert fast == slow

    def test_private_scalar_bounds(self):
        with pytest.raises(ValueError):
            ecdsa.EcdsaPrivateKey(0)
        with pytest.raises(ValueError):
            ecdsa.EcdsaPrivateKey(ecdsa.N)
