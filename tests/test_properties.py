"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import Cdf
from repro.dns.base32 import b32hex_decode, b32hex_encode
from repro.dns.bitmap import decode_bitmap, encode_bitmap
from repro.dns.message import Message, Question, make_query
from repro.dns.name import Name
from repro.dns.rdata import A, TXT
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dns.wire import Reader, Writer
from repro.dnssec.denial import hash_covers
from repro.dnssec.nsec3hash import nsec3_hash

# -- strategies ---------------------------------------------------------------

label_st = st.text(
    alphabet=string.ascii_letters + string.digits + "-", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-"))

name_st = st.lists(label_st, min_size=0, max_size=5).map(
    lambda labels: Name.from_labels(*labels)
)


class TestBase32Properties:
    @given(st.binary(max_size=64))
    def test_encode_decode_round_trip(self, data):
        assert b32hex_decode(b32hex_encode(data)) == data

    @given(st.binary(min_size=1, max_size=24), st.binary(min_size=1, max_size=24))
    def test_order_preserved(self, a, b):
        # Only guaranteed for equal-length inputs (like NSEC3's 20-byte
        # hashes): base32hex is then a monotone encoding.
        size = min(len(a), len(b))
        a, b = a[:size], b[:size]
        assert (a < b) == (b32hex_encode(a) < b32hex_encode(b))


class TestBitmapProperties:
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=40))
    def test_round_trip(self, types):
        assert decode_bitmap(encode_bitmap(types)) == sorted(set(types))


class TestNameProperties:
    @given(name_st)
    def test_text_round_trip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(name_st)
    def test_wire_round_trip(self, name):
        reader = Reader(name.to_wire())
        assert reader.read_name() == name

    @given(name_st, name_st)
    def test_order_total_and_consistent(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(name_st, label_st)
    def test_child_is_subdomain(self, name, label):
        try:
            child = name.prepend(label.encode())
        except Exception:
            return
        assert child.is_subdomain_of(name)
        assert child.parent() == name

    @given(name_st)
    def test_canonical_wire_idempotent_under_case(self, name):
        upper = Name.from_text(name.to_text().upper())
        assert upper.canonical_wire() == name.canonical_wire()


class TestCompressionProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.lists(name_st, min_size=1, max_size=6))
    def test_compressed_names_decode_identically(self, names):
        writer = Writer()
        for name in names:
            writer.write_name(name)
        reader = Reader(writer.getvalue())
        decoded = [reader.read_name() for __ in names]
        assert decoded == list(names)

    @given(st.lists(name_st, min_size=1, max_size=6))
    def test_compression_never_grows(self, names):
        compressed = Writer()
        plain = Writer(enable_compression=False)
        for name in names:
            compressed.write_name(name)
            plain.write_name(name)
        assert len(compressed) <= len(plain)


class TestMessageProperties:
    @settings(deadline=None)
    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        name_st,
        st.sampled_from([RdataType.A, RdataType.NS, RdataType.DNSKEY, RdataType.NSEC3]),
        st.booleans(),
    )
    def test_query_round_trip(self, msg_id, name, rrtype, dnssec):
        query = make_query(name, rrtype, want_dnssec=dnssec, msg_id=msg_id)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.id == msg_id
        assert decoded.question[0] == Question(name, rrtype)
        assert decoded.dnssec_ok == dnssec

    @settings(deadline=None)
    @given(
        st.lists(
            st.tuples(name_st, st.integers(min_value=0, max_value=3)),
            min_size=0,
            max_size=5,
        )
    )
    def test_answer_sections_round_trip(self, entries):
        msg = Message(7)
        for name, n_rdata in entries:
            rrset = RRset(name, RdataType.A, 60)
            for index in range(n_rdata):
                rrset.add(A(f"10.0.{index}.1"))
            if rrset:
                msg.add_rrset(msg.answer, rrset)
        decoded = Message.from_wire(msg.to_wire())
        original_records = {
            (rrset.name, rdata.to_text())
            for rrset in msg.answer
            for rdata in rrset
        }
        decoded_records = {
            (rrset.name, rdata.to_text())
            for rrset in decoded.answer
            for rdata in rrset
        }
        assert decoded_records == original_records


class TestNsec3HashProperties:
    @given(name_st, st.binary(max_size=8), st.integers(min_value=0, max_value=50))
    def test_deterministic(self, name, salt, iterations):
        a = nsec3_hash(name.canonical_wire(), salt, iterations)
        b = nsec3_hash(name.canonical_wire(), salt, iterations)
        assert a == b and len(a) == 20

    @given(st.binary(min_size=20, max_size=20), st.binary(min_size=20, max_size=20),
           st.binary(min_size=20, max_size=20))
    def test_cover_excludes_endpoints(self, owner, nxt, target):
        if hash_covers(owner, nxt, target):
            assert target != owner and target != nxt

    @given(st.binary(min_size=4, max_size=4), st.binary(min_size=4, max_size=4))
    def test_circular_chain_covers_everything_once(self, a, b):
        # For two distinct hashes the two arcs partition the space minus
        # the endpoints themselves.
        if a == b:
            return
        lo, hi = sorted([a, b])
        probe = bytes([(lo[0] + 1) % 256]) + lo[1:]
        if probe in (lo, hi):
            return
        covered_first = hash_covers(lo, hi, probe)
        covered_second = hash_covers(hi, lo, probe)
        assert covered_first != covered_second


class TestTxtProperties:
    @given(st.lists(st.binary(max_size=80), min_size=1, max_size=4))
    def test_txt_wire_round_trip(self, strings):
        from repro.dns.rdata import parse_rdata

        rdata = TXT(strings)
        wire = rdata.to_wire()
        parsed = parse_rdata(RdataType.TXT, Reader(wire), len(wire))
        assert parsed.strings == rdata.strings


class TestCdfProperties:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_monotone_and_bounded(self, samples):
        cdf = Cdf(samples)
        values = [cdf.fraction_at_or_below(x) for x in range(-1001, 1002, 97)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values)
        assert cdf.fraction_at_or_below(1000) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_percentile_consistent(self, samples):
        cdf = Cdf(samples)
        median = cdf.percentile(0.5)
        assert cdf.fraction_at_or_below(median) >= 0.5
