"""Real-socket service mode: frontends, engine, loadgen, soak.

Everything here exercises the live asyncio frontends over actual OS
sockets on the loopback, with a pure-python wire client standing in for
``dig`` (the CI workflow runs the real ``dig`` compatibility check).
The event loops are per-test via ``asyncio.run`` — the container has no
pytest-asyncio and must not need it.
"""

import asyncio
import random
import socket

import pytest

from repro import obs
from repro.dns.edns import EDE_STALE_ANSWER
from repro.dns.flags import Flag
from repro.dns.message import Message, make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.obs.timeseries import family_sum
from repro.service.engine import ServiceEngine, wire_rcode_reply
from repro.service.frontend import Binding, DnsService
from repro.service.loadgen import LoadGenerator, benign_pool
from repro.service.soak import SoakConfig, _fuzz_corpus, run_soak
from repro.service.world import build_service_world

DOMAINS, TLDS = 6, 4
PROBE_VALID = "www.valid.rfc9276-in-the-wild.com"


@pytest.fixture(scope="module")
def world():
    return build_service_world(domains=DOMAINS, tlds=TLDS, seed=3)


async def _start(world, **kwargs):
    engine_kwargs = kwargs.pop("engine_kwargs", {})
    service = DnsService(
        [Binding("resolver", world.resolver, port=0, **kwargs.pop("binding", {}))],
        engine=ServiceEngine(**engine_kwargs),
        **kwargs,
    )
    await service.start()
    return service, service.bindings[0].bound_port


async def _udp_query(port, wire, timeout=5.0, host="127.0.0.1"):
    """One datagram out, first datagram back (no id demux needed here)."""
    loop = asyncio.get_running_loop()
    reply = loop.create_future()

    class _Probe(asyncio.DatagramProtocol):
        def connection_made(self, transport):
            transport.sendto(wire)

        def datagram_received(self, data, addr):
            if not reply.done():
                reply.set_result(data)

    transport, __ = await loop.create_datagram_endpoint(
        _Probe, remote_addr=(host, port)
    )
    try:
        return await asyncio.wait_for(reply, timeout)
    finally:
        transport.close()


async def _tcp_query(port, wire, timeout=5.0, host="127.0.0.1"):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(len(wire).to_bytes(2, "big") + wire)
        await writer.drain()
        header = await asyncio.wait_for(reader.readexactly(2), timeout)
        return await asyncio.wait_for(
            reader.readexactly(int.from_bytes(header, "big")), timeout
        )
    finally:
        writer.close()


class TestWireRcodeReply:
    def test_header_only_refused(self):
        query = make_query(PROBE_VALID, RdataType.A, msg_id=0x1234)
        out = wire_rcode_reply(query.to_wire(), Rcode.REFUSED)
        assert len(out) == 12
        response = Message.from_wire(out)
        assert response.id == 0x1234
        assert response.is_response
        assert response.rcode == Rcode.REFUSED
        assert not response.question

    def test_never_answers_responses_or_runts(self):
        query = make_query(PROBE_VALID, RdataType.A)
        response_wire = bytearray(query.to_wire())
        response_wire[2] |= 0x80  # QR set: already a response
        assert wire_rcode_reply(bytes(response_wire), Rcode.REFUSED) is None
        assert wire_rcode_reply(b"\x12\x34\x01", Rcode.REFUSED) is None


class TestShedDatagram:
    def test_cold_name_refused_warm_name_stale(self, world):
        fresh = make_query(PROBE_VALID, RdataType.A, want_dnssec=True)
        answered = world.resolver.handle_datagram(fresh.to_wire(), "10.9.9.9")
        assert Message.from_wire(answered).rcode == Rcode.NOERROR

        shed = world.resolver.shed_datagram(fresh.to_wire())
        stale = Message.from_wire(shed)
        assert stale.rcode == Rcode.NOERROR
        assert any(
            ede.info_code == EDE_STALE_ANSWER for ede in stale.extended_errors()
        )

        cold = make_query(f"never-queried.{PROBE_VALID}", RdataType.A)
        refused = Message.from_wire(world.resolver.shed_datagram(cold.to_wire()))
        assert refused.rcode == Rcode.REFUSED

    def test_garbage_and_responses_dropped(self, world):
        assert world.resolver.shed_datagram(b"\x00\x01junk") is None
        response_wire = bytearray(make_query(PROBE_VALID, RdataType.A).to_wire())
        response_wire[2] |= 0x80
        assert world.resolver.shed_datagram(bytes(response_wire)) is None


class TestUdpFrontend:
    def test_validated_answer_over_real_socket(self, world):
        async def scenario():
            service, port = await _start(world)
            try:
                query = make_query(PROBE_VALID, RdataType.A, want_dnssec=True)
                raw = await _udp_query(port, query.to_wire())
            finally:
                await service.drain_and_stop()
            return query, Message.from_wire(raw)

        query, response = asyncio.run(scenario())
        assert response.id == query.id
        assert response.rcode == Rcode.NOERROR
        assert response.answer

    def test_nsec3_nxdomain_end_to_end(self, world):
        async def scenario():
            service, port = await _start(world)
            try:
                query = make_query(
                    "does-not-exist.rfc9276-in-the-wild.com",
                    RdataType.A,
                    want_dnssec=True,
                )
                raw = await _udp_query(port, query.to_wire())
            finally:
                await service.drain_and_stop()
            return Message.from_wire(raw)

        response = asyncio.run(scenario())
        assert response.rcode == Rcode.NXDOMAIN
        authority_types = {int(rrset.rrtype) for rrset in response.authority}
        assert int(RdataType.NSEC3) in authority_types
        assert int(RdataType.SOA) in authority_types

    def test_truncation_then_tcp_fallback(self, world):
        async def scenario():
            service, port = await _start(world)
            try:
                # The NSEC3 NXDOMAIN proof (~830 bytes signed) cannot fit
                # a 512-byte EDNS payload: TC over UDP, full over TCP.
                query = make_query(
                    "truncate-me.rfc9276-in-the-wild.com",
                    RdataType.A,
                    want_dnssec=True,
                    payload_size=512,
                )
                udp_raw = await _udp_query(port, query.to_wire())
                tcp_raw = await _tcp_query(port, query.to_wire())
            finally:
                await service.drain_and_stop()
            return udp_raw, tcp_raw

        udp_raw, tcp_raw = asyncio.run(scenario())
        udp_response = Message.from_wire(udp_raw)
        assert len(udp_raw) <= 512
        assert udp_response.has_flag(Flag.TC)
        tcp_response = Message.from_wire(tcp_raw)
        assert not tcp_response.has_flag(Flag.TC)
        assert tcp_response.rcode == Rcode.NXDOMAIN
        assert len(tcp_raw) > len(udp_raw)
        authority_types = {int(rrset.rrtype) for rrset in tcp_response.authority}
        assert int(RdataType.NSEC3) in authority_types

    def test_malformed_datagrams_survive(self, world):
        async def scenario():
            service, port = await _start(world)
            try:
                for chunk in _fuzz_corpus(random.Random(5), 80):
                    with pytest.raises(asyncio.TimeoutError):
                        await _udp_query(port, chunk, timeout=0.02)
                query = make_query(PROBE_VALID, RdataType.A)
                raw = await _udp_query(port, query.to_wire())
            finally:
                snapshot = await service.drain_and_stop()
            return Message.from_wire(raw), snapshot

        response, snapshot = asyncio.run(scenario())
        assert response.rcode == Rcode.NOERROR
        assert snapshot["errors"] == 0


class TestAdmissionControl:
    def test_overload_sheds_refused_and_counts_guard_metric(self, world):
        obs.enable()
        try:
            before = family_sum(obs.registry, "repro_guard_shed_total")

            async def scenario():
                # Capacity 0: every arrival sheds on the event loop —
                # the worker thread never sees them.
                service, port = await _start(
                    world, engine_kwargs={"capacity": 0}
                )
                try:
                    query = make_query(
                        f"shedme-{random.randrange(1 << 30)}.{PROBE_VALID}",
                        RdataType.A,
                    )
                    raw = await _udp_query(port, query.to_wire())
                finally:
                    snapshot = await service.drain_and_stop()
                return Message.from_wire(raw), snapshot

            response, snapshot = asyncio.run(scenario())
            assert response.rcode == Rcode.REFUSED
            assert snapshot["gate_shed"] >= 1
            assert snapshot["shed_refused"] >= 1
            assert family_sum(obs.registry, "repro_guard_shed_total") > before
        finally:
            obs.disable()
            obs.reset()

    def test_socket_gate_sheds_before_engine(self, world):
        async def scenario():
            service, port = await _start(
                world, binding={"max_pending": 0}
            )
            try:
                query = make_query(PROBE_VALID, RdataType.A)
                raw = await _udp_query(port, query.to_wire())
            finally:
                snapshot = await service.drain_and_stop()
            return Message.from_wire(raw), snapshot

        response, snapshot = asyncio.run(scenario())
        assert response.rcode in (Rcode.REFUSED, Rcode.NOERROR)  # stale ok
        binding = snapshot["bindings"]["resolver"]
        assert binding["socket_shed"] >= 1
        assert snapshot["gate_shed"] == 0


class TestGracefulDrain:
    def test_drain_answers_every_queued_query(self, world):
        count = 15

        async def scenario():
            service, port = await _start(world)
            loop = asyncio.get_running_loop()
            replies = []
            done = loop.create_future()

            class _Collector(asyncio.DatagramProtocol):
                def connection_made(self, transport):
                    self.transport = transport

                def datagram_received(self, data, addr):
                    replies.append(data)
                    if len(replies) >= count and not done.done():
                        done.set_result(None)

            transport, protocol = await loop.create_datagram_endpoint(
                _Collector, remote_addr=("127.0.0.1", port)
            )
            try:
                for index in range(count):
                    # Unique labels force full resolutions, so the worker
                    # still owes answers when the drain begins.
                    query = make_query(
                        f"drain{index}.{PROBE_VALID}", RdataType.A, msg_id=index
                    )
                    protocol.transport.sendto(query.to_wire())
                # Wait for admission (not completion): the drain promise
                # covers queries the engine has accepted.
                while service.engine.stats.received < count:
                    await asyncio.sleep(0.005)
                snapshot = await service.drain_and_stop()
                await asyncio.wait_for(done, timeout=5.0)
            finally:
                transport.close()
            return snapshot, replies

        snapshot, replies = asyncio.run(scenario())
        assert snapshot["drain_flushed"] is True
        assert len(replies) == count
        assert {Message.from_wire(raw).id for raw in replies} == set(range(count))
        assert snapshot["answered"] >= count

    def test_queries_after_drain_are_shed_not_lost(self, world):
        async def scenario():
            service, port = await _start(world)
            await service.drain_and_stop()
            # Engine still up but not accepting: submit sheds instantly.
            outcome = []
            query = make_query(f"late.{PROBE_VALID}", RdataType.A)
            service.engine.submit(
                "resolver",
                world.resolver,
                query.to_wire(),
                "127.0.0.1",
                outcome.append,
            )
            return outcome

        outcome = asyncio.run(scenario())
        assert len(outcome) == 1
        assert Message.from_wire(outcome[0]).rcode == Rcode.REFUSED


class TestTcpHardening:
    def test_slow_loris_is_reaped(self, world):
        async def scenario():
            service, port = await _start(
                world,
                tcp_idle_timeout_s=0.3,
                tcp_handshake_timeout_s=0.3,
                reaper_interval_s=0.1,
            )
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"\x00")  # half a length header, then stall
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(1), timeout=3.0)
                writer.close()
            finally:
                snapshot = await service.drain_and_stop()
            return eof, snapshot

        eof, snapshot = asyncio.run(scenario())
        assert eof == b""  # server closed on us
        assert snapshot["tcp_reaped"] + snapshot["tcp_open"] >= 1
        assert snapshot["tcp_open"] == 0  # nothing leaks past drain

    def test_connection_cap_rejects_excess(self, world):
        async def scenario():
            service, port = await _start(world, tcp_max_connections=0)
            try:
                reader, __writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                eof = await asyncio.wait_for(reader.read(1), timeout=3.0)
            finally:
                snapshot = await service.drain_and_stop()
            return eof, snapshot

        eof, snapshot = asyncio.run(scenario())
        assert eof == b""
        assert snapshot["tcp_rejected"] >= 1


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"), reason="no SO_REUSEPORT here"
)
class TestCrashOnlyRestart:
    def test_replacement_binds_while_predecessor_lives(self, world):
        async def scenario():
            first, port = await _start(world)
            second = DnsService(
                [Binding("resolver", world.resolver, port=port)],
                engine=ServiceEngine(),
            )
            await second.start()  # same port, first still bound
            await first.drain_and_stop()
            query = make_query(PROBE_VALID, RdataType.A)
            raw = await _udp_query(port, query.to_wire())
            await second.drain_and_stop()
            return Message.from_wire(raw)

        response = asyncio.run(scenario())
        assert response.rcode == Rcode.NOERROR


class TestLoadGenerator:
    def test_mixed_traffic_reports_by_class(self, world):
        async def scenario():
            service, port = await _start(world)
            try:
                report = await LoadGenerator(
                    "127.0.0.1",
                    port,
                    qps=60,
                    duration_s=1.0,
                    attack_ratio=0.3,
                    benign_names=benign_pool(DOMAINS, TLDS),
                    timeout_s=5.0,
                    seed=11,
                ).run()
            finally:
                await service.drain_and_stop()
            return report

        report = asyncio.run(scenario())
        benign = report.stats("benign")
        attack = report.stats("attack")
        assert benign.answered == benign.sent > 0
        assert set(benign.rcodes) <= {"NOERROR", "NXDOMAIN"}
        assert attack.answered == attack.sent > 0
        # Guard budgets turn the amplification attacks into SERVFAILs.
        assert set(attack.rcodes) == {"SERVFAIL"}
        assert benign.percentile(99) is not None


@pytest.mark.slow
class TestMiniSoak:
    def test_short_soak_passes(self):
        report = run_soak(
            SoakConfig(
                domains=DOMAINS,
                tlds=TLDS,
                phase_s=0.6,
                benign_qps=40,
                attack_qps=80,
                burst_queries=250,
                fuzz_datagrams=60,
                churn_connections=8,
                loris_connections=2,
                tcp_idle_timeout_s=0.4,
                drain_queries=10,
                query_timeout_s=5.0,
            )
        )
        assert report.violations == []
        assert report.passed
        assert report.shed_after_attack > report.shed_before_attack
        assert report.snapshot["drain_flushed"] is True
