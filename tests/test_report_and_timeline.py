"""Tests for the study report renderer, the longitudinal model, and the CLI."""

import pytest

from repro.analysis.longitudinal import (
    TIMELINE,
    compliance_timeline,
    paper_anchor,
)
from repro.core.report import render_study_report
from tests.test_analysis import fake_result


class TestLongitudinal:
    def test_timeline_events_sorted(self):
        years = [event.year for event in TIMELINE]
        assert years == sorted(years)

    def test_anchor_matches_paper(self):
        states = compliance_timeline()
        anchor = paper_anchor(states)
        non_compliant = 1.0 - anchor.zero_iteration_share
        assert non_compliant == pytest.approx(0.878, abs=0.04)

    def test_compliance_increases_monotonically_after_bcp(self):
        states = compliance_timeline()
        post = [s for s in states if s.year >= 2022.0]
        shares = [s.zero_iteration_share for s in post]
        assert shares == sorted(shares)

    def test_vendor_limit_drops_after_cve(self):
        states = compliance_timeline()
        at_2023 = next(s for s in states if s.year == 2023.0)
        at_2025 = next(s for s in states if s.year == 2025.0)
        assert at_2023.vendor_limit == 150
        assert at_2025.vendor_limit == 50

    def test_resolver_adoption_approaches_paper_share(self):
        states = compliance_timeline()
        anchor = paper_anchor(states)
        assert anchor.resolver_limit_adoption == pytest.approx(0.70, abs=0.12)

    def test_custom_range(self):
        states = compliance_timeline(start=2023.0, end=2024.0, step=0.5)
        assert len(states) == 3
        assert states[0].year == 2023.0


class TestReport:
    @pytest.fixture()
    def results(self):
        return [
            fake_result("a.com", 0, 0, ns=("ns1.good.net.",)),
            fake_result("b.com", 10, 8, ns=("ns1.big.net.",)),
            fake_result("c.com", 10, 8, ns=("ns1.big.net.",)),
            fake_result("d.com", None),
        ]

    def test_report_contains_all_sections(self, results):
        report = render_study_report(results, total_domains=40)
        assert "Guidance under test" in report
        assert "Domain names (paper §5.1)" in report
        assert "Figure 1" in report
        assert "Table 2" in report
        assert "Zeros are heroes" in report

    def test_report_with_survey(self, results):
        from repro.core.resolver_compliance import classify_resolver
        from repro.scanner.resolver_scan import SurveyEntry
        from tests.test_core_compliance import matrix_for

        matrix = matrix_for(insecure_above=150)
        entries = [SurveyEntry(None, matrix, classify_resolver(matrix))]
        report = render_study_report(results, 40, survey_entries=entries)
        assert "Validating resolvers (paper §5.2)" in report
        assert "Item 6 thresholds" in report

    def test_report_with_tlds(self, results):
        tld_results = [fake_result("sometld", 100, 8)]
        report = render_study_report(results, 40, tld_results=tld_results)
        assert "Top-level domains" in report
        assert "100" in report


class TestCli:
    def test_guidance_command(self, capsys):
        from repro.__main__ import main

        assert main(["guidance"]) == 0
        out = capsys.readouterr().out
        assert "Item  2" in out and "MUST" in out

    def test_timeline_command(self, capsys):
        from repro.__main__ import main

        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "CVE-2023-50868" in out
        assert "87.8" in out

    def test_version(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([])
