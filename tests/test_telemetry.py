"""The streaming telemetry layer: journal, scraper, export, live console.

Four contracts under test:

1. **journal determinism** — the JSONL event stream is byte-identical
   across reruns at one concurrency width, and identical with
   timestamps stripped across widths (sessions execute in submission
   order; only frame-local time differs), including under chaos faults;
2. **scraper neutrality** — a run with the periodic scraper attached
   produces the same campaign results and final metric values as one
   without, at any kernel width;
3. **export validity** — the Chrome-trace/Perfetto document is
   schema-shaped (ph/ts/dur/pid/tid), with one lane per root span and
   the journal on the kernel lane;
4. **merge soundness** — the registries of two half-campaigns merged
   equal the registry of the single full run (the sharding primitive).
"""

import io
import json

import pytest

from repro import obs
from repro.net.faults import parse_fault_spec
from repro.net.sim import SimKernel
from repro.obs.events import EventJournal
from repro.obs.export import chrome_trace
from repro.obs.live import LiveTelemetry, ProgressConsole
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import RingSeries, TimeSeriesScraper, family_sum
from repro.obs.trace import Tracer
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.engine import ScanEngine
from repro.testbed.internet import build_internet
from repro.testbed.population import generate_population, generate_tlds

from tests.conftest import SMALL_CONFIG


@pytest.fixture(autouse=True)
def clean_obs():
    """Telemetry off, journal detached, and clock released around each test."""
    obs.disable()
    obs.attach_journal(None)
    obs.reset()
    yield
    obs.disable()
    obs.attach_journal(None)
    obs.reset()
    obs.unbind_clock()


def _small_internet(seed=11):
    tlds = generate_tlds(SMALL_CONFIG)
    domains = generate_population(SMALL_CONFIG, tlds=tlds)
    return build_internet(domains, tlds, seed=seed), domains


# -- the event journal ------------------------------------------------------


class TestEventJournal:
    def test_ring_is_bounded_but_seq_is_not(self):
        journal = EventJournal(ring_size=8)
        for index in range(20):
            journal.emit("query.issued", float(index), n=index)
        assert len(journal) == 8
        assert journal.seq == 20
        assert [e.fields["n"] for e in journal.tail()] == list(range(12, 20))

    def test_sampling_writes_one_in_n_to_the_sink(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink, seed=3, sample={"query.issued": 4})
        for index in range(16):
            journal.emit("query.issued", float(index), n=index)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 4
        assert journal.written == 4
        assert journal.sampled_out == 12
        # The ring still holds everything the sink sampled away.
        assert len(journal) == 16

    def test_sampling_is_a_pure_function_of_seed(self):
        def kept(seed):
            sink = io.StringIO()
            journal = EventJournal(sink=sink, seed=seed, sample={"q": 4})
            for index in range(16):
                journal.emit("q", float(index), n=index)
            return [json.loads(line)["n"] for line in sink.getvalue().splitlines()]

        assert kept(7) == kept(7)
        # Different seeds rotate the phase; the keep *rate* is unchanged.
        assert len(kept(1)) == len(kept(2)) == 4

    def test_unsampled_kinds_always_reach_the_sink(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink, seed=0)
        for index in range(5):
            journal.emit("checkpoint.flush", float(index), records=index)
        assert journal.written == 5

    def test_guard_trip_dumps_the_ring(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink, ring_size=16, dump_min_gap=4)
        journal.emit("query.completed", 1.0, qname="a.test")
        journal.emit("guard.trip", 2.0, resolver="r1", ceiling="hash_cost")
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        dump = records[-1]
        assert dump["kind"] == "flight.dump"
        assert dump["reason"] == "guard.trip"
        # The dump carries the unsampled recent history, trip included.
        assert [e["kind"] for e in dump["events"]] == [
            "query.completed",
            "guard.trip",
        ]
        assert journal.dumps == 1

    def test_dump_storm_is_rate_limited(self):
        journal = EventJournal(ring_size=8, dump_min_gap=10)
        journal.emit("guard.trip", 1.0)
        for t in range(5):
            journal.emit("guard.trip", 2.0 + t)
        assert journal.dumps == 1
        assert journal.dumps_suppressed == 5

    def test_reserved_record_keys_win(self):
        journal = EventJournal()
        event = journal.emit("guard.shed", 7.0, seq="spoofed", action="refused")
        record = event.to_record()
        assert record["seq"] == 1
        assert record["action"] == "refused"

    def test_module_emit_guards_on_attachment(self):
        assert obs.emit("query.issued", 1.0) is None
        journal = obs.attach_journal(EventJournal())
        assert obs.events
        event = obs.emit("query.issued", 1.0, qname="x")
        assert event is journal.tail()[-1]
        obs.attach_journal(None)
        assert not obs.events


# -- periodic kernel tasks --------------------------------------------------


class TestPeriodicTasks:
    def test_fires_at_due_times_across_heap_jumps(self):
        kernel = SimKernel()
        ticks = []
        kernel.every(300.0, ticks.append)
        kernel.schedule_at(1000.0, lambda: None)
        kernel.run_until_idle()
        # The event commits the clock to 1000; every crossed due time
        # fires first, at its own due time, in order.
        assert ticks == [300.0, 600.0, 900.0]
        assert kernel.periodic_runs == 3

    def test_fires_across_direct_clock_writes(self):
        kernel = SimKernel()
        ticks = []
        kernel.every(100.0, ticks.append)
        kernel.clock.write(250.0)  # e.g. QPS pacing or a requeue delay
        assert ticks == [100.0, 200.0]

    def test_frame_local_time_does_not_fire(self):
        kernel = SimKernel()
        ticks = []
        kernel.every(100.0, ticks.append)
        with kernel.frame():
            kernel.clock.advance(1000.0)
        assert ticks == []
        assert kernel.now == 0.0

    def test_cancel_stops_firing_and_clears_the_hook(self):
        kernel = SimKernel()
        ticks = []
        task = kernel.every(100.0, ticks.append)
        kernel.clock.write(100.0)
        kernel.cancel(task)
        kernel.clock.write(500.0)
        assert ticks == [100.0]
        assert kernel.clock.on_commit is None

    def test_run_until_idle_terminates_with_tasks_registered(self):
        kernel = SimKernel()
        kernel.every(10.0, lambda t: None)
        kernel.schedule(35.0, lambda: None)
        assert kernel.run_until_idle() == 1
        assert kernel.periodic_runs == 3

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SimKernel().every(0, lambda t: None)


# -- the time-series scraper ------------------------------------------------


class TestRingSeries:
    def test_overwrites_oldest_past_capacity(self):
        series = RingSeries("s", capacity=4)
        for index in range(7):
            series.append(float(index), float(index * 10))
        assert len(series) == 4
        assert series.dropped == 3
        assert series.items() == [(3.0, 30.0), (4.0, 40.0), (5.0, 50.0), (6.0, 60.0)]
        assert series.last() == (6.0, 60.0)


class TestScraper:
    def _kernel_with_counter(self):
        kernel = SimKernel()
        registry = MetricsRegistry()
        counter = registry.counter("repro_scan_queries_total", "t")
        for at in (100.0, 700.0, 1300.0, 1900.0):
            kernel.schedule_at(at, counter.inc)
        return kernel, registry

    def test_samples_on_an_even_time_base(self):
        kernel, registry = self._kernel_with_counter()
        scraper = TimeSeriesScraper(
            kernel,
            registry,
            interval_ms=500.0,
            selectors=[("q", lambda r: family_sum(r, "repro_scan_queries_total"))],
        ).start()
        kernel.run_until_idle()
        scraper.scrape(kernel.now)
        assert scraper.series["q"].items() == [
            (500.0, 1.0),
            (1000.0, 2.0),
            (1500.0, 3.0),
            (1900.0, 4.0),
        ]

    def test_export_shapes(self):
        kernel, registry = self._kernel_with_counter()
        scraper = TimeSeriesScraper(
            kernel,
            registry,
            interval_ms=1000.0,
            selectors=[("q", lambda r: family_sum(r, "repro_scan_queries_total"))],
        ).start()
        kernel.run_until_idle()
        doc = scraper.to_json()
        assert doc["interval_ms"] == 1000.0
        assert doc["series"]["q"]["t_ms"] == [1000.0]
        csv = scraper.to_csv()
        assert csv.splitlines()[0] == "t_ms,q"
        assert csv.splitlines()[1] == "1000,2"

    def test_rates_derive_per_second_deltas(self):
        kernel, registry = self._kernel_with_counter()
        scraper = TimeSeriesScraper(
            kernel,
            registry,
            interval_ms=1000.0,
            selectors=[("q", lambda r: family_sum(r, "repro_scan_queries_total"))],
        ).start()
        kernel.run_until_idle()
        scraper.scrape(2000.0)
        assert scraper.rates("q") == [(2000.0, 2.0)]  # 2 more queries in 1 s


# -- determinism across widths and reruns -----------------------------------


def _scan_with_telemetry(concurrency, chaos=False, seed=11):
    """One instrumented scan campaign; returns (journal text, summary,
    final scraped values)."""
    inet, domains = _small_internet(seed)
    if chaos:
        inet.network.set_faults(parse_fault_spec("chaos", seed=seed))
    obs.enable()
    inet.network.kernel.bind_obs()
    sink = io.StringIO()
    obs.attach_journal(EventJournal(sink=sink, seed=seed))
    scraper = TimeSeriesScraper(
        inet.network.kernel, obs.registry, interval_ms=500.0
    ).start()
    upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="tel")
    engine = ScanEngine(
        inet.network,
        inet.allocator.next_v4(),
        upstream.ip,
        target_retries=2 if chaos else 0,
        concurrency=concurrency,
        shards=min(concurrency, 4),
    )
    answers = engine.run([(d.name, 48) for d in domains[:30]], checking_disabled=True)
    scraper.scrape(inet.network.kernel.now)
    summary = [(a.rcode, a.ad, a.answered) for a in answers]
    finals = {
        name: series.last()[1] for name, series in scraper.series.items()
    }
    obs.attach_journal(None)
    obs.disable()
    obs.reset()
    obs.unbind_clock()
    return sink.getvalue(), summary, finals


def _strip_timestamps(journal_text):
    stripped = []
    for line in journal_text.splitlines():
        record = json.loads(line)
        record.pop("t", None)
        for nested in record.get("events", ()):
            nested.pop("t", None)
        stripped.append(json.dumps(record, sort_keys=True))
    return stripped


class TestStreamingDeterminism:
    def test_journal_identical_across_widths_under_chaos(self):
        """Concurrency 1 vs 32 under chaos: same events, same order, same
        sink sampling — only frame-local timestamps differ."""
        j1, s1, f1 = _scan_with_telemetry(1, chaos=True)
        j32, s32, f32 = _scan_with_telemetry(32, chaos=True)
        assert s1 == s32
        assert _strip_timestamps(j1) == _strip_timestamps(j32)
        # Final cumulative scraped values agree across kernel widths.
        assert f1["scan_queries_total"] == f32["scan_queries_total"]
        assert f1["net_datagrams_total"] == f32["net_datagrams_total"]
        assert f1["faults_injected_total"] == f32["faults_injected_total"]

    def test_journal_byte_identical_on_rerun(self):
        j_a, __, __ = _scan_with_telemetry(8, chaos=True)
        j_b, __, __ = _scan_with_telemetry(8, chaos=True)
        assert j_a == j_b

    def test_telemetry_does_not_change_results(self):
        """The same campaign with no telemetry at all yields the same
        answers: emission sites and the scraper are observers only."""
        __, with_telemetry, __ = _scan_with_telemetry(8)
        inet, domains = _small_internet(11)
        upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="tel")
        engine = ScanEngine(
            inet.network,
            inet.allocator.next_v4(),
            upstream.ip,
            concurrency=8,
            shards=4,
        )
        answers = engine.run(
            [(d.name, 48) for d in domains[:30]], checking_disabled=True
        )
        assert [(a.rcode, a.ad, a.answered) for a in answers] == with_telemetry


# -- Perfetto export --------------------------------------------------------


class TestChromeTraceExport:
    def _span_tree(self):
        tracer = Tracer(clock=iter([0.0, 1.0, 5.0, 9.0, 12.0, 14.0]).__next__)
        with tracer.span("probe.query", qname="x.test"):
            with tracer.span("net.hop", dst="10.0.0.9"):
                pass
            with tracer.span("resolver.validate"):
                pass
        return tracer

    def test_document_schema_validates(self):
        tracer = self._span_tree()
        journal = EventJournal()
        journal.emit("guard.trip", 4.0, resolver="r1")
        doc = chrome_trace(tracer.roots, journal.tail())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("X", "i", "M")
            assert isinstance(entry["pid"], int)
            if entry["ph"] == "X":
                assert isinstance(entry["ts"], int)
                assert isinstance(entry["dur"], int) and entry["dur"] >= 0
            if entry["ph"] == "i":
                assert entry["s"] == "g"
        json.dumps(doc)  # must be serialisable as-is

    def test_lane_assignment(self):
        tracer = self._span_tree()
        journal = EventJournal()
        journal.emit("fault.inject", 2.0, fault="jitter")
        doc = chrome_trace(tracer.roots, journal.tail())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(spans) == 3  # root + two children, one lane
        assert {s["tid"] for s in spans} == {1}
        assert [i["tid"] for i in instants] == [0]  # kernel lane
        names = {
            m["args"]["name"]
            for m in doc["traceEvents"]
            if m["ph"] == "M" and m["name"] == "thread_name"
        }
        assert "kernel events" in names
        assert any(n.startswith("probe.query") for n in names)

    def test_span_args_carry_cost_and_attributes(self):
        tracer = self._span_tree()
        doc = chrome_trace(tracer.roots, ())
        root = next(e for e in doc["traceEvents"] if e.get("name") == "probe.query")
        assert root["args"]["qname"] == "x.test"
        assert root["ts"] == 0 and root["dur"] == 14_000  # µs


# -- the live console and the stall detector --------------------------------


class TestProgressConsole:
    def _console(self, stall_after_ms=3000.0):
        kernel = SimKernel()
        registry = MetricsRegistry()
        sink = io.StringIO()
        journal = EventJournal(sink=sink)
        stream = io.StringIO()
        console = ProgressConsole(
            kernel,
            registry,
            stream=stream,
            heartbeat_ms=1000.0,
            stall_after_ms=stall_after_ms,
            journal=journal,
            label="wedged",
        ).start()
        return kernel, registry, console, stream, sink

    def test_heartbeats_ride_the_periodic_rail(self):
        kernel, registry, console, stream, __ = self._console()
        registry.counter("repro_campaign_completed_total", "t").inc(3)
        console.expect(10)
        kernel.clock.write(2500.0)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "wedged: 0/10 done" in lines[0]

    def test_stall_fires_once_per_episode_and_dumps_the_ring(self):
        kernel, registry, console, stream, sink = self._console()
        # No progress counters ever move: the campaign is wedged.
        kernel.clock.write(6000.0)
        assert console.stalls == 1
        assert "STALL" in stream.getvalue()
        dump = json.loads(sink.getvalue().splitlines()[-1])
        assert dump["kind"] == "flight.dump"
        assert dump["reason"] == "campaign.stall"
        # Progress resumes, then stops again: the detector re-arms.
        registry.counter("repro_scan_queries_total", "t").inc()
        kernel.clock.write(7000.0)
        kernel.clock.write(13_000.0)
        assert console.stalls == 2

    def test_progress_resets_the_stall_clock(self):
        kernel, registry, console, __, __sink = self._console()
        counter = registry.counter("repro_scan_queries_total", "t")
        for at in (1000.0, 2000.0, 3000.0, 4000.0, 5000.0):
            kernel.schedule_at(at, counter.inc)
        kernel.run_until_idle()
        assert console.stalls == 0


class TestLiveTelemetry:
    def test_wires_and_finishes(self, tmp_path):
        kernel = SimKernel()
        obs.enable()
        events_path = tmp_path / "events.jsonl"
        series_path = tmp_path / "series.json"
        stream = io.StringIO()
        live = LiveTelemetry(
            kernel,
            events_out=str(events_path),
            series_out=str(series_path),
            progress=True,
            scrape_interval_ms=250.0,
            seed=5,
            label="smoke",
            stream=stream,
        )
        assert obs.journal is live.journal
        assert obs.console is live.console
        obs.emit("checkpoint.flush", 1.0, records=2)
        kernel.clock.write(1000.0)
        live.finish()
        assert obs.journal is None and obs.console is None
        assert json.loads(events_path.read_text().splitlines()[0])["kind"] == (
            "checkpoint.flush"
        )
        series = json.loads(series_path.read_text())
        assert series["samples"] >= 4
        assert "finished" in stream.getvalue()


# -- merge equals the single run (the sharding primitive) -------------------


class TestMergeEqualsSingleRun:
    def test_half_campaign_registries_merge_to_the_full_run(self):
        """Split one campaign's registry at the halfway point; merging the
        halves must reproduce the unsplit registry exactly."""

        def world():
            inet, domains = _small_internet(17)
            upstream = inet.make_resolver(
                VENDOR_POLICIES["cloudflare"], name="merge"
            )
            engine = ScanEngine(
                inet.network,
                inet.allocator.next_v4(),
                upstream.ip,
                concurrency=4,
                shards=2,
            )
            jobs = [(d.name, 48) for d in domains[:24]]
            return engine, jobs

        engine, jobs = world()
        obs.enable()
        engine.run(jobs[:12], checking_disabled=True)
        first_half = obs.registry.to_json()
        obs.reset()
        engine.run(jobs[12:], checking_disabled=True)
        second_half = obs.registry.to_json()
        obs.disable()
        obs.reset()

        engine, jobs = world()
        obs.enable()
        engine.run(jobs, checking_disabled=True)
        full = obs.registry.to_json()

        merged = MetricsRegistry.from_json(first_half).merge(
            MetricsRegistry.from_json(second_half)
        )
        # Canonicalise the full registry's ordering the same way merge does.
        reference = MetricsRegistry().merge(MetricsRegistry.from_json(full))
        assert merged.render_prometheus() == reference.render_prometheus()
