"""Tests for DNSSEC key management: key tags, DS digests, verification."""

import random

import pytest

from repro.crypto.keys import (
    ALG_ECDSAP256SHA256,
    ALG_RSASHA1,
    ALG_RSASHA256,
    KeyPair,
    UnsupportedAlgorithm,
    ds_matches_dnskey,
    generate_keypair,
    make_ds,
    verify_signature,
)
from repro.dns.rdata.dnssec import DS_DIGEST_SHA1, DS_DIGEST_SHA256, FLAG_SEP


@pytest.fixture(scope="module")
def ecdsa_pair():
    return generate_keypair(ALG_ECDSAP256SHA256, ksk=True, rng=random.Random(1))


@pytest.fixture(scope="module")
def rsa_pair():
    return generate_keypair(ALG_RSASHA256, rsa_bits=512, rng=random.Random(2))


class TestKeyPair:
    def test_ksk_flags(self, ecdsa_pair):
        assert ecdsa_pair.is_ksk
        assert ecdsa_pair.dnskey.flags & FLAG_SEP
        assert ecdsa_pair.dnskey.is_zone_key()

    def test_zsk_flags(self):
        zsk = generate_keypair(ALG_ECDSAP256SHA256, ksk=False, rng=random.Random(3))
        assert not zsk.is_ksk

    def test_key_tag_matches_dnskey(self, ecdsa_pair):
        assert ecdsa_pair.key_tag == ecdsa_pair.dnskey.key_tag()

    def test_unsupported_algorithm(self):
        with pytest.raises(UnsupportedAlgorithm):
            generate_keypair(algorithm=250)


class TestSignVerify:
    @pytest.mark.parametrize(
        "algorithm,kwargs",
        [
            (ALG_ECDSAP256SHA256, {}),
            (ALG_RSASHA256, {"rsa_bits": 512}),
            (ALG_RSASHA1, {"rsa_bits": 512}),
        ],
    )
    def test_round_trip(self, algorithm, kwargs):
        pair = generate_keypair(algorithm, rng=random.Random(42), **kwargs)
        signature = pair.sign(b"message")
        assert verify_signature(pair.dnskey, b"message", signature)
        assert not verify_signature(pair.dnskey, b"messagX", signature)

    def test_cross_key_rejected(self, ecdsa_pair, rsa_pair):
        signature = ecdsa_pair.sign(b"m")
        assert not verify_signature(rsa_pair.dnskey, b"m", signature)

    def test_memo_does_not_change_outcome(self, ecdsa_pair):
        signature = ecdsa_pair.sign(b"memo")
        for __ in range(3):
            assert verify_signature(ecdsa_pair.dnskey, b"memo", signature)
            assert not verify_signature(ecdsa_pair.dnskey, b"nemo", signature)

    def test_malformed_public_key_returns_false(self, ecdsa_pair):
        from repro.dns.rdata.dnssec import DNSKEY

        broken = DNSKEY(257, 3, ALG_ECDSAP256SHA256, b"\x01" * 10)
        assert not verify_signature(broken, b"m", ecdsa_pair.sign(b"m"))


class TestDs:
    def test_make_and_match_sha256(self, ecdsa_pair):
        ds = make_ds("example.com.", ecdsa_pair.dnskey)
        assert ds.digest_type == DS_DIGEST_SHA256
        assert ds.key_tag == ecdsa_pair.key_tag
        assert ds_matches_dnskey("example.com.", ds, ecdsa_pair.dnskey)

    def test_sha1_digest(self, ecdsa_pair):
        ds = make_ds("example.com.", ecdsa_pair.dnskey, DS_DIGEST_SHA1)
        assert len(ds.digest) == 20
        assert ds_matches_dnskey("example.com", ds, ecdsa_pair.dnskey)

    def test_owner_case_insensitive(self, ecdsa_pair):
        ds = make_ds("Example.COM", ecdsa_pair.dnskey)
        assert ds_matches_dnskey("example.com", ds, ecdsa_pair.dnskey)

    def test_owner_mismatch(self, ecdsa_pair):
        ds = make_ds("example.com", ecdsa_pair.dnskey)
        assert not ds_matches_dnskey("other.com", ds, ecdsa_pair.dnskey)

    def test_key_mismatch(self, ecdsa_pair, rsa_pair):
        ds = make_ds("example.com", ecdsa_pair.dnskey)
        assert not ds_matches_dnskey("example.com", ds, rsa_pair.dnskey)

    def test_unknown_digest_type(self, ecdsa_pair):
        with pytest.raises(UnsupportedAlgorithm):
            make_ds("example.com", ecdsa_pair.dnskey, digest_type=99)
