"""Tests for NSEC and NSEC3 chain construction and whole-zone signing."""

import random

import pytest

from repro.dns.name import Name
from repro.dns.types import RdataType
from repro.dnssec.nsec3hash import nsec3_hash
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params, build_nsec3_chain
from repro.zone.nsecchain import build_nsec_chain
from repro.zone.signing import SigningPolicy, sign_zone


def small_zone():
    return (
        ZoneBuilder("example.org")
        .soa("ns1.example.org", "h.example.org")
        .ns("ns1.example.org.")
        .a("ns1", "192.0.2.1")
        .a("www", "192.0.2.2")
        .a("mail", "192.0.2.3")
        .build()
    )


class TestNsec3Chain:
    def test_chain_is_circular_and_sorted(self):
        zone = small_zone()
        params = Nsec3Params(iterations=3, salt=b"\x99")
        chain = build_nsec3_chain(zone, params)
        hashes = [entry.owner_hash for entry in chain.entries]
        assert hashes == sorted(hashes)
        next_hashes = {entry.rdata.next_hash for entry in chain.entries}
        assert next_hashes == set(hashes)  # a permutation: circular chain

    def test_every_authoritative_name_hashed(self):
        zone = small_zone()
        chain = build_nsec3_chain(zone, Nsec3Params())
        sources = {entry.source_name for entry in chain.entries}
        assert Name.from_text("example.org") in sources
        assert Name.from_text("www.example.org") in sources

    def test_empty_nonterminals_included(self):
        zone = small_zone()
        zone.add("x.deep.example.org", RdataType.A, 60,
                 __import__("repro.dns.rdata", fromlist=["A"]).A("192.0.2.9"))
        chain = build_nsec3_chain(zone, Nsec3Params())
        sources = {entry.source_name for entry in chain.entries}
        assert Name.from_text("deep.example.org") in sources

    def test_find_matching_and_covering(self):
        zone = small_zone()
        params = Nsec3Params(iterations=1, salt=b"s")
        chain = build_nsec3_chain(zone, params)
        www_hash = nsec3_hash(
            Name.from_text("www.example.org").canonical_wire(), b"s", 1
        )
        assert chain.find_matching(www_hash) is not None
        ghost_hash = nsec3_hash(
            Name.from_text("ghost.example.org").canonical_wire(), b"s", 1
        )
        assert chain.find_matching(ghost_hash) is None
        covering = chain.find_covering(ghost_hash)
        assert covering is not None
        from repro.dnssec.denial import hash_covers

        assert hash_covers(
            covering.owner_hash, covering.rdata.next_hash, ghost_hash
        )

    def test_apex_bitmap_contains_infrastructure_types(self):
        zone = small_zone()
        chain = build_nsec3_chain(zone, Nsec3Params())
        apex_entry = next(
            e for e in chain.entries if e.source_name == Name.from_text("example.org")
        )
        types = set(apex_entry.rdata.types)
        assert int(RdataType.SOA) in types
        assert int(RdataType.DNSKEY) in types
        assert int(RdataType.NSEC3PARAM) in types

    def test_optout_flag_on_all_records(self):
        zone = small_zone()
        chain = build_nsec3_chain(zone, Nsec3Params(opt_out=True))
        assert all(entry.rdata.opt_out for entry in chain.entries)

    def test_optout_skips_insecure_delegations(self):
        zone = small_zone()
        zone.add("kid.example.org", RdataType.NS, 60,
                 __import__("repro.dns.rdata", fromlist=["NS"]).NS("ns.other.net."))
        with_optout = build_nsec3_chain(zone, Nsec3Params(opt_out=True))
        without = build_nsec3_chain(zone, Nsec3Params(opt_out=False))
        assert len(with_optout) == len(without) - 1


class TestNsecChain:
    def test_canonical_order(self):
        zone = small_zone()
        chain = build_nsec_chain(zone)
        owners = [entry.owner_name for entry in chain.entries]
        assert owners == sorted(owners)

    def test_circular_next(self):
        zone = small_zone()
        chain = build_nsec_chain(zone)
        assert chain.entries[-1].rdata.next_name == chain.entries[0].owner_name

    def test_find_covering(self):
        zone = small_zone()
        chain = build_nsec_chain(zone)
        covering = chain.find_covering(Name.from_text("nsz.example.org"))
        assert covering is not None
        assert covering.owner_name < Name.from_text("nsz.example.org")

    def test_find_covering_before_first(self):
        zone = small_zone()
        chain = build_nsec_chain(zone)
        # example.org sorts first; a name before it wraps to the last entry.
        covering = chain.find_covering(Name.from_text("aaa.example.org"))
        assert covering is not None


class TestSignZone:
    def test_sign_inserts_dnssec_records(self):
        zone = sign_zone(small_zone(), SigningPolicy(nsec3=Nsec3Params()),
                         rng=random.Random(1))
        assert zone.signed
        assert zone.get_rrset("example.org", RdataType.DNSKEY) is not None
        assert zone.get_rrset("example.org", RdataType.NSEC3PARAM) is not None
        assert zone.nsec3_chain is not None

    def test_every_authoritative_rrset_signed(self):
        zone = sign_zone(small_zone(), SigningPolicy(nsec3=Nsec3Params()),
                         rng=random.Random(2))
        for rrset in zone.all_rrsets():
            if int(rrset.rrtype) == int(RdataType.RRSIG):
                continue
            assert zone.get_rrsigs(rrset.name, rrset.rrtype) is not None, rrset

    def test_resign_replaces_material(self):
        zone = sign_zone(small_zone(), SigningPolicy(nsec3=Nsec3Params()),
                         rng=random.Random(3))
        first_chain_len = len(zone.nsec3_chain)
        sign_zone(zone, SigningPolicy(nsec3=Nsec3Params(iterations=7)),
                  rng=random.Random(4))
        assert len(zone.nsec3_chain) == first_chain_len
        param = zone.get_rrset("example.org", RdataType.NSEC3PARAM)
        assert param[0].iterations == 7

    def test_nsec_mode(self):
        zone = sign_zone(small_zone(), SigningPolicy(nsec3=None), rng=random.Random(5))
        assert zone.nsec_chain is not None and zone.nsec3_chain is None
        assert zone.get_rrset("example.org", RdataType.NSEC3PARAM) is None

    def test_expired_policy_produces_expired_sigs(self):
        from repro.dnssec.signer import SIMULATION_NOW

        zone = sign_zone(
            small_zone(),
            SigningPolicy(nsec3=Nsec3Params(), expired=True),
            rng=random.Random(6),
        )
        sigs = zone.get_rrsigs("example.org", RdataType.SOA)
        assert all(not s.is_valid_at(SIMULATION_NOW) for s in sigs)

    def test_expired_nsec3_only(self):
        from repro.dnssec.signer import SIMULATION_NOW

        zone = sign_zone(
            small_zone(),
            SigningPolicy(nsec3=Nsec3Params(iterations=2501), expired_nsec3_only=True),
            rng=random.Random(7),
        )
        soa_sigs = zone.get_rrsigs("example.org", RdataType.SOA)
        assert all(s.is_valid_at(SIMULATION_NOW) for s in soa_sigs)
        entry = zone.nsec3_chain.entries[0]
        nsec3_sigs = zone.get_rrsigs(entry.owner_name, RdataType.NSEC3)
        assert all(not s.is_valid_at(SIMULATION_NOW) for s in nsec3_sigs)

    def test_delegation_ns_not_signed(self):
        zone = small_zone()
        zone.add("kid.example.org", RdataType.NS, 60,
                 __import__("repro.dns.rdata", fromlist=["NS"]).NS("ns.other.net."))
        sign_zone(zone, SigningPolicy(nsec3=Nsec3Params()), rng=random.Random(8))
        assert zone.get_rrsigs("kid.example.org", RdataType.NS) is None

    def test_ds_at_cut_signed(self):
        from repro.dns.rdata.dnssec import DS

        zone = small_zone()
        zone.add("kid.example.org", RdataType.NS, 60,
                 __import__("repro.dns.rdata", fromlist=["NS"]).NS("ns.other.net."))
        zone.add("kid.example.org", RdataType.DS, 60, DS(1, 13, 2, b"\x00" * 32))
        sign_zone(zone, SigningPolicy(nsec3=Nsec3Params()), rng=random.Random(9))
        assert zone.get_rrsigs("kid.example.org", RdataType.DS) is not None
