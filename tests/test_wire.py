"""Tests for the wire reader/writer, including name compression."""

import pytest

from repro.dns.name import Name
from repro.dns.wire import Reader, WireError, Writer


class TestWriter:
    def test_scalars(self):
        writer = Writer()
        writer.write_u8(0xAB)
        writer.write_u16(0x1234)
        writer.write_u32(0xDEADBEEF)
        assert writer.getvalue() == bytes.fromhex("ab1234deadbeef")

    def test_set_u16_patches(self):
        writer = Writer()
        writer.write_u16(0)
        writer.write_u8(7)
        writer.set_u16(0, 0x0102)
        assert writer.getvalue() == b"\x01\x02\x07"

    def test_compression_pointer_emitted(self):
        writer = Writer()
        writer.write_name(Name.from_text("www.example.com"))
        first_len = len(writer)
        writer.write_name(Name.from_text("example.com"))
        # Second write should be a single 2-byte pointer.
        assert len(writer) == first_len + 2
        assert writer.getvalue()[first_len] & 0xC0 == 0xC0

    def test_compression_case_insensitive(self):
        writer = Writer()
        writer.write_name(Name.from_text("WWW.EXAMPLE.COM"))
        before = len(writer)
        writer.write_name(Name.from_text("www.example.com"))
        assert len(writer) == before + 2

    def test_compression_disabled(self):
        writer = Writer(enable_compression=False)
        name = Name.from_text("www.example.com")
        writer.write_name(name)
        writer.write_name(name)
        assert writer.getvalue() == name.to_wire() * 2

    def test_partial_suffix_compression(self):
        writer = Writer()
        writer.write_name(Name.from_text("a.example.com"))
        size_one = len(writer)
        writer.write_name(Name.from_text("b.example.com"))
        # "b" label (2 bytes) + pointer (2 bytes).
        assert len(writer) == size_one + 4


class TestReader:
    def test_round_trip_name(self):
        name = Name.from_text("www.example.com")
        reader = Reader(name.to_wire())
        assert reader.read_name() == name
        assert reader.remaining() == 0

    def test_pointer_chase(self):
        writer = Writer()
        writer.write_name(Name.from_text("example.com"))
        writer.write_name(Name.from_text("www.example.com"))
        reader = Reader(writer.getvalue())
        assert reader.read_name() == Name.from_text("example.com")
        assert reader.read_name() == Name.from_text("www.example.com")

    def test_pointer_loop_detected(self):
        # A pointer pointing at itself.
        data = b"\xc0\x00"
        with pytest.raises(WireError):
            Reader(data).read_name()

    def test_truncated_label(self):
        with pytest.raises(WireError):
            Reader(b"\x05ab").read_name()

    def test_truncated_scalar(self):
        reader = Reader(b"\x01")
        with pytest.raises(WireError):
            reader.read_u16()

    def test_reserved_label_type(self):
        with pytest.raises(WireError):
            Reader(b"\x80abc\x00").read_name()

    def test_mutual_pointer_loop(self):
        # Two pointers referencing each other.
        data = b"\xc0\x02\xc0\x00"
        with pytest.raises(WireError):
            Reader(data).read_name()

    def test_read_exact(self):
        reader = Reader(b"abcdef")
        assert reader.read(3) == b"abc"
        assert reader.read(3) == b"def"
        with pytest.raises(WireError):
            reader.read(1)
