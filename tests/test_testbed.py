"""Tests for the synthetic populations and the assembled internet."""

import random
from collections import Counter

import pytest

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.testbed.operators import OPERATORS, normalized_param_mix
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
    inject_tail_domains,
)
from repro.testbed.tranco import assign_tranco_ranks

from tests.conftest import SMALL_CONFIG


class TestOperators:
    def test_shares_sum_to_one(self):
        assert sum(op.share for op in OPERATORS) == pytest.approx(1.0, abs=0.01)

    def test_mixes_normalise(self):
        for op in OPERATORS:
            mix = normalized_param_mix(op)
            assert sum(w for w, __, __ in mix) == pytest.approx(1.0)

    def test_squarespace_is_largest(self):
        largest = max(OPERATORS, key=lambda op: op.share)
        assert largest.key == "squarespace"
        assert largest.param_mix == ((1.0, 1, 8),)

    def test_aggregate_zero_iteration_share_calibrated(self):
        # Expected fraction of NSEC3 domains with zero iterations ≈ 12.2 %.
        expected = 0.0
        for op in OPERATORS:
            for weight, iterations, __ in normalized_param_mix(op):
                if iterations == 0:
                    expected += op.share * weight
        assert expected == pytest.approx(0.122, abs=0.02)

    def test_aggregate_saltless_share_calibrated(self):
        expected = 0.0
        for op in OPERATORS:
            for weight, __, salt in normalized_param_mix(op):
                if salt == 0:
                    expected += op.share * weight
        assert expected == pytest.approx(0.086, abs=0.02)


class TestTldPopulation:
    def test_counts_scale(self):
        tlds = generate_tlds(SMALL_CONFIG)
        assert len(tlds) == SMALL_CONFIG.n_tlds
        assert sum(t.dnssec for t in tlds) == SMALL_CONFIG.tld_dnssec
        assert sum(t.denial == "nsec3" for t in tlds) == SMALL_CONFIG.tld_nsec3

    def test_identity_digital_at_100(self):
        tlds = generate_tlds(SMALL_CONFIG)
        identity = [t for t in tlds if t.registry == "identity-digital"]
        assert len(identity) == SMALL_CONFIG.tld_identity_digital
        assert all(t.iterations == 100 for t in identity)

    def test_big_tlds_compliant(self):
        tlds = generate_tlds(SMALL_CONFIG)
        by_label = {t.label: t for t in tlds}
        for label in ("com", "net", "org"):
            assert by_label[label].denial == "nsec3"
            assert by_label[label].iterations == 0
            assert by_label[label].opt_out

    def test_deterministic(self):
        assert generate_tlds(SMALL_CONFIG) == generate_tlds(SMALL_CONFIG)


class TestDomainPopulation:
    @pytest.fixture(scope="class")
    def big_population(self):
        config = PopulationConfig(n_domains=20_000)
        return config, generate_population(config)

    def test_size(self, big_population):
        config, specs = big_population
        assert len(specs) == config.n_domains

    def test_dnssec_rate_calibrated(self, big_population):
        config, specs = big_population
        rate = sum(s.dnssec for s in specs) / len(specs)
        assert rate == pytest.approx(config.dnssec_rate, abs=0.01)

    def test_nsec3_share_calibrated(self, big_population):
        __, specs = big_population
        dnssec = [s for s in specs if s.dnssec]
        nsec3 = [s for s in dnssec if s.nsec3]
        assert len(nsec3) / len(dnssec) == pytest.approx(0.589, abs=0.04)

    def test_zero_iteration_share_calibrated(self, big_population):
        __, specs = big_population
        nsec3 = [s for s in specs if s.nsec3]
        zero = sum(1 for s in nsec3 if s.iterations == 0)
        assert zero / len(nsec3) == pytest.approx(0.122, abs=0.035)

    def test_operator_shares_roughly_table2(self, big_population):
        __, specs = big_population
        nsec3 = [s for s in specs if s.nsec3]
        counts = Counter(s.operator for s in nsec3)
        assert counts["squarespace"] / len(nsec3) == pytest.approx(0.394, abs=0.05)

    def test_unique_names(self, big_population):
        __, specs = big_population
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)

    def test_tail_injection(self):
        specs = inject_tail_domains([])
        assert any(s.iterations == 500 for s in specs)
        assert any(s.salt_length == 160 for s in specs)

    def test_deterministic(self):
        config = PopulationConfig(n_domains=500)
        assert generate_population(config) == generate_population(config)


class TestTranco:
    def test_ranks_dense_and_unique(self):
        config = PopulationConfig(n_domains=2000)
        specs = assign_tranco_ranks(generate_population(config), list_size=600)
        ranks = [s.tranco_rank for s in specs if s.tranco_rank]
        assert len(ranks) == 600
        assert sorted(ranks) == list(range(1, 601))

    def test_boost_raises_compliant_share(self):
        config = PopulationConfig(n_domains=30_000)
        specs = generate_population(config)
        ranked = assign_tranco_ranks(specs, list_size=8000)
        overall = [s for s in specs if s.nsec3]
        popular = [s for s in ranked if s.tranco_rank and s.nsec3]
        overall_zero = sum(1 for s in overall if s.iterations == 0) / len(overall)
        popular_zero = sum(1 for s in popular if s.iterations == 0) / len(popular)
        assert popular_zero > overall_zero * 1.3


class TestBuiltInternet:
    def test_zones_hosted(self, testbed):
        inet = testbed["inet"]
        assert len(inet.domain_zones) == len(testbed["domains"])
        assert len(inet.tld_zones) == len(testbed["tlds"])
        assert inet.root_zone.signed

    def test_signed_domains_have_ds_in_tld(self, testbed):
        inet = testbed["inet"]
        signed = [d for d in testbed["domains"] if d.dnssec]
        spec = signed[0]
        tld_zone = inet.tld_zones[spec.tld]
        assert tld_zone.get_rrset(spec.name, RdataType.DS) is not None

    def test_unsigned_domains_have_no_ds(self, testbed):
        inet = testbed["inet"]
        unsigned = [d for d in testbed["domains"] if not d.dnssec]
        spec = unsigned[0]
        tld_zone = inet.tld_zones[spec.tld]
        assert tld_zone.get_rrset(spec.name, RdataType.DS) is None

    def test_nsec3param_matches_spec(self, testbed):
        inet = testbed["inet"]
        for spec in testbed["domains"]:
            if not spec.nsec3:
                continue
            zone = inet.domain_zones[
                __import__("repro.dns.name", fromlist=["Name"]).Name.from_text(spec.name)
            ]
            param = zone.get_rrset(spec.name, RdataType.NSEC3PARAM)[0]
            assert param.iterations == spec.iterations
            assert len(param.salt) == spec.salt_length

    def test_resolution_through_tree(self, testbed):
        inet = testbed["inet"]
        resolver = inet.make_resolver(VENDOR_POLICIES["bind9-2021"])
        stub = StubClient(inet.network, inet.allocator.next_v4())
        hits = 0
        for spec in testbed["domains"][:15]:
            answer = stub.ask(resolver.ip, f"www.{spec.name}", RdataType.A)
            if answer.rcode == Rcode.NOERROR and answer.answer:
                hits += 1
        assert hits == 15

    def test_ad_bit_for_compliant_signed_domain(self, testbed):
        inet = testbed["inet"]
        resolver = inet.make_resolver(VENDOR_POLICIES["bind9-2021"])
        stub = StubClient(inet.network, inet.allocator.next_v4())
        signed = [d for d in testbed["domains"] if d.nsec3 and d.iterations <= 150]
        answer = stub.ask(resolver.ip, f"www.{signed[0].name}", RdataType.A)
        assert answer.ad

    def test_probe_zone_layout(self, testbed):
        probes = testbed["probes"]
        assert len(probes.zones) == 51  # 47 it-N + valid + expired + control + parent
        assert "it-500" in probes.zones
        assert "it-2501-expired" in probes.zones
        assert probes.probe_name(25, "u") == "u.it-25.rfc9276-in-the-wild.com"
        assert probes.probe_name("valid", "u") == "u.valid.rfc9276-in-the-wild.com"

    def test_probe_keys_cover_paper_design(self, testbed):
        keys = testbed["probes"].all_probe_keys()
        ints = [k for k in keys if isinstance(k, int)]
        assert set(range(1, 26)).issubset(ints)
        assert {50, 51, 101, 151, 500}.issubset(ints)
        assert "valid" in keys and "expired" in keys and "it-2501-expired" in keys
