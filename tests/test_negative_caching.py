"""RFC 2308 negative-caching behaviour of the validating resolver."""

import pytest

from repro.dns.rcode import Rcode
from repro.dns.rdata import SOA
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.resolver.validating import VERDICT_TTL, VERDICT_TTL_CAP, Verdict, _verdict_ttl


def soa_rrset(minimum, ttl=3600):
    return RRset(
        "example.com",
        RdataType.SOA,
        ttl,
        [SOA("ns.example.com", "h.example.com", 1, 2, 3, 4, minimum)],
    )


class TestVerdictTtl:
    def test_negative_uses_soa_minimum(self):
        verdict = Verdict(Rcode.NXDOMAIN, [], [soa_rrset(minimum=120)])
        assert _verdict_ttl(verdict) == 120

    def test_negative_capped_by_soa_ttl(self):
        verdict = Verdict(Rcode.NXDOMAIN, [], [soa_rrset(minimum=9999, ttl=60)])
        assert _verdict_ttl(verdict) == 60

    def test_negative_capped_globally(self):
        verdict = Verdict(
            Rcode.NXDOMAIN, [], [soa_rrset(minimum=10**6, ttl=10**6)]
        )
        assert _verdict_ttl(verdict) == VERDICT_TTL_CAP

    def test_positive_uses_min_answer_ttl(self):
        from repro.dns.rdata import A

        answers = [
            RRset("a.example.com", RdataType.A, 300, [A("1.1.1.1")]),
            RRset("a.example.com", RdataType.TXT, 60,
                  [__import__("repro.dns.rdata", fromlist=["TXT"]).TXT("x")]),
        ]
        verdict = Verdict(Rcode.NOERROR, answers, [])
        assert _verdict_ttl(verdict) == 60

    def test_servfail_brief(self):
        verdict = Verdict(Rcode.SERVFAIL, [], [])
        assert _verdict_ttl(verdict) == 30

    def test_fallback_without_soa(self):
        verdict = Verdict(Rcode.NXDOMAIN, [], [])
        assert _verdict_ttl(verdict) == VERDICT_TTL


class TestCacheExpiryEndToEnd:
    def test_negative_entry_expires_with_clock(self, mini_internet):
        from repro.resolver.validating import ValidatingResolver

        net = mini_internet["network"]
        resolver = ValidatingResolver(
            net, "198.51.100.177", mini_internet["root_addresses"],
            mini_internet["trust_anchor"],
        )
        net.attach("198.51.100.177", resolver)
        resolver.resolve_and_validate("expire-me.example.com", RdataType.A)
        sent = resolver.engine.queries_sent
        resolver.resolve_and_validate("expire-me.example.com", RdataType.A)
        assert resolver.engine.queries_sent == sent  # served from cache
        # The example.com SOA minimum is 3600 s; jump past it.
        net.clock_ms += 3601 * 1000.0
        resolver.resolve_and_validate("expire-me.example.com", RdataType.A)
        assert resolver.engine.queries_sent > sent
