"""Tests for JSONL / CSV result serialisation."""

import json

import pytest

from repro.analysis.export import (
    classifications_from_jsonl,
    classifications_to_jsonl,
    domain_results_from_jsonl,
    domain_results_to_jsonl,
    figure1_csv,
    figure3_csv,
    figure_to_csv,
)
from repro.analysis.figures import figure1_series, figure3_series
from repro.core.resolver_compliance import classify_resolver
from repro.scanner.resolver_scan import SurveyEntry
from tests.test_analysis import fake_result
from tests.test_core_compliance import matrix_for


@pytest.fixture()
def results():
    return [
        fake_result("a.com", 0, 0, ns=("ns1.x.net.", "ns2.x.net.")),
        fake_result("b.com", 10, 8, opt_out=True),
        fake_result("c.com", None),
    ]


class TestDomainJsonl:
    def test_round_trip_preserves_reports(self, results):
        text = domain_results_to_jsonl(results)
        loaded = domain_results_from_jsonl(text)
        assert len(loaded) == len(results)
        for original, restored in zip(results, loaded):
            assert restored.domain == original.domain
            assert restored.ns_targets == original.ns_targets
            assert restored.nsec3_enabled == original.nsec3_enabled
            if original.nsec3_enabled:
                assert restored.report.iterations == original.report.iterations
                assert restored.report.salt_length == original.report.salt_length
                assert restored.report.opt_out == original.report.opt_out

    def test_lines_are_valid_json(self, results):
        for line in domain_results_to_jsonl(results).splitlines():
            record = json.loads(line)
            assert "domain" in record

    def test_blank_lines_skipped(self, results):
        text = domain_results_to_jsonl(results) + "\n\n"
        assert len(domain_results_from_jsonl(text)) == len(results)

    def test_analysis_works_on_restored_results(self, results):
        from repro.analysis.stats import domain_headline_stats

        loaded = domain_results_from_jsonl(domain_results_to_jsonl(results))
        headline = domain_headline_stats(loaded, total_domains=30)
        assert headline.nsec3_enabled == 2


class TestClassificationJsonl:
    def test_round_trip(self):
        originals = [
            classify_resolver(matrix_for(insecure_above=150), resolver="1.2.3.4"),
            classify_resolver(matrix_for(servfail_above=0), resolver="5.6.7.8"),
            classify_resolver(matrix_for(validating=False)),
        ]
        loaded = classifications_from_jsonl(classifications_to_jsonl(originals))
        for original, restored in zip(originals, loaded):
            assert restored.resolver == original.resolver
            assert restored.is_validating == original.is_validating
            assert restored.insecure_threshold == original.insecure_threshold
            assert restored.servfail_threshold == original.servfail_threshold
            assert restored.strict_servfail_at_one == original.strict_servfail_at_one

    def test_summaries_match_after_round_trip(self):
        from repro.core.resolver_compliance import summarize

        originals = [
            classify_resolver(matrix_for(insecure_above=100)),
            classify_resolver(matrix_for(servfail_above=150, ede27=True)),
        ]
        loaded = classifications_from_jsonl(classifications_to_jsonl(originals))
        assert summarize(loaded) == summarize(originals)


class TestCsv:
    def test_generic_csv(self):
        text = figure_to_csv(("a", "b"), [(1, 2.5), (3, 4.0)])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5000"

    def test_figure1_csv(self, results):
        fig = figure1_series(results)
        text = figure1_csv(fig)
        assert text.splitlines()[0] == (
            "x,iterations_at_or_below_pct,salt_at_or_below_pct"
        )
        assert len(text.splitlines()) == 13

    def test_figure3_csv(self):
        matrix = matrix_for(insecure_above=150)
        entries = [SurveyEntry(None, matrix, classify_resolver(matrix))]
        fig = figure3_series(entries, "test")
        text = figure3_csv(fig)
        assert "servfail_pct" in text.splitlines()[0]
        assert len(text.splitlines()) > 10
