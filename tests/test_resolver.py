"""Tests for iterative resolution and the validating resolver core.

Uses the session-scoped ``mini_internet`` fixture: root → com →
example.com (NSEC3, 5 iterations) plus an unsigned.com insecure
delegation.
"""

import pytest

from repro.dns.flags import Flag
from repro.dns.message import Message, make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dnssec.validator import SecurityStatus
from repro.resolver.cache import Cache
from repro.resolver.iterative import IterativeResolver
from repro.resolver.policy import VENDOR_POLICIES, Nsec3Policy
from repro.resolver.stub import StubClient
from repro.resolver.validating import ValidatingResolver


def fresh_resolver(mini, policy=None, validate=True, ip=None):
    net = mini["network"]
    ip = ip or f"198.51.100.{fresh_resolver.counter}"
    fresh_resolver.counter += 1
    resolver = ValidatingResolver(
        net,
        ip,
        mini["root_addresses"],
        mini["trust_anchor"],
        policy=policy or Nsec3Policy(),
        validate=validate,
    )
    net.attach(ip, resolver)
    return resolver


fresh_resolver.counter = 100


class TestIterative:
    def test_walks_delegations(self, mini_internet):
        engine = IterativeResolver(
            mini_internet["network"], "203.0.113.50", mini_internet["root_addresses"]
        )
        outcome = engine.resolve("www.example.com", RdataType.A)
        assert outcome.ok
        assert outcome.auth_zone.to_text() == "example.com."
        assert [cut.zone.to_text() for cut in outcome.cuts] == ["com.", "example.com."]

    def test_referral_carries_ds(self, mini_internet):
        engine = IterativeResolver(
            mini_internet["network"], "203.0.113.51", mini_internet["root_addresses"]
        )
        outcome = engine.resolve("www.example.com", RdataType.A)
        assert outcome.cuts[0].ds_rrset is not None
        assert outcome.cuts[1].ds_rrset is not None

    def test_delegation_cache_reused(self, mini_internet):
        engine = IterativeResolver(
            mini_internet["network"], "203.0.113.52", mini_internet["root_addresses"]
        )
        engine.resolve("www.example.com", RdataType.A)
        first = engine.queries_sent
        engine.resolve("info.example.com", RdataType.TXT)
        assert engine.queries_sent - first == 1  # straight to example.com

    def test_ds_query_goes_to_parent(self, mini_internet):
        engine = IterativeResolver(
            mini_internet["network"], "203.0.113.53", mini_internet["root_addresses"]
        )
        engine.resolve("www.example.com", RdataType.A)  # warm delegation cache
        outcome = engine.resolve("example.com", RdataType.DS)
        assert outcome.ok
        ds = outcome.response.find_rrset(
            outcome.response.answer, "example.com", RdataType.DS
        )
        assert ds is not None

    def test_unresolvable_name_fails(self, mini_internet):
        engine = IterativeResolver(
            mini_internet["network"], "203.0.113.54", ["203.0.113.250"]
        )
        outcome = engine.resolve("www.example.com", RdataType.A)
        assert not outcome.ok
        assert "answered" in outcome.failure


class TestValidation:
    def test_secure_answer_sets_ad(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NOERROR
        assert verdict.ad

    def test_zone_security_chain(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        assert resolver.zone_security(".")[0] is SecurityStatus.SECURE
        assert resolver.zone_security("com")[0] is SecurityStatus.SECURE
        assert resolver.zone_security("example.com")[0] is SecurityStatus.SECURE

    def test_insecure_delegation(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        status, __ = resolver.zone_security("unsigned.com")
        assert status is SecurityStatus.INSECURE
        verdict = resolver.resolve_and_validate("www.unsigned.com", RdataType.A)
        assert verdict.rcode == Rcode.NOERROR
        assert not verdict.ad

    def test_secure_nxdomain(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        verdict = resolver.resolve_and_validate("ghost.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NXDOMAIN
        assert verdict.ad

    def test_secure_nodata(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.AAAA)
        assert verdict.rcode == Rcode.NOERROR and not verdict.answer
        assert verdict.ad

    def test_wildcard_answer_validates(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        verdict = resolver.resolve_and_validate(
            "unique123.wild.example.com", RdataType.A
        )
        assert verdict.rcode == Rcode.NOERROR
        assert verdict.ad

    def test_non_validating_never_sets_ad(self, mini_internet):
        resolver = fresh_resolver(mini_internet, validate=False)
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NOERROR
        assert not verdict.ad

    def test_checking_disabled_skips_validation(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        verdict = resolver.resolve_and_validate(
            "www.example.com", RdataType.A, checking_disabled=True
        )
        assert verdict.rcode == Rcode.NOERROR
        assert not verdict.ad

    def test_verdict_cached(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        resolver.resolve_and_validate("cacheme.example.com", RdataType.A)
        sent = resolver.engine.queries_sent
        resolver.resolve_and_validate("cacheme.example.com", RdataType.A)
        assert resolver.engine.queries_sent == sent


class TestDatagramInterface:
    def test_rd_required(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        query = make_query("www.example.com", RdataType.A, recursion_desired=False)
        response = Message.from_wire(
            resolver.handle_datagram(query.to_wire(), "203.0.113.60")
        )
        assert response.rcode == Rcode.REFUSED

    def test_ra_set(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        stub = StubClient(mini_internet["network"], "203.0.113.61")
        answer = stub.ask(resolver.ip, "www.example.com", RdataType.A)
        assert answer.ra

    def test_dnssec_records_stripped_without_do(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        stub = StubClient(mini_internet["network"], "203.0.113.62")
        answer = stub.ask(
            resolver.ip, "stripped.example.com", RdataType.A, want_dnssec=False
        )
        assert answer.rcode == Rcode.NXDOMAIN
        assert not any(
            int(rrset.rrtype) in (int(RdataType.NSEC3), int(RdataType.RRSIG))
            for rrset in answer.authority
        )

    def test_garbage_ignored(self, mini_internet):
        resolver = fresh_resolver(mini_internet)
        assert resolver.handle_datagram(b"nonsense", "1.2.3.4") is None


class TestPolicyGate:
    """The example.com zone uses 5 iterations: above a strict threshold."""

    def test_strict_policy_servfails(self, mini_internet):
        resolver = fresh_resolver(mini_internet, VENDOR_POLICIES["strict-rfc9276"])
        verdict = resolver.resolve_and_validate("nope.example.com", RdataType.A)
        assert verdict.rcode == Rcode.SERVFAIL
        assert any(code == 27 for code, __ in verdict.ede)

    def test_low_insecure_policy_clears_ad(self, mini_internet):
        policy = Nsec3Policy(name="tiny", insecure_above=2)
        resolver = fresh_resolver(mini_internet, policy)
        verdict = resolver.resolve_and_validate("nada.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NXDOMAIN
        assert not verdict.ad

    def test_permissive_policy_keeps_ad(self, mini_internet):
        resolver = fresh_resolver(mini_internet, VENDOR_POLICIES["bind9-2021"])
        verdict = resolver.resolve_and_validate("zilch.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NXDOMAIN
        assert verdict.ad

    def test_positive_answers_not_gated(self, mini_internet):
        # Iteration limits apply to denial proofs, not positive answers.
        resolver = fresh_resolver(mini_internet, VENDOR_POLICIES["strict-rfc9276"])
        verdict = resolver.resolve_and_validate("www.example.com", RdataType.A)
        assert verdict.rcode == Rcode.NOERROR
        assert verdict.ad


class TestCache:
    def test_ttl_expiry_on_clock(self):
        clock = {"now": 0.0}
        cache = Cache(clock=lambda: clock["now"])
        cache.put(("k",), "value", ttl_seconds=10)
        assert cache.get(("k",)).value == "value"
        clock["now"] = 11_000.0
        assert cache.get(("k",)) is None

    def test_hit_rate(self):
        cache = Cache()
        cache.put(("a",), 1, 60)
        cache.get(("a",))
        cache.get(("b",))
        assert cache.hit_rate == 0.5

    def test_eviction_at_capacity(self):
        cache = Cache(max_entries=4)
        for index in range(8):
            cache.put(("k", index), index, 60)
        assert len(cache) <= 4
