"""The telemetry layer: metrics registry, span tracing, no-op guarantees.

Also covers the observability-adjacent fixes that rode along with it:
QueryLog ring-buffer retention, NetworkStats.reset(), loss-model byte
accounting, and the ScanEngine batch API threading its DNSSEC flags.
"""

import pytest

from repro import obs
from repro.dns.rcode import Rcode
from repro.dnssec.costmodel import meter
from repro.dnssec.nsec3hash import nsec3_hash
from repro.net.network import Host, Network, NetworkStats
from repro.obs.metrics import MetricError, MetricsRegistry
from repro.obs.trace import Tracer, render_span_tree
from repro.scanner.engine import ScanEngine
from repro.server.querylog import QueryLog


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test here starts and ends with telemetry off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- metrics registry -------------------------------------------------------


class TestExposition:
    def test_golden_render(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_demo_total", "Demo counter.", labelnames=("rcode",)
        ).labels(rcode="NXDOMAIN").inc(3)
        registry.gauge("repro_demo_clock_ms", "Demo gauge.").set(1234.5)
        hist = registry.histogram(
            "repro_demo_units", "Demo histogram.", buckets=(1, 10)
        )
        hist.observe(0.5)
        hist.observe(7)
        hist.observe(100)
        expected = (
            "# HELP repro_demo_total Demo counter.\n"
            "# TYPE repro_demo_total counter\n"
            'repro_demo_total{rcode="NXDOMAIN"} 3\n'
            "# HELP repro_demo_clock_ms Demo gauge.\n"
            "# TYPE repro_demo_clock_ms gauge\n"
            "repro_demo_clock_ms 1234.5\n"
            "# HELP repro_demo_units Demo histogram.\n"
            "# TYPE repro_demo_units histogram\n"
            'repro_demo_units_bucket{le="1"} 1\n'
            'repro_demo_units_bucket{le="10"} 2\n'
            'repro_demo_units_bucket{le="+Inf"} 3\n'
            "repro_demo_units_sum 107.5\n"
            "repro_demo_units_count 3\n"
        )
        assert registry.render_prometheus() == expected

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "t", labelnames=("q",)).labels(
            q='a"b\\c\nd'
        ).inc()
        line = registry.render_prometheus().splitlines()[2]
        assert line == 'x_total{q="a\\"b\\\\c\\nd"} 1'

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_json_roundtrip_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", buckets=(5,), labelnames=("z",)).labels(
            z="it-150"
        ).observe(3)
        doc = registry.to_json()
        assert doc["h"]["type"] == "histogram"
        (sample,) = doc["h"]["samples"]
        assert sample["labels"] == {"z": "it-150"}
        assert sample["buckets"] == {"5": 1, "+Inf": 1}
        assert sample["count"] == 1


class TestHistogramBuckets:
    def test_boundary_is_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "t", buckets=(10, 20))
        hist.observe(10)  # le="10" is inclusive, as in Prometheus
        hist.observe(10.0001)
        child = hist.labels()
        assert child.counts == [1, 1, 0]

    def test_below_first_and_above_last(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "t", buckets=(10, 20))
        hist.observe(-5)
        hist.observe(20.5)  # lands in the implicit +Inf bucket
        child = hist.labels()
        assert child.counts == [1, 0, 1]
        assert child.cumulative() == [1, 1, 2]

    def test_cumulative_counts_monotone(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "t", buckets=(1, 2, 3))
        for value in (0, 1, 1, 2, 3, 99):
            hist.observe(value)
        child = hist.labels()
        assert child.cumulative() == [3, 4, 5, 6]
        assert child.count == 6

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", "t", buckets=(5, 1))


class TestDeclaration:
    def test_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "t")
        assert registry.counter("c_total", "t") is first

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "t")
        with pytest.raises(MetricError):
            registry.gauge("x", "t")

    def test_label_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "t", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("x", "t", labelnames=("b",))

    def test_reserved_and_invalid_names(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("x", "t", labelnames=("le",))
        with pytest.raises(MetricError):
            registry.counter("0bad", "t")

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("c_total", "t").inc(-1)


# -- span tracing -----------------------------------------------------------


class TestTracer:
    def test_nesting_and_simulated_durations(self):
        ticks = iter([0.0, 10.0, 30.0, 50.0, 100.0, 120.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("root", qname="x.example"):
            with tracer.span("hop", dst="10.0.0.1"):
                pass
            with tracer.span("hop", dst="10.0.0.2"):
                pass
        root = tracer.last_root()
        assert root.name == "root"
        assert [c.attributes["dst"] for c in root.children] == [
            "10.0.0.1",
            "10.0.0.2",
        ]
        assert root.children[0].duration_ms == pytest.approx(20.0)
        assert root.children[1].duration_ms == pytest.approx(50.0)
        assert root.duration_ms == pytest.approx(120.0)
        assert tracer.active is None

    def test_cost_deltas_are_inclusive_of_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                meter.charge_nsec3(150, 30, 8)
        root = tracer.last_root()
        inner = root.children[0]
        assert inner.cost.nsec3_hashes == 1
        assert inner.cost.sha1_compressions == 151
        assert root.cost.nsec3_hashes == 1  # parent sees the child's cost

    def test_walk_order_and_find(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        root = tracer.last_root()
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]
        assert root.find("c").name == "c"
        assert root.find("zzz") is None

    def test_roots_are_bounded(self):
        tracer = Tracer(max_roots=2)
        for index in range(5):
            with tracer.span(f"r{index}"):
                pass
        assert [s.name for s in tracer.roots] == ["r3", "r4"]

    def test_render_tree_shows_layers_and_costs(self):
        ticks = iter([0.0, 1.0, 2.0, 9.0, 9.5, 10.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("probe.query"):
            with tracer.span("net.hop", dst="10.0.0.8"):
                with tracer.span("nsec3.hash", iterations=150):
                    meter.charge_nsec3(150, 30, 0)
        text = render_span_tree(tracer.last_root())
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("probe.query 10.0 ms")
        assert "└─ net.hop dst=10.0.0.8" in lines[1]
        assert "nsec3.hash iterations=150" in lines[2]
        assert "nsec3=1" in lines[2]


# -- the no-op path ---------------------------------------------------------


class _Echo(Host):
    def handle_datagram(self, wire, src_ip, via_tcp=False):
        return b"pong"


class TestDisabledPath:
    def test_disabled_run_records_nothing(self):
        assert not obs.enabled
        net = Network(seed=1)
        net.attach("192.0.2.9", _Echo())
        net.send("192.0.2.1", "192.0.2.9", b"ping")
        nsec3_hash(b"\x07example\x03com\x00", b"", 150)
        with obs.span("anything") as span:
            span.set(ignored=True)
        assert obs.registry.sample_count() == 0
        assert len(obs.registry) == 0
        assert obs.tracer.last_root() is None

    def test_enable_disable_toggle(self):
        obs.enable()
        nsec3_hash(b"\x07example\x03com\x00", b"", 150)
        assert obs.registry.sample_count() == 1
        obs.disable()
        nsec3_hash(b"\x07example\x03com\x00", b"", 150)
        family = obs.registry.get("repro_nsec3_iterations")
        assert family.labels().count == 1  # second hash left no trace

    def test_metrics_without_spans(self):
        obs.enable()  # tracing stays off
        net = Network(seed=1)
        net.attach("192.0.2.9", _Echo())
        net.send("192.0.2.1", "192.0.2.9", b"ping")
        assert obs.registry.get("repro_net_datagrams_total") is not None
        assert obs.tracer.last_root() is None


# -- satellite fixes --------------------------------------------------------


class TestQueryLogRing:
    def test_keeps_newest_entries(self):
        log = QueryLog(max_entries=3)
        for index in range(10):
            log.record(f"10.0.0.{index}", f"q{index}.example.", 1)
        assert len(log) == 3
        assert [e.qname for e in log.entries] == ["q7.example.", "q8.example.", "q9.example."]
        assert log.dropped == 7
        assert sum(log.by_source.values()) == 10  # totals stay exact

    def test_sources_for_sees_recent_traffic(self):
        log = QueryLog(max_entries=2)
        log.record("10.0.0.1", "old.probe.example.", 1)
        log.record("10.0.0.2", "probe.example.", 1)
        log.record("10.0.0.3", "probe.example.", 1)
        assert log.sources_for("probe") == ["10.0.0.2", "10.0.0.3"]

    def test_clear_resets_dropped(self):
        log = QueryLog(max_entries=1)
        log.record("a", "x.", 1)
        log.record("b", "y.", 1)
        assert log.dropped == 1
        log.clear()
        assert log.dropped == 0 and len(log) == 0


class TestNetworkStats:
    def test_reset_restores_every_field(self):
        stats = NetworkStats(
            datagrams=5, tcp_queries=2, dropped=1, refused_closed=3, bytes_sent=999
        )
        stats.reset()
        assert stats == NetworkStats()

    def test_loss_dropped_datagrams_move_no_bytes(self):
        net = Network(loss_rate=1.0, seed=3)
        net.attach("192.0.2.9", _Echo())
        assert net.send("192.0.2.1", "192.0.2.9", b"ping") is None
        assert net.stats.dropped == 1
        assert net.stats.bytes_sent == 0

    def test_unreachable_still_counts_query_bytes(self):
        net = Network(seed=3)
        assert net.send("192.0.2.1", "192.0.2.200", b"ping") is None
        assert net.stats.bytes_sent == len(b"ping")


class _FakeAnswer:
    def __init__(self, rcode, answered=True):
        self.rcode = rcode
        self.answered = answered


class _FakeClient:
    """Stands in for StubClient; records the flags each query carried."""

    def __init__(self, answers):
        self.answers = list(answers)
        self.calls = []

    def ask(self, resolver_ip, qname, qtype, want_dnssec=True, checking_disabled=False):
        self.calls.append((qname, want_dnssec, checking_disabled))
        return self.answers.pop(0)


class TestScanEngine:
    def _engine(self, answers):
        net = Network(seed=4)
        engine = ScanEngine(net, "192.0.2.1", "192.0.2.2")
        engine.client = _FakeClient(answers)
        return engine

    def test_run_threads_dnssec_flags(self):
        engine = self._engine([_FakeAnswer(Rcode.NOERROR)] * 2)
        engine.run(
            [("a.example.", 1), ("b.example.", 1)],
            want_dnssec=False,
            checking_disabled=True,
        )
        assert engine.client.calls == [
            ("a.example.", False, True),
            ("b.example.", False, True),
        ]

    def test_per_rcode_outcomes(self):
        engine = self._engine(
            [
                _FakeAnswer(Rcode.NOERROR),
                _FakeAnswer(Rcode.NXDOMAIN),
                _FakeAnswer(Rcode.SERVFAIL),
                _FakeAnswer(Rcode.NXDOMAIN),
                _FakeAnswer(Rcode.NOERROR, answered=False),
            ]
        )
        engine.run([(f"q{i}.example.", 1) for i in range(5)])
        stats = engine.stats
        assert stats.rcode_counts() == {"NOERROR": 1, "NXDOMAIN": 2, "SERVFAIL": 1}
        assert stats.unanswered == 1
        assert stats.timeouts == 1  # compatibility alias
        assert stats.answered == 4
        assert stats.queries == 5

    def test_scan_counter_when_enabled(self):
        obs.enable()
        engine = self._engine(
            [_FakeAnswer(Rcode.NXDOMAIN), _FakeAnswer(Rcode.NOERROR, answered=False)]
        )
        engine.run([("a.example.", 1), ("b.example.", 1)])
        family = obs.registry.get("repro_scan_queries_total")
        assert family.labels(rcode="NXDOMAIN").value == 1
        assert family.labels(rcode="timeout").value == 1


class TestJsonRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a", labelnames=("k",)).labels(k="x").inc(3)
        registry.counter("repro_a_total", "a", labelnames=("k",)).labels(k="y").inc(5)
        registry.gauge("repro_b", "b").set(2.5)
        hist = registry.histogram("repro_c_ms", "c", buckets=(1.0, 10.0))
        for value in (0.5, 4.0, 40.0):
            hist.observe(value)
        return registry

    def test_from_json_inverts_to_json(self):
        registry = self._populated()
        rebuilt = MetricsRegistry.from_json(registry.to_json())
        assert rebuilt.render_prometheus() == registry.render_prometheus()
        assert rebuilt.to_json() == registry.to_json()

    def test_survives_serialisation(self):
        import json

        registry = self._populated()
        doc = json.loads(json.dumps(registry.to_json()))
        rebuilt = MetricsRegistry.from_json(doc)
        assert rebuilt.render_prometheus() == registry.render_prometheus()

    def test_empty_histogram_family_keeps_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("repro_c_ms", "c", buckets=(2.0, 20.0))
        rebuilt = MetricsRegistry.from_json(registry.to_json())
        assert rebuilt.get("repro_c_ms").buckets == (2.0, 20.0)
        rebuilt.get("repro_c_ms").observe(5.0)  # still usable after rebuild


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_x_total", "x").inc(3)
        b.counter("repro_x_total", "x").inc(4)
        b.counter("repro_y_total", "y").inc(1)  # only in b
        a.merge(b)
        assert a.get("repro_x_total").labels().value == 7
        assert a.get("repro_y_total").labels().value == 1

    def test_gauges_take_the_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro_hwm", "high water").set(5)
        b.gauge("repro_hwm", "high water").set(3)
        a.merge(b)
        assert a.get("repro_hwm").labels().value == 5

    def test_histograms_add_per_bucket(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("repro_ms", "h", buckets=(1.0, 10.0))
        hb = b.histogram("repro_ms", "h", buckets=(1.0, 10.0))
        ha.observe(0.5)
        hb.observe(5.0)
        hb.observe(50.0)
        a.merge(b)
        child = a.get("repro_ms").labels()
        assert child.counts == [1, 1, 1]
        assert child.count == 3
        assert child.sum == 55.5

    def test_merge_order_does_not_leak_into_rendering(self):
        def build(first):
            registry = MetricsRegistry()
            names = ("repro_b_total", "repro_a_total")
            for name in names if first else reversed(names):
                registry.counter(name, "n", labelnames=("k",))
            registry.get("repro_a_total").labels(k="z").inc(1)
            registry.get("repro_a_total").labels(k="a").inc(2)
            registry.get("repro_b_total").labels(k="m").inc(3)
            return registry

        ab = build(True).merge(build(False))
        ba = build(False).merge(build(True))
        assert ab.render_prometheus() == ba.render_prometheus()

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_x", "x")
        b.gauge("repro_x", "x")
        with pytest.raises(MetricError):
            a.merge(b)

    def test_labelset_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_x_total", "x", labelnames=("k",))
        b.counter("repro_x_total", "x")
        with pytest.raises(MetricError):
            a.merge(b)

    def test_bucket_bounds_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("repro_ms", "h", buckets=(1.0, 10.0))
        b.histogram("repro_ms", "h", buckets=(1.0, 100.0))
        with pytest.raises(MetricError):
            a.merge(b)


class TestTracerRootEviction:
    def test_overflow_is_counted_not_silent(self):
        obs.enable(max_roots=2)
        for index in range(3):
            with obs.tracer.span(f"root-{index}"):
                pass
        assert obs.tracer.dropped_roots == 1
        # The ring keeps the most recent roots.
        assert [root.name for root in obs.tracer.roots] == ["root-1", "root-2"]
        family = obs.registry.get("repro_trace_roots_dropped_total")
        assert family.labels().value == 1

    def test_set_max_roots_keeps_the_most_recent(self):
        tracer = Tracer(max_roots=8)
        for index in range(4):
            with tracer.span(f"root-{index}"):
                pass
        tracer.set_max_roots(2)
        assert [root.name for root in tracer.roots] == ["root-2", "root-3"]
        assert tracer.max_roots == 2
