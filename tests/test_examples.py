"""Smoke tests: every shipped example must run to completion.

Run as subprocesses at reduced scale so documentation code never rots.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=420):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "RFC 9276 audit" in out
        assert "Item 2 (MUST)" in out

    def test_zone_walking(self):
        out = run_example("zone_walking.py")
        assert "enumerated" in out
        assert "dictionary attack" in out

    def test_cve_demo(self):
        out = run_example("cve_2023_50868.py")
        assert "Unpatched resolver" in out
        assert "Patched resolver" in out

    def test_scan_domains_small(self):
        out = run_example("scan_domains.py", "120")
        assert "stage 0" in out
        assert "Table 2" in out

    def test_resolver_survey_small(self):
        out = run_example("resolver_survey.py", "12")
        assert "Figure 3" in out
        assert "validators limiting iterations" in out
