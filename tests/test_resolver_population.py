"""Tests for the resolver-population deployment machinery."""

import random
from collections import Counter

import pytest

from repro.testbed.resolvers import (
    DEFAULT_VALIDATOR_MIXTURE,
    ResolverMixture,
    _stratified_assignments,
    deploy_resolvers,
)


class TestMixture:
    def test_weights_sum_to_one(self):
        total = sum(w for __, __, w in DEFAULT_VALIDATOR_MIXTURE)
        assert total == pytest.approx(1.0, abs=0.005)

    def test_policies_exist(self):
        from repro.resolver.policy import VENDOR_POLICIES

        for __, policy, __ in DEFAULT_VALIDATOR_MIXTURE:
            assert policy in VENDOR_POLICIES

    def test_item6_share_calibrated(self):
        item6_policies = {
            "bind9-2021", "unbound", "knot-2021", "powerdns-2021", "quad9",
            "sloppy-150", "google", "bind9-2023", "knot-2023", "powerdns-2023",
        }
        share = sum(
            w for __, p, w in DEFAULT_VALIDATOR_MIXTURE if p in item6_policies
        )
        # paper: 59.9 % of validators implement Item 6 (gapped adds ~4 %).
        assert share == pytest.approx(0.56, abs=0.04)

    def test_item8_share_calibrated(self):
        item8_policies = {"cloudflare", "opendns", "technitium", "strict-rfc9276"}
        share = sum(
            w for __, p, w in DEFAULT_VALIDATOR_MIXTURE if p in item8_policies
        )
        assert share == pytest.approx(0.18, abs=0.03)


class TestStratification:
    def test_exact_total(self):
        rng = random.Random(1)
        assignments = _stratified_assignments(ResolverMixture(), 100, rng)
        assert len(assignments) == 100

    def test_validator_fraction_respected(self):
        rng = random.Random(2)
        mixture = ResolverMixture(validator_fraction=0.5)
        assignments = _stratified_assignments(mixture, 200, rng)
        validators = sum(1 for kind, __ in assignments if kind != "non-validating")
        assert validators == 100

    def test_proportions_match_weights(self):
        rng = random.Random(3)
        assignments = _stratified_assignments(ResolverMixture(), 1000, rng)
        counts = Counter(policy for kind, policy in assignments if kind != "non-validating")
        validators = sum(counts.values())
        for __, policy, weight in DEFAULT_VALIDATOR_MIXTURE:
            expected = weight * validators
            if expected >= 1:
                measured = counts.get(policy, 0)
                assert abs(measured - expected) <= len(DEFAULT_VALIDATOR_MIXTURE), policy

    def test_deterministic_counts_across_seeds(self):
        counts_a = Counter(
            _stratified_assignments(ResolverMixture(), 150, random.Random(1))
        )
        counts_b = Counter(
            _stratified_assignments(ResolverMixture(), 150, random.Random(999))
        )
        assert counts_a == counts_b  # only the order differs

    def test_small_deployment_gets_majority_policies(self):
        rng = random.Random(4)
        assignments = _stratified_assignments(ResolverMixture(), 10, rng)
        policies = {policy for kind, policy in assignments if kind != "non-validating"}
        assert "google" in policies


class TestDeployment:
    def test_counts_per_category(self, testbed):
        deployed = deploy_resolvers(
            testbed["inet"], open_v4=8, open_v6=4, closed_v4=4, closed_v6=2, seed=31
        )
        by_category = Counter((d.access, d.family) for d in deployed)
        assert by_category[("open", "v4")] == 8
        assert by_category[("open", "v6")] == 4
        assert by_category[("closed", "v4")] == 4
        assert by_category[("closed", "v6")] == 2

    def test_families_match_address_type(self, testbed):
        deployed = deploy_resolvers(
            testbed["inet"], open_v4=3, open_v6=3, closed_v4=0, closed_v6=0, seed=32
        )
        from repro.net.address import is_ipv6

        for resolver in deployed:
            assert is_ipv6(resolver.ip) == (resolver.family == "v6")

    def test_closed_resolvers_have_probe_sources(self, testbed):
        deployed = deploy_resolvers(
            testbed["inet"], open_v4=0, open_v6=0, closed_v4=3, closed_v6=2, seed=33
        )
        for resolver in deployed:
            assert resolver.probe_source_ip
            assert (
                testbed["inet"].network.network_of(resolver.probe_source_ip)
                == resolver.network_id
            )

    def test_unique_network_segments_per_closed_resolver(self, testbed):
        deployed = deploy_resolvers(
            testbed["inet"], open_v4=0, open_v6=0, closed_v4=4, closed_v6=0, seed=34
        )
        segments = [d.network_id for d in deployed]
        assert len(set(segments)) == len(segments)
