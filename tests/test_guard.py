"""Resolver resource guards: budgets, watchdog, admission, attack zones."""

import pytest

from repro import obs
from repro.dns.edns import EDE_STALE_ANSWER, EDE_UNSUPPORTED_NSEC3_ITERATIONS
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.net.sim import CampaignExecutor
from repro.resolver.cache import Cache
from repro.resolver.guard import (
    GUARD_PROFILES,
    AdmissionController,
    BudgetExceeded,
    DeadlineExceeded,
    GuardConfig,
    WorkBudget,
    activate,
    current,
)
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.testbed.adversary import build_attack_zones
from repro.testbed.internet import build_internet
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _config(**overrides):
    """A GuardConfig with every ceiling disabled except the overrides."""
    base = dict(
        name="test",
        max_hash_cost=None,
        max_signature_verifications=None,
        max_upstream_queries=None,
        max_chain_depth=None,
        deadline_ms=None,
        max_inflight=None,
        serve_stale=False,
    )
    base.update(overrides)
    return GuardConfig(**base)


def _small_lab(seed=5):
    config = PopulationConfig(
        n_domains=24,
        n_tlds=12,
        tld_dnssec=10,
        tld_nsec3=9,
        tld_zero_iterations=4,
        tld_identity_digital=2,
        tld_saltless=4,
        tld_salt8=4,
        tld_salt10=1,
    )
    tlds = generate_tlds(config)
    domains = generate_population(config, tlds=tlds)
    return build_internet(domains, tlds, seed=seed)


@pytest.fixture(scope="module")
def attack_lab():
    """A small Internet with the adversarial lab zones deployed."""
    inet = _small_lab()
    attack = build_attack_zones(inet)
    return {"inet": inet, "attack": attack}


# -- WorkBudget units ---------------------------------------------------------


def test_budget_hash_cost_ceiling_trips_with_bounded_overshoot():
    budget = WorkBudget(_config(max_hash_cost=50), FakeClock())
    with activate(budget):
        assert current() is budget
        with pytest.raises(BudgetExceeded) as err:
            for __ in range(100):
                # 11 compressions per charge (1 initial + 10 iterations).
                meter.charge_nsec3(10, 20, 0)
    assert err.value.kind == "hash_cost"
    assert err.value.ede_code == EDE_UNSUPPORTED_NSEC3_ITERATIONS
    # Overshoot past the ceiling is at most one metered operation.
    assert 50 < budget.hash_cost <= 50 + 11
    # Scope exit restores the uninstrumented state.
    assert current() is None
    assert meter.listener is None


def test_budget_verification_ceiling():
    budget = WorkBudget(_config(max_signature_verifications=3), FakeClock())
    with activate(budget):
        with pytest.raises(BudgetExceeded) as err:
            for __ in range(10):
                meter.charge_verification()
    assert err.value.kind == "verifications"
    assert budget.verifications == 4


def test_watchdog_deadline_on_sim_clock():
    clock = FakeClock()
    budget = WorkBudget(_config(deadline_ms=100.0), clock)
    with activate(budget):
        meter.charge_verification()  # within deadline: no error
        clock.now = 250.0
        with pytest.raises(DeadlineExceeded) as err:
            meter.charge_verification()
    assert err.value.kind == "deadline"


def test_upstream_fanout_ceiling():
    budget = WorkBudget(_config(max_upstream_queries=4), FakeClock())
    for __ in range(4):
        budget.charge_upstream()
    with pytest.raises(BudgetExceeded) as err:
        budget.charge_upstream()
    assert err.value.kind == "upstream_fanout"


def test_chain_depth_ceiling():
    budget = WorkBudget(_config(max_chain_depth=16), FakeClock())
    budget.charge_depth(16)  # at the ceiling: fine
    with pytest.raises(BudgetExceeded) as err:
        budget.charge_depth(17)
    assert err.value.kind == "chain_depth"


def test_charges_outside_scope_are_free():
    meter.charge_nsec3(2500, 30, 8)  # no active budget: must not raise
    assert current() is None


# -- AdmissionController ------------------------------------------------------


def test_admission_controller_interval_accounting():
    admission = AdmissionController(2)
    assert admission.admit(0.0)
    admission.complete(0.0, 50.0)
    assert admission.admit(10.0)
    admission.complete(10.0, 60.0)
    # Two intervals still open at t=20: shed.
    assert not admission.admit(20.0)
    # The first interval ended at 50; capacity is free again at 55.
    assert admission.admit(55.0)
    assert admission.admitted == 3
    assert admission.shed == 1


# -- cache eviction -----------------------------------------------------------


def test_cache_evicts_soonest_expiring_when_full():
    clock = FakeClock()
    cache = Cache(clock=clock, max_entries=3)
    cache.put("a", 1, ttl_seconds=10)
    cache.put("b", 2, ttl_seconds=5)
    cache.put("c", 3, ttl_seconds=20)
    cache.put("d", 4, ttl_seconds=30)
    assert cache.get("b") is None
    assert cache.get("a").value == 1
    assert cache.get("d").value == 4
    assert cache.evictions == 1


def test_cache_eviction_tie_breaks_by_insertion_order():
    cache = Cache(clock=FakeClock(), max_entries=3)
    for key in ("first", "second", "third"):
        cache.put(key, key, ttl_seconds=10)
    cache.put("fourth", "fourth", ttl_seconds=10)
    assert cache.get("first") is None
    assert cache.get("second").value == "second"


def test_cache_prefers_dropping_expired_entries():
    clock = FakeClock()
    cache = Cache(clock=clock, max_entries=2)
    cache.put("dead", 1, ttl_seconds=1)
    cache.put("live", 2, ttl_seconds=60)
    clock.now = 5_000.0
    cache.put("new", 3, ttl_seconds=60)
    assert cache.get("live").value == 2
    assert cache.get("new").value == 3
    assert cache.evictions == 1


def test_cache_peek_returns_expired_entries():
    clock = FakeClock()
    cache = Cache(clock=clock, max_entries=10)
    cache.put("stale", "value", ttl_seconds=1)
    clock.now = 10_000.0
    assert cache.peek("stale").value == "value"
    assert cache.get("stale") is None  # get still drops expired entries
    assert cache.peek("stale") is None


# -- adversarial zones end to end ---------------------------------------------


def _cost_of(resolver, qname):
    before = meter.snapshot()
    verdict = resolver.resolve_and_validate(qname, RdataType.A)
    return verdict, meter.snapshot() - before


def test_encloser_attack_bounded_by_guard(attack_lab):
    inet, attack = attack_lab["inet"], attack_lab["attack"]
    profile = GUARD_PROFILES["guarded"]
    unguarded = inet.make_resolver(VENDOR_POLICIES["legacy"], name="enc-unguarded")
    guarded = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="enc-guarded", guard=profile
    )

    verdict, cost = _cost_of(unguarded, attack.attack_name("encloser-500", "u1"))
    assert verdict.rcode == Rcode.NXDOMAIN
    assert verdict.ad
    assert cost.sha1_compressions > profile.max_hash_cost

    verdict, cost = _cost_of(guarded, attack.attack_name("encloser-500", "g1"))
    assert verdict.rcode == Rcode.SERVFAIL
    assert EDE_UNSUPPORTED_NSEC3_ITERATIONS in {code for code, __ in verdict.ede}
    # Bounded by the configured budget plus at most one NSEC3 hash.
    assert cost.sha1_compressions <= profile.max_hash_cost + 2_000
    assert guarded.guard_events == {"hash_cost": 1}


def test_keytrap_attack_bounded_by_guard(attack_lab):
    inet, attack = attack_lab["inet"], attack_lab["attack"]
    profile = GUARD_PROFILES["guarded"]
    unguarded = inet.make_resolver(VENDOR_POLICIES["legacy"], name="kt-unguarded")
    guarded = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="kt-guarded", guard=profile
    )

    verdict, cost = _cost_of(unguarded, attack.attack_name("keytrap", "u1"))
    # The sabotaged zone is still fully valid: the unguarded resolver
    # grinds through every (garbage sig x colliding key) pair and then
    # authenticates the answer.
    assert verdict.rcode == Rcode.NOERROR
    assert verdict.ad
    assert cost.signature_verifications > profile.max_signature_verifications

    verdict, cost = _cost_of(guarded, attack.attack_name("keytrap", "g1"))
    assert verdict.rcode == Rcode.SERVFAIL
    assert verdict.ede
    assert (
        cost.signature_verifications <= profile.max_signature_verifications + 1
    )
    assert guarded.guard_events == {"verifications": 1}


def test_benign_queries_agree_with_unguarded(attack_lab):
    inet, attack = attack_lab["inet"], attack_lab["attack"]
    unguarded = inet.make_resolver(VENDOR_POLICIES["legacy"], name="ben-unguarded")
    guarded = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="ben-guarded", guard=GUARD_PROFILES["guarded"]
    )
    names = [f"{attack.parent_name.to_text().rstrip('.')}"]
    names += [spec.name for spec in inet.domain_specs[:4]]
    for qname in names:
        baseline = unguarded.resolve_and_validate(qname, RdataType.A)
        observed = guarded.resolve_and_validate(qname, RdataType.A)
        assert observed.rcode == baseline.rcode
        assert observed.ad == baseline.ad
        assert observed.ede == baseline.ede
    assert guarded.guard_events == {}


def test_guard_metrics_exported(attack_lab):
    inet, attack = attack_lab["inet"], attack_lab["attack"]
    obs.enable()
    try:
        guarded = inet.make_resolver(
            VENDOR_POLICIES["legacy"], name="metrics-guarded",
            guard=GUARD_PROFILES["guarded"],
        )
        guarded.resolve_and_validate(
            attack.attack_name("encloser-500", "metrics1"), RdataType.A
        )
        exported = obs.registry.to_json()
        family = exported["repro_guard_budget_exceeded_total"]
        samples = {
            (s["labels"]["resolver"], s["labels"]["kind"]): s["value"]
            for s in family["samples"]
        }
        assert samples[("metrics-guarded", "hash_cost")] == 1
    finally:
        obs.disable()
        obs.reset()


# -- load shedding ------------------------------------------------------------


def _run_shed_campaign(concurrency, queries=24, seed=5):
    """One fixed campaign of unique NXDOMAIN probes; returns (shed, refused)."""
    inet = _small_lab(seed=seed)
    guard = _config(max_inflight=4)
    resolver = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name=f"shed-{concurrency}", guard=guard
    )
    client = StubClient(inet.network, inet.allocator.next_v4())
    executor = CampaignExecutor(inet.network.kernel, concurrency=concurrency)
    target = inet.domain_specs[0].name
    answers = []
    for index in range(queries):
        qname = f"u{index}.{target}"
        answers.append(
            executor.submit(lambda q=qname: client.ask(resolver.ip, q, RdataType.A))
        )
    executor.drain()
    refused = sum(1 for answer in answers if answer.rcode == Rcode.REFUSED)
    return resolver.admission.shed, refused


def test_shedding_deterministic_across_concurrency():
    # Serial queries never overlap on the sim clock: nothing is shed.
    shed_serial, refused_serial = _run_shed_campaign(1)
    assert (shed_serial, refused_serial) == (0, 0)

    shed_8, refused_8 = _run_shed_campaign(8)
    assert shed_8 > 0
    assert refused_8 == shed_8
    # Same seed, same campaign: shedding decisions are reproducible.
    assert _run_shed_campaign(8) == (shed_8, refused_8)

    shed_32, refused_32 = _run_shed_campaign(32)
    assert refused_32 == shed_32
    assert shed_32 >= shed_8


def test_shed_serves_stale_from_cache(attack_lab):
    inet, attack = attack_lab["inet"], attack_lab["attack"]
    guard = _config(max_inflight=0, serve_stale=True)
    resolver = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="stale-res", guard=guard
    )
    qname = attack.attack_name("no-such-child")
    # Prime the cache directly (bypasses datagram admission).
    primed = resolver.resolve_and_validate(qname, RdataType.A)
    assert primed.rcode == Rcode.NXDOMAIN

    client = StubClient(inet.network, inet.allocator.next_v4())
    answer = client.ask(resolver.ip, qname, RdataType.A)
    assert answer.rcode == Rcode.NXDOMAIN
    assert EDE_STALE_ANSWER in answer.ede_codes
    assert resolver.admission.shed == 1


def test_shed_refuses_without_stale_answer(attack_lab):
    inet = attack_lab["inet"]
    guard = _config(max_inflight=0, serve_stale=False)
    resolver = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="refuse-res", guard=guard
    )
    client = StubClient(inet.network, inet.allocator.next_v4())
    answer = client.ask(resolver.ip, "anything.example.net", RdataType.A)
    assert answer.rcode == Rcode.REFUSED
    assert resolver.admission.shed == 1
