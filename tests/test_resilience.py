"""Circuit-breaker half-open edges and backoff jitter determinism.

The breaker runs on an injected clock, so every timing edge here is
exact: the recovery boundary, the single half-open probe, re-opening on
a failed probe, and the no-wedge rule when a probe never reports back.
"""

import random

import pytest

from repro.net.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffPolicy,
    CircuitBreaker,
)

DST = "192.0.2.53"


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return _Clock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(clock, failure_threshold=3, recovery_ms=1500.0)


def trip(breaker, dst=DST):
    for __ in range(breaker.failure_threshold):
        breaker.record_failure(dst)
    assert breaker.state(dst) == OPEN


class TestCircuitBreakerHalfOpen:
    def test_recovery_boundary_is_inclusive(self, breaker, clock):
        trip(breaker)
        clock.now = 1499.999
        assert not breaker.allow(DST)
        assert breaker.state(DST) == OPEN
        clock.now = 1500.0  # exactly recovery_ms: the probe goes out
        assert breaker.allow(DST)
        assert breaker.state(DST) == HALF_OPEN

    def test_successful_probe_closes(self, breaker, clock):
        trip(breaker)
        clock.now = 2000.0
        assert breaker.allow(DST)
        breaker.record_success(DST)
        assert breaker.state(DST) == CLOSED
        # The failure evidence is gone: one new failure must not re-trip.
        breaker.record_failure(DST)
        assert breaker.state(DST) == CLOSED

    def test_failed_probe_reopens_immediately(self, breaker, clock):
        trip(breaker)
        clock.now = 2000.0
        assert breaker.allow(DST)
        # One failure in half-open re-opens — no fresh threshold count.
        breaker.record_failure(DST)
        assert breaker.state(DST) == OPEN
        # And the recovery window restarts from the probe's failure time.
        clock.now = 3499.0
        assert not breaker.allow(DST)
        clock.now = 3500.0
        assert breaker.allow(DST)
        assert breaker.state(DST) == HALF_OPEN

    def test_lost_probe_does_not_wedge(self, breaker, clock):
        # A probe that never reports back (crashed session, dropped
        # reply) must not leave the destination unreachable forever.
        trip(breaker)
        clock.now = 2000.0
        assert breaker.allow(DST)
        for __ in range(5):
            assert breaker.allow(DST)
        assert breaker.state(DST) == HALF_OPEN

    def test_transitions_are_logged_in_order(self, breaker, clock):
        trip(breaker)
        clock.now = 1600.0
        breaker.allow(DST)
        breaker.record_failure(DST)
        clock.now = 3200.0
        breaker.allow(DST)
        breaker.record_success(DST)
        assert breaker.transitions == [
            (DST, CLOSED, OPEN),
            (DST, OPEN, HALF_OPEN),
            (DST, HALF_OPEN, OPEN),
            (DST, OPEN, HALF_OPEN),
            (DST, HALF_OPEN, CLOSED),
        ]

    def test_quarantine_lists_only_cooling_circuits(self, breaker, clock):
        trip(breaker)
        breaker.record_failure("192.0.2.99")  # below threshold: closed
        assert breaker.quarantined() == [DST]
        clock.now = 1500.0  # window over: eligible for a probe again
        assert breaker.quarantined() == []

    def test_destinations_are_independent(self, breaker, clock):
        trip(breaker)
        other = "198.51.100.7"
        assert breaker.allow(other)
        breaker.record_failure(other)
        assert breaker.state(other) == CLOSED
        assert breaker.state(DST) == OPEN

    def test_success_resets_consecutive_failure_count(self, breaker):
        for __ in range(breaker.failure_threshold - 1):
            breaker.record_failure(DST)
        breaker.record_success(DST)
        for __ in range(breaker.failure_threshold - 1):
            breaker.record_failure(DST)
        assert breaker.state(DST) == CLOSED


class TestBackoffPolicy:
    def test_seeded_jitter_is_deterministic(self):
        policy = BackoffPolicy(base_ms=40.0, factor=2.0, max_ms=2000.0, jitter=0.5)
        first = [policy.delay_ms(n, random.Random(99)) for n in range(1, 7)]
        second = [policy.delay_ms(n, random.Random(99)) for n in range(1, 7)]
        assert first == second
        # Different seeds decorrelate retry storms.
        other = [policy.delay_ms(n, random.Random(100)) for n in range(1, 7)]
        assert other != first

    def test_zero_jitter_is_exact_exponential(self):
        policy = BackoffPolicy(base_ms=40.0, factor=2.0, max_ms=2000.0, jitter=0.0)
        rng = random.Random(1)
        assert [policy.delay_ms(n, rng) for n in range(1, 8)] == [
            40.0,
            80.0,
            160.0,
            320.0,
            640.0,
            1280.0,
            2000.0,  # capped
        ]

    def test_jitter_bounds_hold_even_at_the_cap(self):
        policy = BackoffPolicy(base_ms=40.0, factor=2.0, max_ms=2000.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 12):
            raw = min(policy.max_ms, policy.base_ms * policy.factor ** (attempt - 1))
            for __ in range(50):
                delay = policy.delay_ms(attempt, rng)
                assert raw <= delay <= raw * (1.0 + policy.jitter)
