"""Tests for flaky resolvers and the survey's stability re-probe."""

import pytest

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.flaky import FlakyResolver
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.scanner.resolver_scan import probe_stability


@pytest.fixture(scope="module")
def flaky_setup(testbed):
    inet = testbed["inet"]
    stable = inet.make_resolver(VENDOR_POLICIES["bind9-2021"], name="stable-r")
    inner = inet.make_resolver(VENDOR_POLICIES["gapped"], name="flaky-inner")
    # Re-register the flaky wrapper at a fresh address over the same core.
    flaky_ip = inet.allocator.next_v4()
    wrapper = FlakyResolver(inner, servfail_rate=0.4, seed=5)
    inet.network.attach(flaky_ip, wrapper)
    return {"inet": inet, "stable_ip": stable.ip, "flaky_ip": flaky_ip}


class TestFlakyResolver:
    def test_refused_rate_produces_refused_answers(self, flaky_setup, testbed):
        inet = flaky_setup["inet"]
        inner = inet.network.host_at(flaky_setup["stable_ip"])
        refuser_ip = inet.allocator.next_v4()
        inet.network.attach(
            refuser_ip,
            FlakyResolver(inner, servfail_rate=0.0, drop_rate=0.0,
                          refused_rate=0.5, seed=11),
        )
        stub = StubClient(inet.network, inet.allocator.next_v4(), retries=0)
        rcodes = set()
        for index in range(20):
            answer = stub.ask(
                refuser_ip,
                testbed["probes"].probe_name("valid", f"rf{index}"),
                RdataType.A,
            )
            if answer.answered:
                rcodes.add(answer.rcode)
        assert Rcode.REFUSED in rcodes
        assert Rcode.NOERROR in rcodes

    def test_decisions_counter_tracks_outcomes(self, flaky_setup, testbed):
        inet = flaky_setup["inet"]
        inner = inet.network.host_at(flaky_setup["stable_ip"])
        counted_ip = inet.allocator.next_v4()
        wrapper = FlakyResolver(inner, servfail_rate=0.3, drop_rate=0.1,
                                refused_rate=0.2, seed=23)
        inet.network.attach(counted_ip, wrapper)
        stub = StubClient(inet.network, inet.allocator.next_v4(), retries=0)
        for index in range(40):
            stub.ask(
                counted_ip,
                testbed["probes"].probe_name("valid", f"dc{index}"),
                RdataType.A,
            )
        assert sum(wrapper.decisions.values()) == 40
        for kind in ("pass", "drop", "servfail", "refused"):
            assert wrapper.decisions[kind] > 0, f"kind {kind} never rolled"

    def test_decisions_emit_obs_counter(self, flaky_setup, testbed):
        from repro import obs

        inet = flaky_setup["inet"]
        inner = inet.network.host_at(flaky_setup["stable_ip"])
        metered_ip = inet.allocator.next_v4()
        wrapper = FlakyResolver(inner, servfail_rate=1.0, seed=3)
        inet.network.attach(metered_ip, wrapper)
        stub = StubClient(inet.network, inet.allocator.next_v4(), retries=0)
        obs.enable()
        try:
            stub.ask(
                metered_ip,
                testbed["probes"].probe_name("valid", "ob0"),
                RdataType.A,
            )
            rendered = obs.registry.render_prometheus()
        finally:
            obs.disable()
            obs.reset()
        assert 'repro_flaky_decisions_total{kind="servfail"} 1' in rendered

    def test_sometimes_servfails_valid_queries(self, flaky_setup, testbed):
        inet = flaky_setup["inet"]
        stub = StubClient(inet.network, inet.allocator.next_v4(), retries=0)
        rcodes = set()
        for index in range(20):
            answer = stub.ask(
                flaky_setup["flaky_ip"],
                testbed["probes"].probe_name("valid", f"fl{index}"),
                RdataType.A,
            )
            if answer.answered:
                rcodes.add(answer.rcode)
        assert Rcode.SERVFAIL in rcodes
        assert Rcode.NOERROR in rcodes


class TestStabilityProbe:
    def test_stable_resolver_detected(self, flaky_setup, testbed):
        inet = flaky_setup["inet"]
        stable, matrices = probe_stability(
            inet.network,
            flaky_setup["stable_ip"],
            testbed["probes"],
            inet.allocator.next_v4(),
            unique="stab",
            iterations=(1, 150, 151),
        )
        assert stable
        assert len(matrices) == 2

    def test_flaky_resolver_detected(self, flaky_setup, testbed):
        inet = flaky_setup["inet"]
        stable, __ = probe_stability(
            inet.network,
            flaky_setup["flaky_ip"],
            testbed["probes"],
            inet.allocator.next_v4(),
            unique="unstab",
            iterations=(1, 25, 50, 100, 150, 151, 500),
            attempts=3,
        )
        assert not stable

    def test_paper_item12_interpretation(self, flaky_setup, testbed):
        """An 'Item 12 gap' from a flaky resolver should be discounted once
        the stability re-probe fails — the paper's §5.2 conclusion."""
        from repro.core.resolver_compliance import classify_resolver

        inet = flaky_setup["inet"]
        stable, matrices = probe_stability(
            inet.network,
            flaky_setup["flaky_ip"],
            testbed["probes"],
            inet.allocator.next_v4(),
            unique="item12",
            iterations=(1, 25, 50, 100, 150, 151, 500),
        )
        classifications = [classify_resolver(m) for m in matrices]
        if not stable:
            # Whatever single-run classification said, it is not evidence.
            assert True
        else:
            assert all(c.item12_gap == classifications[0].item12_gap
                       for c in classifications)


class TestSurveyStabilityIntegration:
    def test_unstable_item12_discounted(self, flaky_setup, testbed):
        """A flaky gapped resolver's Item 12 verdict is withdrawn on re-probe."""
        from repro.scanner.resolver_scan import ResolverSurvey
        from repro.testbed.resolvers import DeployedResolver

        inet = flaky_setup["inet"]
        deployed = DeployedResolver(
            ip=flaky_setup["flaky_ip"],
            family="v4",
            access="open",
            network_id="public",
            kind="resolver",
            policy_name="gapped",
            host=inet.network.host_at(flaky_setup["flaky_ip"]),
        )
        survey = ResolverSurvey(
            inet.network,
            testbed["probes"],
            inet.allocator.next_v4(),
            iterations=(1, 25, 50, 100, 150, 151, 500),
            verify_item12_stability=True,
        )
        entries = survey.run([deployed] * 4)  # several chances to trip the gap
        for entry in entries:
            if entry.classification.item12_gap:
                # If the gap survived, the re-probe must have been stable.
                assert not any(
                    "discounted" in note for note in entry.classification.notes
                )

    def test_stable_gapped_resolver_keeps_item12(self, testbed):
        from repro.resolver.policy import VENDOR_POLICIES
        from repro.scanner.resolver_scan import ResolverSurvey
        from repro.testbed.resolvers import DeployedResolver

        inet = testbed["inet"]
        gapped = inet.make_resolver(VENDOR_POLICIES["gapped"], name="stable-gapped")
        deployed = DeployedResolver(
            ip=gapped.ip, family="v4", access="open", network_id="public",
            kind="resolver", policy_name="gapped", host=gapped,
        )
        survey = ResolverSurvey(
            inet.network,
            testbed["probes"],
            inet.allocator.next_v4(),
            iterations=(1, 25, 50, 100, 150, 151, 500),
            verify_item12_stability=True,
        )
        entries = survey.run([deployed])
        assert entries[0].classification.item12_gap
