"""Coverage for smaller components: engine rate limiting, cost model,
query log, EDNS details, Atlas budget, glueless resolution."""

import pytest

from repro.dns.edns import Edns, ExtendedError
from repro.dnssec.costmodel import CostMeter, _sha1_blocks
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.engine import ScanEngine
from repro.server.querylog import QueryLog
from repro.testbed.resolvers import deploy_resolvers


class TestSha1Blocks:
    def test_empty_message_one_block(self):
        assert _sha1_blocks(0) == 1

    def test_boundary_at_55(self):
        # 55 bytes + 1 padding byte + 8 length bytes = 64: one block.
        assert _sha1_blocks(55) == 1
        assert _sha1_blocks(56) == 2

    def test_large(self):
        assert _sha1_blocks(119) == 2
        assert _sha1_blocks(120) == 3


class TestCostMeter:
    def test_charge_nsec3_accounting(self):
        meter = CostMeter()
        meter.charge_nsec3(iterations=0, input_length=20, salt_length=0)
        assert meter.nsec3_hashes == 1
        assert meter.sha1_compressions == 1
        meter.charge_nsec3(iterations=10, input_length=20, salt_length=0)
        assert meter.sha1_compressions == 1 + 11

    def test_reset(self):
        meter = CostMeter()
        meter.charge_verification()
        meter.reset()
        assert meter.signature_verifications == 0


class TestEdns:
    def test_ttl_field_packs_do_bit(self):
        edns = Edns(dnssec_ok=True)
        assert edns.ttl_field(0) & 0x8000

    def test_ttl_field_packs_extended_rcode(self):
        edns = Edns()
        assert (edns.ttl_field(16) >> 24) == 1

    def test_extended_errors_roundtrip(self):
        edns = Edns()
        edns.add_extended_error(27, "too many")
        errors = edns.extended_errors()
        assert errors == [ExtendedError(27, "too many")]

    def test_repr_includes_name(self):
        assert "Unsupported NSEC3" in repr(ExtendedError(27))


class TestQueryLog:
    def test_bounded(self):
        log = QueryLog(max_entries=3)
        for index in range(10):
            log.record("1.2.3.4", f"q{index}.test.", 1)
        assert len(log) == 3
        assert log.by_source["1.2.3.4"] == 10  # counter keeps counting

    def test_sources_for(self):
        log = QueryLog()
        log.record("1.1.1.1", "a.probe.test.", 1)
        log.record("2.2.2.2", "b.probe.test.", 1)
        log.record("3.3.3.3", "other.test.", 1)
        assert log.sources_for("probe.test") == ["1.1.1.1", "2.2.2.2"]

    def test_clear(self):
        log = QueryLog()
        log.record("1.1.1.1", "x.test.", 1)
        log.clear()
        assert len(log) == 0 and not log.by_source


class TestScanEngineRateLimit:
    def test_rate_limit_advances_clock(self, testbed):
        inet = testbed["inet"]
        upstream = inet.make_resolver(VENDOR_POLICIES["google"], name="rl-upstream")
        engine = ScanEngine(
            inet.network, inet.allocator.next_v4(), upstream.ip, max_qps=10
        )
        for index in range(5):
            engine.query(f"q{index}.com", 2)
        # 5 queries at 10 qps: the 5th is scheduled no earlier than 400 ms.
        assert engine.stats.duration_ms >= 400
        # Path latency rides on top of the schedule; allow slack.
        assert engine.stats.effective_qps <= 13.0

    def test_stats_track_timeouts(self, testbed):
        inet = testbed["inet"]
        engine = ScanEngine(inet.network, inet.allocator.next_v4(), "172.31.255.1")
        engine.query("x.com", 1)
        assert engine.stats.timeouts == 1


class TestAtlasBudget:
    def test_max_probes_respected(self, testbed):
        inet = testbed["inet"]
        deployment = deploy_resolvers(
            inet, open_v4=0, open_v6=0, closed_v4=4, closed_v6=0, seed=61
        )
        campaign = AtlasCampaign(
            inet.network, testbed["probes"], iterations=(1, 151), max_probes=2
        )
        entries = campaign.run(deployment)
        assert len(entries) == 2


class TestGluelessResolution:
    def test_operator_ns_resolved_without_glue(self, testbed):
        """Domain NS targets live under operator domains: referrals from
        their TLDs carry no glue for them, forcing glueless resolution."""
        inet = testbed["inet"]
        resolver = inet.make_resolver(VENDOR_POLICIES["legacy"], name="glueless")
        spec = next(d for d in testbed["domains"] if d.dnssec)
        verdict = resolver.resolve_and_validate(f"www.{spec.name}", 1)
        assert verdict.rcode == 0


class TestInternetHelpers:
    def test_make_resolver_ipv6(self, testbed):
        from repro.net.address import is_ipv6

        resolver = testbed["inet"].make_resolver(
            VENDOR_POLICIES["legacy"], ipv6=True, name="v6r"
        )
        assert is_ipv6(resolver.ip)

    def test_zone_of(self, testbed):
        spec = testbed["domains"][0]
        zone = testbed["inet"].zone_of(spec.name)
        assert zone is not None
        assert zone.origin.to_text().rstrip(".") == spec.name
