"""Tests for the simulated network: delivery, loss, closed segments."""

import pytest

from repro.net.address import AddressAllocator, is_ipv6, normalize
from repro.net.network import Host, Network
from repro.net.resilience import BackoffPolicy, CircuitBreaker
from repro.net.transport import CircuitOpenError, QueryFailure, Transport
from repro.dns.flags import Flag
from repro.dns.message import Message, make_query, make_response
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType


class Echo(Host):
    """Answers every query with an empty NOERROR response."""

    def __init__(self):
        self.received = []

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        query = Message.from_wire(wire)
        self.received.append((src_ip, via_tcp))
        return make_response(query).to_wire()


class Mute(Host):
    def handle_datagram(self, wire, src_ip, via_tcp=False):
        return None


class TestAddressing:
    def test_allocator_unique(self):
        allocator = AddressAllocator()
        v4s = allocator.next_v4_block(100)
        assert len(set(v4s)) == 100
        v6s = allocator.next_v6_block(10)
        assert all(is_ipv6(a) for a in v6s)
        assert not any(is_ipv6(a) for a in v4s)

    def test_normalize(self):
        assert normalize("2001:DB8:0:0:0:0:0:1") == "2001:db8::1"
        assert normalize("192.0.2.1") == "192.0.2.1"

    def test_allocator_deterministic(self):
        assert AddressAllocator().next_v4() == AddressAllocator().next_v4()


class TestDelivery:
    def test_round_trip(self):
        net = Network()
        echo = Echo()
        net.attach("192.0.2.1", echo)
        raw = net.send("198.51.100.1", "192.0.2.1", make_query("x.test", 1).to_wire())
        assert raw is not None
        assert echo.received == [("198.51.100.1", False)]

    def test_unattached_destination_drops(self):
        net = Network()
        assert net.send("1.1.1.1", "2.2.2.2", b"\x00" * 12) is None
        assert net.stats.dropped == 1

    def test_double_attach_rejected(self):
        net = Network()
        net.attach("192.0.2.1", Echo())
        with pytest.raises(ValueError):
            net.attach("192.0.2.1", Echo())

    def test_detach(self):
        net = Network()
        net.attach("192.0.2.1", Echo())
        net.detach("192.0.2.1")
        assert net.host_at("192.0.2.1") is None

    def test_clock_advances(self):
        net = Network(base_latency_ms=10)
        net.attach("192.0.2.1", Echo())
        before = net.clock_ms
        net.send("198.51.100.7", "192.0.2.1", make_query("x.test", 1).to_wire())
        assert net.clock_ms > before

    def test_loss(self):
        net = Network(loss_rate=1.0)
        net.attach("192.0.2.1", Echo())
        assert net.send("1.2.3.4", "192.0.2.1", make_query("x.test", 1).to_wire()) is None

    def test_loss_does_not_affect_tcp(self):
        net = Network(loss_rate=1.0)
        net.attach("192.0.2.1", Echo())
        raw = net.send(
            "1.2.3.4", "192.0.2.1", make_query("x.test", 1).to_wire(), via_tcp=True
        )
        assert raw is not None

    def test_addresses_filter_by_family(self):
        net = Network()
        net.attach("192.0.2.1", Echo())
        net.attach("2001:db8::1", Echo())
        assert net.addresses(ipv6=False) == ["192.0.2.1"]
        assert net.addresses(ipv6=True) == ["2001:db8::1"]
        assert len(net.addresses()) == 2


class TestClosedNetworks:
    def test_closed_host_unreachable_from_public(self):
        net = Network()
        net.attach("10.0.0.1", Echo(), network_id="corp")
        assert net.send("1.2.3.4", "10.0.0.1", b"x" * 12) is None
        assert net.stats.refused_closed == 1

    def test_closed_host_reachable_from_same_network(self):
        net = Network()
        echo = Echo()
        net.attach("10.0.0.1", echo, network_id="corp")
        net.attach("10.0.0.2", Mute(), network_id="corp")
        raw = net.send("10.0.0.2", "10.0.0.1", make_query("x.test", 1).to_wire())
        assert raw is not None

    def test_closed_host_can_reach_public(self):
        net = Network()
        echo = Echo()
        net.attach("192.0.2.1", echo)  # public
        net.attach("10.0.0.1", Mute(), network_id="corp")
        raw = net.send("10.0.0.1", "192.0.2.1", make_query("x.test", 1).to_wire())
        assert raw is not None


class TestTransport:
    def test_query_response(self):
        net = Network()
        net.attach("192.0.2.1", Echo())
        transport = Transport(net, "198.51.100.1")
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert response.rcode == Rcode.NOERROR

    def test_timeout_raises(self):
        net = Network()
        net.attach("192.0.2.1", Mute())
        transport = Transport(net, "198.51.100.1", retries=1)
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))

    def test_retry_recovers_from_loss(self):
        net = Network(loss_rate=0.5, seed=3)
        net.attach("192.0.2.1", Echo())
        transport = Transport(net, "198.51.100.1", retries=10)
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert response is not None

    def test_id_mismatch_treated_as_drop(self):
        class WrongId(Host):
            def handle_datagram(self, wire, src_ip, via_tcp=False):
                query = Message.from_wire(wire)
                response = make_response(query)
                response.id = (query.id + 1) & 0xFFFF
                return response.to_wire()

        net = Network()
        net.attach("192.0.2.1", WrongId())
        transport = Transport(net, "198.51.100.1", retries=1)
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))

    def test_tcp_fallback_on_truncation(self):
        from repro.dns.flags import Flag
        from repro.dns.rdata import TXT
        from repro.dns.rrset import RRset

        class BigAnswer(Host):
            def handle_datagram(self, wire, src_ip, via_tcp=False):
                query = Message.from_wire(wire)
                response = make_response(query)
                for index in range(40):
                    response.add_rrset(
                        response.answer,
                        RRset("x.test", RdataType.TXT, 60, [TXT(f"{index} " + "y" * 80)]),
                    )
                max_size = None if via_tcp else 512
                return response.to_wire(max_size=max_size)

        net = Network()
        net.attach("192.0.2.1", BigAnswer())
        transport = Transport(net, "198.51.100.1")
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.TXT))
        assert not response.has_flag(Flag.TC)
        assert len(response.answer) == 1
        assert net.stats.tcp_queries == 1


class Truncating(Host):
    """Always answers TC=1 on UDP; TCP behaviour is pluggable per test."""

    def __init__(self, tcp_behaviour):
        self.tcp_behaviour = tcp_behaviour
        self.tcp_attempts = 0

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        query = Message.from_wire(wire)
        if not via_tcp:
            response = make_response(query)
            response.set_flag(Flag.TC)
            return response.to_wire()
        self.tcp_attempts += 1
        return self.tcp_behaviour(query, self.tcp_attempts)


class TestTransportEdgePaths:
    """The hostile-response paths a scanner meets on the real Internet."""

    def test_tcp_failure_carries_qname_and_dst(self):
        net = Network()
        net.attach("192.0.2.1", Truncating(lambda query, attempt: None))
        transport = Transport(net, "198.51.100.1", tcp_retries=1)
        with pytest.raises(QueryFailure) as excinfo:
            transport.query("192.0.2.1", make_query("edge.test", RdataType.A))
        assert str(excinfo.value.qname).rstrip(".") == "edge.test"
        assert excinfo.value.dst_ip == "192.0.2.1"

    def test_tcp_wrong_id_rejected(self):
        def wrong_id(query, attempt):
            response = make_response(query)
            response.id = (query.id + 1) & 0xFFFF
            return response.to_wire()

        net = Network()
        net.attach("192.0.2.1", Truncating(wrong_id))
        transport = Transport(net, "198.51.100.1", tcp_retries=0)
        with pytest.raises(QueryFailure, match="id mismatch"):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))

    def test_tcp_malformed_wire_rejected(self):
        net = Network()
        net.attach(
            "192.0.2.1", Truncating(lambda query, attempt: b"\xff\xee\xdd")
        )
        transport = Transport(net, "198.51.100.1", tcp_retries=0)
        with pytest.raises(QueryFailure, match="malformed"):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))

    def test_tcp_retry_recovers_single_loss(self):
        def flaky_then_fine(query, attempt):
            if attempt == 1:
                return None
            return make_response(query).to_wire()

        net = Network()
        host = Truncating(flaky_then_fine)
        net.attach("192.0.2.1", host)
        transport = Transport(net, "198.51.100.1", tcp_retries=1)
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert response.rcode == Rcode.NOERROR
        assert host.tcp_attempts == 2

    def test_udp_malformed_wire_retried_then_fails(self):
        class Garbage(Host):
            def __init__(self):
                self.attempts = 0

            def handle_datagram(self, wire, src_ip, via_tcp=False):
                self.attempts += 1
                return b"\x00\x01garbage"

        net = Network()
        host = Garbage()
        net.attach("192.0.2.1", host)
        transport = Transport(net, "198.51.100.1", retries=2)
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert host.attempts == 3  # garbage burned every attempt

    def test_backoff_advances_simulated_clock(self):
        net = Network()
        net.attach("192.0.2.1", Mute())
        policy = BackoffPolicy(base_ms=100.0, factor=2.0, max_ms=1000.0, jitter=0.0)
        transport = Transport(net, "198.51.100.1", retries=2, backoff=policy)
        before = net.clock_ms
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert net.clock_ms - before >= 100.0 + 200.0

    def test_no_backoff_keeps_clock_cheap(self):
        net = Network(base_latency_ms=0.0)
        net.attach("192.0.2.1", Mute())
        transport = Transport(net, "198.51.100.1", retries=2, backoff=None)
        before = net.clock_ms
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert net.clock_ms == before

    def test_timeout_budget_bounds_retries(self):
        net = Network()
        net.attach("192.0.2.1", Mute())
        policy = BackoffPolicy(base_ms=500.0, factor=1.0, max_ms=500.0, jitter=0.0)
        transport = Transport(
            net, "198.51.100.1", retries=10, backoff=policy, timeout_budget_ms=600.0
        )
        with pytest.raises(QueryFailure, match="budget"):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        # 10 retries were allowed but the budget cut the schedule short.
        assert net.stats.datagrams <= 3

    def test_circuit_breaker_opens_and_fails_fast(self):
        net = Network()
        net.attach("192.0.2.1", Mute())
        breaker = CircuitBreaker(
            clock=lambda: net.clock_ms, failure_threshold=2, recovery_ms=5000.0
        )
        transport = Transport(
            net, "198.51.100.1", retries=0, backoff=None, breaker=breaker
        )
        for __ in range(2):
            with pytest.raises(QueryFailure):
                transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert breaker.state("192.0.2.1") == "open"
        sent_before = net.stats.datagrams
        with pytest.raises(CircuitOpenError):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert net.stats.datagrams == sent_before  # failed fast, no traffic

    def test_circuit_recovers_through_half_open(self):
        net = Network()
        echo = Echo()
        mute = Mute()
        current = {"host": mute}

        class Switch(Host):
            def handle_datagram(self, wire, src_ip, via_tcp=False):
                return current["host"].handle_datagram(wire, src_ip, via_tcp=via_tcp)

        net.attach("192.0.2.1", Switch())
        breaker = CircuitBreaker(
            clock=lambda: net.clock_ms, failure_threshold=1, recovery_ms=50.0
        )
        transport = Transport(
            net, "198.51.100.1", retries=0, backoff=None, breaker=breaker
        )
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert breaker.state("192.0.2.1") == "open"

        net.clock_ms += 60.0  # outage clears, recovery window elapses
        current["host"] = echo
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert response.rcode == Rcode.NOERROR
        assert breaker.state("192.0.2.1") == "closed"
