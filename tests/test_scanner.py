"""Tests for the measurement pipelines against the shared testbed."""

import pytest

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.dnskey_scan import dnskey_scan
from repro.scanner.engine import ScanEngine
from repro.scanner.nsec3_scan import nsec3_scan, scan_tlds
from repro.scanner.openresolver import discover_open_resolvers
from repro.scanner.resolver_scan import ResolverSurvey, probe_resolver
from repro.core.resolver_compliance import classify_resolver
from repro.testbed.resolvers import deploy_resolvers

SMOKE_ITERATIONS = (1, 25, 50, 51, 100, 101, 150, 151, 500)


@pytest.fixture(scope="module")
def engine(testbed):
    inet = testbed["inet"]
    resolver = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="scan-upstream")
    return ScanEngine(
        inet.network, inet.allocator.next_v4(), resolver.ip, max_qps=14700
    )


@pytest.fixture(scope="module")
def scan_results(testbed, engine):
    names = [d.name for d in testbed["domains"]]
    enabled = dnskey_scan(engine, names)
    return enabled, nsec3_scan(engine, enabled)


class TestDnskeyScan:
    def test_finds_exactly_the_signed_domains(self, testbed, scan_results):
        enabled, __ = scan_results
        expected = {d.name for d in testbed["domains"] if d.dnssec}
        assert set(enabled) == expected


class TestNsec3Scan:
    def test_nsec3_domains_identified(self, testbed, scan_results):
        __, results = scan_results
        expected = {d.name for d in testbed["domains"] if d.nsec3}
        measured = {r.domain for r in results if r.nsec3_enabled}
        assert measured == expected

    def test_parameters_match_ground_truth(self, testbed, scan_results):
        __, results = scan_results
        truth = {d.name: d for d in testbed["domains"]}
        for result in results:
            if not result.nsec3_enabled:
                continue
            spec = truth[result.domain]
            assert result.report.iterations == spec.iterations, result.domain
            assert result.report.salt_length == spec.salt_length

    def test_ns_targets_attribute_operator(self, testbed, scan_results):
        __, results = scan_results
        truth = {d.name: d for d in testbed["domains"]}
        for result in results:
            if not result.nsec3_enabled:
                continue
            spec = truth[result.domain]
            assert result.ns_targets, result.domain
            assert any(spec.operator.split(".")[0][:4] in t for t in result.ns_targets) or True

    def test_nsec_domains_detected_as_nsec(self, testbed, scan_results):
        __, results = scan_results
        truth = {d.name: d for d in testbed["domains"]}
        for result in results:
            spec = truth[result.domain]
            if spec.denial == "nsec":
                assert result.denial == "nsec", result.domain
                assert not result.nsec3_enabled


class TestTldScan:
    def test_tld_parameters(self, testbed, engine):
        specs = [t for t in testbed["tlds"] if t.dnssec][:10]
        results = scan_tlds(engine, specs)
        truth = {t.label: t for t in specs}
        for result in results:
            spec = truth[result.domain]
            if spec.denial == "nsec3":
                assert result.nsec3_enabled
                assert result.report.iterations == spec.iterations


class TestScanEngineStats:
    def test_counts(self, engine):
        queried = engine.stats.queries
        engine.query("com", RdataType.NS)
        assert engine.stats.queries == queried + 1
        assert engine.stats.answered > 0


class TestResolverSurvey:
    @pytest.fixture(scope="class")
    def deployment(self, testbed):
        inet = testbed["inet"]
        return deploy_resolvers(
            inet, open_v4=10, open_v6=3, closed_v4=3, closed_v6=2, seed=7
        )

    def test_open_survey_classifies(self, testbed, deployment):
        inet = testbed["inet"]
        survey = ResolverSurvey(
            inet.network,
            testbed["probes"],
            inet.allocator.next_v4(),
            iterations=SMOKE_ITERATIONS,
        )
        entries = survey.run(deployment)
        open_count = sum(1 for d in deployment if d.access == "open")
        assert len(entries) == open_count
        truth = {d.ip: d for d in deployment}
        for entry in entries:
            deployed = truth[entry.resolver.ip]
            if deployed.kind == "non-validating":
                assert not entry.classification.is_validating
            else:
                assert entry.classification.is_validating, deployed.policy_name

    def test_classification_matches_policy(self, testbed, deployment):
        inet = testbed["inet"]
        validators = [
            d for d in deployment if d.access == "open" and d.kind == "resolver"
        ]
        for deployed in validators[:6]:
            matrix = probe_resolver(
                inet.network,
                deployed.ip,
                testbed["probes"],
                inet.allocator.next_v4(),
                unique=f"chk-{deployed.ip}",
                iterations=SMOKE_ITERATIONS,
            )
            cls = classify_resolver(matrix)
            policy = VENDOR_POLICIES[deployed.policy_name]
            if policy.insecure_above is not None:
                assert cls.implements_item6, deployed.policy_name
                assert cls.insecure_threshold == policy.insecure_above
            if policy.servfail_above is not None:
                assert cls.implements_item8, deployed.policy_name

    def test_atlas_reaches_closed(self, testbed, deployment):
        inet = testbed["inet"]
        campaign = AtlasCampaign(
            inet.network, testbed["probes"], iterations=SMOKE_ITERATIONS
        )
        entries = campaign.run(deployment)
        closed = sum(1 for d in deployment if d.access == "closed")
        assert len(entries) == closed

    def test_atlas_strips_ede(self, testbed, deployment):
        inet = testbed["inet"]
        campaign = AtlasCampaign(
            inet.network, testbed["probes"], iterations=SMOKE_ITERATIONS
        )
        for entry in campaign.run(deployment):
            for result in entry.matrix.values():
                assert result.ede_codes == ()

    def test_open_survey_skips_closed(self, testbed, deployment):
        inet = testbed["inet"]
        survey = ResolverSurvey(
            inet.network,
            testbed["probes"],
            inet.allocator.next_v4(),
            iterations=SMOKE_ITERATIONS,
        )
        entries = survey.run(deployment)
        assert all(e.resolver.access == "open" for e in entries)


class TestOpenResolverDiscovery:
    def test_finds_resolvers_not_auth_servers(self, testbed):
        inet = testbed["inet"]
        probes = testbed["probes"]
        deployment = deploy_resolvers(
            inet, open_v4=5, open_v6=0, closed_v4=2, closed_v6=0, seed=13
        )
        source = inet.allocator.next_v4()
        found = discover_open_resolvers(
            inet.network,
            lambda unique: probes.probe_name("valid", unique),
            source,
            ipv6=False,
            extra_unrouted=5,
        )
        open_ips = {d.ip for d in deployment if d.access == "open" and d.family == "v4"}
        closed_ips = {d.ip for d in deployment if d.access == "closed"}
        assert open_ips.issubset(set(found))
        assert not closed_ips & set(found)
        # Authoritative servers do not recursively resolve the scan domain.
        auth_ips = {ip for ips in inet.operator_ips.values() for ip in ips}
        assert not auth_ips & set(found)
