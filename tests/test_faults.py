"""Tests for the fault-injection subsystem and the resilience primitives."""

import random

import pytest

from repro import obs
from repro.dns.message import Message, make_query, make_response
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.faults import (
    Blackout,
    Corruption,
    FaultContext,
    FaultPlan,
    Flapping,
    GilbertElliott,
    LatencyJitter,
    RateLimitRefused,
    parse_fault_spec,
)
from repro.net.network import Host, Network
from repro.net.resilience import BackoffPolicy, CircuitBreaker
from repro.net.transport import QueryFailure, Transport


class Echo(Host):
    def __init__(self):
        self.received = 0

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        self.received += 1
        return make_response(Message.from_wire(wire)).to_wire()


def _ctx(network, dst_ip="192.0.2.1", wire=b"\x00" * 16, via_tcp=False):
    return FaultContext(
        src_ip="198.51.100.1",
        dst_ip=dst_ip,
        wire=wire,
        via_tcp=via_tcp,
        network=network,
    )


class TestGilbertElliott:
    def test_deterministic_under_seed(self):
        net = Network()
        rolls = []
        for __ in range(2):
            model = GilbertElliott(p_enter=0.3, p_exit=0.3, loss_bad=0.8, seed=7)
            rolls.append(
                [model.drop_reason(_ctx(net)) is not None for __ in range(200)]
            )
        assert rolls[0] == rolls[1]
        assert any(rolls[0])  # the chain does enter the bad state

    def test_losses_cluster_in_bursts(self):
        net = Network()
        model = GilbertElliott(p_enter=0.05, p_exit=0.2, loss_bad=0.9, seed=3)
        outcomes = [model.drop_reason(_ctx(net)) is not None for __ in range(2000)]
        drops = outcomes.count(True)
        # Count drops that immediately follow a drop: bursty loss has far
        # more of them than the ~p*drops an independent process would give.
        adjacent = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        assert drops > 50
        assert adjacent > 0.3 * drops

    def test_tcp_exempt_by_default(self):
        net = Network()
        model = GilbertElliott(p_enter=1.0, p_exit=0.0, loss_bad=1.0, seed=1)
        assert model.drop_reason(_ctx(net, via_tcp=True)) is None
        assert model.drop_reason(_ctx(net, via_tcp=False)) == "loss"

    def test_dst_filter(self):
        net = Network()
        model = GilbertElliott(
            p_enter=1.0, p_exit=0.0, loss_bad=1.0, seed=1, dst_ip="192.0.2.9"
        )
        assert model.drop_reason(_ctx(net, dst_ip="192.0.2.1")) is None
        assert model.drop_reason(_ctx(net, dst_ip="192.0.2.9")) == "loss"


class TestLatencyJitter:
    def test_delay_bounded_and_deterministic(self):
        net = Network()
        a = LatencyJitter(jitter_ms=10.0, spike_ms=500.0, spike_rate=0.1, seed=4)
        b = LatencyJitter(jitter_ms=10.0, spike_ms=500.0, spike_rate=0.1, seed=4)
        delays = [a.delay_ms(_ctx(net)) for __ in range(300)]
        assert delays == [b.delay_ms(_ctx(net)) for __ in range(300)]
        assert all(d >= 0.0 for d in delays)
        assert max(delays) > 500.0  # at least one spike fired
        assert min(delays) < 10.0


class TestScheduledOutages:
    def test_blackout_window(self):
        net = Network()
        model = Blackout("192.0.2.1", start_ms=100.0, end_ms=200.0)
        net.clock_ms = 50.0
        assert model.drop_reason(_ctx(net)) is None
        net.clock_ms = 150.0
        assert model.drop_reason(_ctx(net)) == "down"
        assert model.drop_reason(_ctx(net, dst_ip="192.0.2.2")) is None
        net.clock_ms = 200.0
        assert model.drop_reason(_ctx(net)) is None

    def test_flapping_phases(self):
        model = Flapping("192.0.2.1", period_ms=1000.0, down_fraction=0.25)
        assert model.is_down(0.0)
        assert model.is_down(249.0)
        assert not model.is_down(250.0)
        assert not model.is_down(999.0)
        assert model.is_down(1000.0)  # the next period starts down again

    def test_flapping_offset(self):
        model = Flapping(
            "192.0.2.1", period_ms=1000.0, down_fraction=0.5, offset_ms=500.0
        )
        assert not model.is_down(0.0)
        assert model.is_down(600.0)


class TestCorruption:
    def _response_wire(self):
        return make_response(make_query("x.test", RdataType.A, msg_id=77)).to_wire()

    def test_styles_damage_or_preserve_parseability(self):
        net = Network()
        wire = self._response_wire()
        for style in Corruption.KINDS:
            model = Corruption(rate=1.0, kinds=(style,), seed=11)
            mutated = model.corrupt(_ctx(net), wire)
            assert mutated != wire
            if style == "truncate":
                assert len(mutated) == max(2, len(wire) // 2)
            if style == "wrongid":
                # Still parses; only the id moved (off-path spoof signature).
                parsed = Message.from_wire(mutated)
                assert parsed.id != 77

    def test_rate_zero_never_fires(self):
        net = Network()
        model = Corruption(rate=0.0, seed=1)
        wire = self._response_wire()
        assert model.corrupt(_ctx(net), wire) is wire

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Corruption(kinds=("bitrot",))


class TestRateLimitRefused:
    def test_refuses_after_burst(self):
        net = Network()
        model = RateLimitRefused(qps=10.0, burst=3)
        query_wire = make_query("x.test", RdataType.A).to_wire()
        verdicts = [
            model.synthesize(_ctx(net, wire=query_wire)) for __ in range(5)
        ]
        assert verdicts[:3] == [None, None, None]
        refused = Message.from_wire(verdicts[3])
        assert refused.rcode == Rcode.REFUSED
        assert refused.is_response

    def test_bucket_refills_on_simulated_clock(self):
        net = Network()
        model = RateLimitRefused(qps=10.0, burst=1)
        query_wire = make_query("x.test", RdataType.A).to_wire()
        assert model.synthesize(_ctx(net, wire=query_wire)) is None
        assert model.synthesize(_ctx(net, wire=query_wire)) is not None
        net.clock_ms += 200.0  # 0.2 s at 10 qps -> 2 tokens (capped at burst)
        assert model.synthesize(_ctx(net, wire=query_wire)) is None

    def test_unparseable_query_dropped_not_answered(self):
        net = Network()
        model = RateLimitRefused(qps=10.0, burst=0)
        assert model.synthesize(_ctx(net, wire=b"\x01\x02")) == b""


class TestFaultPlan:
    def test_injection_counter_by_kind(self):
        net = Network()
        plan = FaultPlan([Blackout("192.0.2.1", 0.0, 1e9)])
        delay, verdict = plan.on_send(_ctx(net))
        assert verdict.drop_reason == "fault-blackout"
        assert plan.injected["blackout"] == 1

    def test_first_drop_wins(self):
        net = Network()
        plan = FaultPlan(
            [Blackout("192.0.2.1", 0.0, 1e9), Blackout("192.0.2.1", 0.0, 1e9)]
        )
        plan.on_send(_ctx(net))
        assert plan.injected["blackout"] == 1

    def test_response_corruption_chain(self):
        net = Network()
        plan = FaultPlan([Corruption(rate=1.0, kinds=("garbage",), seed=2)])
        wire = make_response(make_query("x.test", RdataType.A)).to_wire()
        mutated = plan.on_response(_ctx(net), wire)
        assert mutated != wire
        assert plan.injected["corrupt"] == 1

    def test_obs_counter_emitted(self):
        obs.disable()
        obs.reset()
        obs.enable()
        try:
            net = Network()
            plan = FaultPlan([Blackout("192.0.2.1", 0.0, 1e9)])
            plan.on_send(_ctx(net))
            rendered = obs.registry.render_prometheus()
            assert 'repro_net_faults_injected_total{kind="blackout"} 1' in rendered
        finally:
            obs.disable()
            obs.reset()


class TestNetworkIntegration:
    def test_blackout_drops_and_counts(self):
        net = Network()
        echo = Echo()
        net.attach("192.0.2.1", echo)
        net.set_faults(FaultPlan([Blackout("192.0.2.1", 0.0, 1e9)]))
        raw = net.send(
            "198.51.100.1", "192.0.2.1", make_query("x.test", RdataType.A).to_wire()
        )
        assert raw is None
        assert echo.received == 0
        assert net.stats.dropped == 1

    def test_jitter_advances_clock(self):
        net = Network(base_latency_ms=0.0)
        net.attach("192.0.2.1", Echo())
        net.set_faults(
            FaultPlan([LatencyJitter(jitter_ms=50.0, spike_rate=0.0, seed=6)])
        )
        before = net.clock_ms
        net.send(
            "198.51.100.1", "192.0.2.1", make_query("x.test", RdataType.A).to_wire()
        )
        assert net.clock_ms > before

    def test_refused_synthesis_reaches_client(self):
        net = Network()
        echo = Echo()
        net.attach("192.0.2.1", echo)
        net.set_faults(FaultPlan([RateLimitRefused(qps=1.0, burst=0)]))
        transport = Transport(net, "198.51.100.1", retries=0)
        response = transport.query("192.0.2.1", make_query("x.test", RdataType.A))
        assert response.rcode == Rcode.REFUSED
        assert echo.received == 0  # synthesised before the host saw it


class TestFaultSpecParser:
    def test_preset_expansion(self):
        plan = parse_fault_spec("chaos", seed=1)
        kinds = [model.kind for model in plan.models]
        assert kinds == ["burst", "jitter", "corrupt"]

    def test_full_grammar(self):
        plan = parse_fault_spec(
            "burst:0.1:0.5:0.9,jitter:5:100:0.02,blackout:192.0.2.7:100:200,"
            "flap:192.0.2.8:3000:0.25:100,corrupt:0.3:garbage+wrongid,"
            "refuse:50:10:192.0.2.9",
            seed=2,
        )
        burst, jitter, blackout, flap, corrupt, refuse = plan.models
        assert (burst.p_enter, burst.p_exit, burst.loss_bad) == (0.1, 0.5, 0.9)
        assert (jitter.jitter_ms, jitter.spike_ms, jitter.spike_rate) == (5.0, 100.0, 0.02)
        assert (blackout.dst_ip, blackout.start_ms, blackout.end_ms) == ("192.0.2.7", 100.0, 200.0)
        assert (flap.dst_ip, flap.period_ms, flap.down_fraction, flap.offset_ms) == ("192.0.2.8", 3000.0, 0.25, 100.0)
        assert (corrupt.rate, corrupt.kinds) == (0.3, ("garbage", "wrongid"))
        assert (refuse.qps, refuse.burst, refuse.dst_ip) == (50.0, 10.0, "192.0.2.9")

    def test_seeded_models_reproducible(self):
        net = Network()
        first = parse_fault_spec("burst:0.3:0.3:0.8", seed=5).models[0]
        second = parse_fault_spec("burst:0.3:0.3:0.8", seed=5).models[0]
        rolls_a = [first.drop_reason(_ctx(net)) for __ in range(100)]
        rolls_b = [second.drop_reason(_ctx(net)) for __ in range(100)]
        assert rolls_a == rolls_b

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            parse_fault_spec("hurricane")

    def test_blackout_requires_window(self):
        with pytest.raises(ValueError, match="blackout"):
            parse_fault_spec("blackout:192.0.2.1")

    def test_too_many_arguments_rejected(self):
        with pytest.raises(ValueError, match="too many"):
            parse_fault_spec("jitter:1:2:3:4")


class TestBackoffPolicy:
    def test_exponential_and_capped(self):
        policy = BackoffPolicy(base_ms=10.0, factor=2.0, max_ms=35.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay_ms(1, rng) == 10.0
        assert policy.delay_ms(2, rng) == 20.0
        assert policy.delay_ms(3, rng) == 35.0  # capped
        assert policy.delay_ms(9, rng) == 35.0

    def test_jitter_adds_bounded_fraction(self):
        policy = BackoffPolicy(base_ms=100.0, factor=1.0, max_ms=100.0, jitter=0.5)
        rng = random.Random(1)
        for __ in range(50):
            delay = policy.delay_ms(1, rng)
            assert 100.0 <= delay <= 150.0


class TestCircuitBreaker:
    def test_full_lifecycle(self):
        clock = {"ms": 0.0}
        breaker = CircuitBreaker(
            clock=lambda: clock["ms"], failure_threshold=2, recovery_ms=100.0
        )
        dst = "192.0.2.1"
        assert breaker.state(dst) == "closed"
        breaker.record_failure(dst)
        assert breaker.allow(dst)
        breaker.record_failure(dst)
        assert breaker.state(dst) == "open"
        assert not breaker.allow(dst)
        assert breaker.quarantined() == [dst]

        clock["ms"] = 100.0  # recovery elapsed: one probe allowed
        assert breaker.allow(dst)
        assert breaker.state(dst) == "half-open"
        breaker.record_success(dst)
        assert breaker.state(dst) == "closed"
        assert (dst, "open", "half-open") in breaker.transitions

    def test_half_open_failure_reopens(self):
        clock = {"ms": 0.0}
        breaker = CircuitBreaker(
            clock=lambda: clock["ms"], failure_threshold=1, recovery_ms=50.0
        )
        breaker.record_failure("d")
        clock["ms"] = 60.0
        assert breaker.allow("d")
        breaker.record_failure("d")  # half-open probe failed
        assert breaker.state("d") == "open"
        assert not breaker.allow("d")

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(clock=lambda: 0.0, failure_threshold=3)
        breaker.record_failure("d")
        breaker.record_failure("d")
        breaker.record_success("d")
        breaker.record_failure("d")
        breaker.record_failure("d")
        assert breaker.state("d") == "closed"
