"""Tests for the cost-model-preserving fast paths (PR 5).

Three claims are load-bearing and each gets direct coverage here:

1. the fast paths change *nothing observable* — signatures, response
   bytes, and cost-meter charges are identical with every switch on or
   off;
2. the memo keys are sound — key rollovers, RRset edits, and zone
   mutations force real recomputation, and temporal RRSIG validity is
   re-checked on every validation (a memo hit must never resurrect an
   expired signature);
3. the caches are bounded with deterministic eviction and kill switches.
"""

import random

import pytest

from repro import fastpath
from repro.crypto import rsa
from repro.crypto.keys import (
    ALG_ECDSAP256SHA256,
    ALG_RSASHA256,
    generate_keypair,
)
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.rdata.soa import SOA
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.dnssec.signer import make_rrsig_rrset, sign_rrset
from repro.dnssec.validator import (
    SecurityStatus,
    validate_rrset,
    verification_memo,
)
from repro.server.authoritative import AuthoritativeServer, PackedAnswerCache
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone
from repro.zone.zone import Zone


@pytest.fixture(autouse=True)
def _clean_state():
    """Each test starts with empty memos and the default switch state."""
    fastpath.reset()
    verification_memo.clear()
    verification_memo.hits = 0
    verification_memo.misses = 0
    yield
    fastpath.reset()
    verification_memo.clear()


# -- the switchboard ---------------------------------------------------------


class TestSwitchboard:
    def test_all_known_switches_default_on(self):
        for name in fastpath.KNOWN_SWITCHES:
            assert fastpath.enabled(name)

    def test_disable_all(self):
        fastpath.disable("all")
        for name in fastpath.KNOWN_SWITCHES:
            assert not fastpath.enabled(name)

    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="unknown fast-path switch"):
            fastpath.disable("warp_drive")

    def test_disabled_context_restores(self):
        with fastpath.disabled("rsa_crt,answer_cache"):
            assert not fastpath.enabled("rsa_crt")
            assert not fastpath.enabled("answer_cache")
            assert fastpath.enabled("validator_memo")
        assert fastpath.enabled("rsa_crt")
        assert fastpath.enabled("answer_cache")

    def test_env_var_parsed_on_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_DISABLE", "nsec3_memo")
        fastpath.reset()
        assert not fastpath.enabled("nsec3_memo")
        assert fastpath.enabled("validator_memo")


# -- RSA CRT signing ---------------------------------------------------------


class TestRsaCrt:
    def test_crt_signature_byte_identical_to_plain_d(self):
        key = rsa.generate_rsa_key(512, rng=random.Random(7))
        assert key.dp is not None  # generated keys carry the factors
        message = b"the quick brown fox"
        via_crt = key.sign(message)
        with fastpath.disabled("rsa_crt"):
            via_d = key.sign(message)
        assert via_crt == via_d
        assert key.public().verify(message, via_crt)

    def test_crt_identical_across_hashes_and_keys(self):
        rng = random.Random(13)
        for bits in (512, 768):
            key = rsa.generate_rsa_key(bits, rng=rng)
            for hash_name in ("sha1", "sha256"):
                message = f"msg-{bits}-{hash_name}".encode()
                with fastpath.disabled("rsa_crt"):
                    expected = key.sign(message, hash_name)
                assert key.sign(message, hash_name) == expected

    def test_key_without_factors_falls_back(self):
        key = rsa.generate_rsa_key(512, rng=random.Random(21))
        rebuilt = rsa.RsaPrivateKey(key.n, key.e, key.d)
        assert rebuilt.dp is None
        assert rebuilt.sign(b"hello") == key.sign(b"hello")

    def test_dnssec_rsa_signatures_unchanged(self):
        """sign_rrset through a KeyPair produces identical RRSIGs."""
        pair = generate_keypair(ALG_RSASHA256, rsa_bits=512, rng=random.Random(3))
        rrset = RRset("www.example.com", RdataType.A, 300, [A("192.0.2.1")])
        fast = sign_rrset(rrset, pair, "example.com").signature
        with fastpath.disabled("rsa_crt"):
            slow = sign_rrset(rrset, pair, "example.com").signature
        assert fast == slow


# -- the RRSIG verification memo ---------------------------------------------


def _signed_rrset(pair, owner="www.example.com"):
    rrset = RRset(owner, RdataType.A, 300, [A("192.0.2.1")])
    rrsig = sign_rrset(rrset, pair, "example.com")
    return rrset, make_rrsig_rrset(rrset, [rrsig])


class TestVerificationMemo:
    @pytest.fixture()
    def pair(self):
        return generate_keypair(ALG_ECDSAP256SHA256, rng=random.Random(5))

    def test_second_validation_hits(self, pair):
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        assert validate_rrset(rrset, rrsigs, dnskeys).secure
        misses = verification_memo.misses
        assert validate_rrset(rrset, rrsigs, dnskeys).secure
        assert verification_memo.hits == 1
        assert verification_memo.misses == misses

    def test_key_rollover_misses(self, pair):
        """A new DNSKEY changes the memo key: no stale hit across rollover."""
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        assert validate_rrset(rrset, rrsigs, dnskeys).secure
        rolled = generate_keypair(ALG_ECDSAP256SHA256, rng=random.Random(6))
        rrsig2 = sign_rrset(rrset, rolled, "example.com")
        rrsigs2 = make_rrsig_rrset(rrset, [rrsig2])
        dnskeys2 = RRset("example.com", RdataType.DNSKEY, 3600, [rolled.dnskey])
        before = verification_memo.hits
        assert validate_rrset(rrset, rrsigs2, dnskeys2).secure
        assert verification_memo.hits == before  # fresh key → real verification

    def test_memo_does_not_bypass_temporal_validity(self, pair):
        """An RRSIG cached as good must go BOGUS once its window passes."""
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        assert validate_rrset(rrset, rrsigs, dnskeys).secure
        expired_now = rrsigs[0].expiration + 1
        result = validate_rrset(rrset, rrsigs, dnskeys, now=expired_now)
        assert result.status is SecurityStatus.BOGUS
        assert "validity window" in result.reason

    def test_negative_outcomes_are_cached_too(self, pair):
        from repro.dns.rdata.dnssec import RRSIG

        rrset, rrsigs = _signed_rrset(pair)
        good = rrsigs[0]
        corrupt = RRSIG(
            good.type_covered, good.algorithm, good.labels, good.original_ttl,
            good.expiration, good.inception, good.key_tag, good.signer,
            bytes(len(good.signature)),
        )
        rrsigs = make_rrsig_rrset(rrset, [corrupt])
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        assert validate_rrset(rrset, rrsigs, dnskeys).status is SecurityStatus.BOGUS
        before = verification_memo.hits
        assert validate_rrset(rrset, rrsigs, dnskeys).status is SecurityStatus.BOGUS
        assert verification_memo.hits == before + 1  # False is a valid memo value

    def test_hit_charges_meter_like_a_miss(self, pair):
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        start = meter.snapshot()
        validate_rrset(rrset, rrsigs, dnskeys)
        miss_cost = meter.snapshot() - start
        start = meter.snapshot()
        validate_rrset(rrset, rrsigs, dnskeys)
        hit_cost = meter.snapshot() - start
        assert hit_cost == miss_cost
        assert hit_cost.signature_verifications == 1

    def test_rrset_mutation_invalidates(self, pair):
        """Growing the RRset changes the digest component of the key."""
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        assert validate_rrset(rrset, rrsigs, dnskeys).secure
        rrset.add(A("192.0.2.99"))
        before = verification_memo.hits
        result = validate_rrset(rrset, rrsigs, dnskeys)
        assert result.status is SecurityStatus.BOGUS  # signature no longer covers it
        assert verification_memo.hits == before

    def test_bounded_eviction_clears(self, pair):
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        old_limit = verification_memo.limit
        verification_memo.limit = 1
        try:
            validate_rrset(rrset, rrsigs, dnskeys)
            other, other_sigs = _signed_rrset(pair, owner="other.example.com")
            validate_rrset(other, other_sigs, dnskeys)
            assert verification_memo.evictions >= 1
            assert len(verification_memo.entries) <= 1
        finally:
            verification_memo.limit = old_limit

    def test_kill_switch_skips_memo(self, pair):
        rrset, rrsigs = _signed_rrset(pair)
        dnskeys = RRset("example.com", RdataType.DNSKEY, 3600, [pair.dnskey])
        with fastpath.disabled("validator_memo"):
            assert validate_rrset(rrset, rrsigs, dnskeys).secure
            assert validate_rrset(rrset, rrsigs, dnskeys).secure
        assert verification_memo.hits == 0
        assert not verification_memo.entries


# -- the packed answer cache -------------------------------------------------


def _build_server():
    rng = random.Random(17)
    zone = (
        ZoneBuilder("example.com")
        .soa("ns1.example.com", "h.example.com")
        .ns("ns1.example.com.")
        .a("ns1", "192.0.2.1")
        .a("www", "192.0.2.2")
        .build()
    )
    sign_zone(
        zone,
        SigningPolicy(nsec3=Nsec3Params(iterations=10, salt=b"\xab")),
        rng=rng,
    )
    server = AuthoritativeServer("cache-test")
    server.add_zone(zone)
    return server, zone


def _ask_wire(server, qname, qtype, msg_id, dnssec=True):
    query = make_query(qname, qtype, want_dnssec=dnssec, msg_id=msg_id)
    return server.handle_datagram(query.to_wire(), "198.51.100.9")


class TestAnswerCache:
    def test_hit_is_byte_identical_modulo_id(self):
        server, _ = _build_server()
        first = _ask_wire(server, "www.example.com", RdataType.A, msg_id=0x1111)
        assert server.answer_cache.misses == 1
        second = _ask_wire(server, "www.example.com", RdataType.A, msg_id=0x2222)
        assert server.answer_cache.hits == 1
        assert second[:2] == b"\x22\x22"
        assert second[2:] == first[2:]
        assert Message.from_wire(second).id == 0x2222

    def test_hit_replays_exact_charges(self):
        server, _ = _build_server()
        meter_start = meter.snapshot()
        _ask_wire(server, "nope.example.com", RdataType.A, msg_id=1)
        miss_cost = meter.snapshot() - meter_start
        assert miss_cost.nsec3_hashes > 0  # closest-encloser proof hashed
        meter_start = meter.snapshot()
        _ask_wire(server, "nope.example.com", RdataType.A, msg_id=2)
        hit_cost = meter.snapshot() - meter_start
        assert server.answer_cache.hits == 1
        assert hit_cost == miss_cost

    def test_distinct_questions_do_not_collide(self):
        server, _ = _build_server()
        a_wire = _ask_wire(server, "www.example.com", RdataType.A, msg_id=1)
        txt_wire = _ask_wire(server, "www.example.com", RdataType.TXT, msg_id=1)
        plain = _ask_wire(server, "www.example.com", RdataType.A, msg_id=1, dnssec=False)
        assert server.answer_cache.hits == 0
        assert len({a_wire, txt_wire, plain}) == 3

    def test_zone_serial_bump_invalidates(self):
        server, zone = _build_server()
        _ask_wire(server, "www.example.com", RdataType.A, msg_id=1)
        assert server.answer_cache.entries
        old_soa = zone.soa[0]
        bumped = SOA(
            old_soa.mname,
            old_soa.rname,
            old_soa.serial + 1,
            old_soa.refresh,
            old_soa.retry,
            old_soa.expire,
            old_soa.minimum,
        )
        zone.replace_rrset(RRset(zone.origin, RdataType.SOA, zone.soa.ttl, [bumped]))
        assert not server.answer_cache.entries
        response = Message.from_wire(
            _ask_wire(server, "example.com", RdataType.SOA, msg_id=2)
        )
        assert server.answer_cache.hits == 0  # recomputed, not served stale
        assert response.answer[0][0].serial == old_soa.serial + 1

    def test_any_zone_mutation_invalidates(self):
        server, zone = _build_server()
        _ask_wire(server, "www.example.com", RdataType.A, msg_id=1)
        assert server.answer_cache.entries
        zone.add("new.example.com", RdataType.A, 60, A("192.0.2.77"))
        assert not server.answer_cache.entries

    def test_kill_switch_disables_caching(self):
        server, _ = _build_server()
        with fastpath.disabled("answer_cache"):
            first = _ask_wire(server, "www.example.com", RdataType.A, msg_id=1)
            second = _ask_wire(server, "www.example.com", RdataType.A, msg_id=1)
        assert not server.answer_cache.entries
        assert server.answer_cache.hits == 0
        assert first == second  # still deterministic, just recomputed

    def test_cached_and_uncached_bytes_identical(self):
        """The core equivalence claim, at the datagram level."""
        cached_server, _ = _build_server()
        plain_server, _ = _build_server()
        qnames = [
            ("www.example.com", RdataType.A),
            ("www.example.com", RdataType.A),
            ("missing.example.com", RdataType.A),
            ("missing.example.com", RdataType.A),
            ("example.com", RdataType.SOA),
            ("www.example.com", RdataType.TXT),
        ]
        for index, (qname, qtype) in enumerate(qnames):
            fast = _ask_wire(cached_server, qname, qtype, msg_id=index)
            with fastpath.disabled("answer_cache"):
                slow = _ask_wire(plain_server, qname, qtype, msg_id=index)
            assert fast == slow, (qname, qtype)
        assert cached_server.answer_cache.hits == 2

    def test_fifo_eviction_is_deterministic(self):
        cache = PackedAnswerCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the oldest
        assert cache.evictions == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        cache.put("b", 4)  # overwrite, no eviction
        assert cache.evictions == 1

    def test_tcp_and_udp_cached_separately(self):
        server, _ = _build_server()
        query = make_query("www.example.com", RdataType.A, want_dnssec=True, msg_id=9)
        udp = server.handle_datagram(query.to_wire(), "203.0.113.5")
        tcp = server.handle_datagram(query.to_wire(), "203.0.113.5", via_tcp=True)
        assert server.answer_cache.hits == 0
        assert len(server.answer_cache.entries) == 2
        assert udp is not None and tcp is not None


# -- zone-side index structures ----------------------------------------------


class TestZoneIndexes:
    def test_name_exists_matches_linear_reference(self):
        zone = Zone("example.com")
        zone.add("example.com", RdataType.NS, 300, A("192.0.2.1"))
        for host in ("a.b.c", "a.b", "z", "deep.empty.nonterminal.sub"):
            zone.add(f"{host}.example.com", RdataType.A, 300, A("192.0.2.2"))

        def linear_exists(qname):
            if qname in zone.nodes:
                return True
            return any(name.is_subdomain_of(qname) for name in zone.nodes)

        probes = [
            "example.com", "b.c.example.com", "c.example.com",
            "a.b.c.example.com", "x.a.b.c.example.com", "ghost.example.com",
            "empty.nonterminal.sub.example.com", "nonterminal.sub.example.com",
            "sub.example.com", "aa.example.com", "zz.example.com",
        ]
        for probe in probes:
            qname = Name.from_text(probe)
            assert zone._name_exists(qname) == linear_exists(qname), probe

    def test_existence_index_refreshes_after_mutation(self):
        zone = Zone("example.com")
        zone.add("www.example.com", RdataType.A, 300, A("192.0.2.2"))
        ghost = Name.from_text("late.example.com")
        assert not zone._name_exists(ghost)
        zone.add("deep.late.example.com", RdataType.A, 300, A("192.0.2.3"))
        assert zone._name_exists(ghost)  # now an empty non-terminal

    def test_zone_for_longest_suffix(self):
        parent = Zone("com")
        parent.add("com", RdataType.NS, 300, A("192.0.2.1"))
        child = Zone("example.com")
        child.add("example.com", RdataType.NS, 300, A("192.0.2.2"))
        server = AuthoritativeServer("multi")
        server.add_zone(parent).add_zone(child)
        assert server.zone_for("www.example.com") is child
        assert server.zone_for("example.com") is child
        assert server.zone_for("other.com") is parent
        assert server.zone_for("com") is parent
        assert server.zone_for("org") is None
