"""Tests for forwarding resolvers and the query-copying middlebox."""

import pytest

from repro.dns.flags import Flag
from repro.dns.message import Message, make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.forwarder import ForwardingResolver, QueryCopyingForwarder
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.resolver.validating import ValidatingResolver


@pytest.fixture()
def upstream(mini_internet):
    net = mini_internet["network"]
    resolver = ValidatingResolver(
        net,
        "198.51.100.200",
        mini_internet["root_addresses"],
        mini_internet["trust_anchor"],
        policy=VENDOR_POLICIES["strict-rfc9276"],
    )
    try:
        net.attach("198.51.100.200", resolver)
    except ValueError:
        resolver = net.host_at("198.51.100.200")
    return resolver


class TestForwardingResolver:
    def test_relays_answers(self, mini_internet, upstream):
        net = mini_internet["network"]
        forwarder = ForwardingResolver(net, "198.51.100.201", upstream.ip)
        if net.host_at("198.51.100.201") is None:
            net.attach("198.51.100.201", forwarder)
        stub = StubClient(net, "203.0.113.90")
        answer = stub.ask("198.51.100.201", "www.example.com", RdataType.A)
        assert answer.rcode == Rcode.NOERROR
        assert answer.ad  # upstream validated; forwarder passes AD through

    def test_upstream_down_yields_servfail(self, mini_internet):
        net = mini_internet["network"]
        forwarder = ForwardingResolver(net, "198.51.100.202", "198.51.100.254")
        if net.host_at("198.51.100.202") is None:
            net.attach("198.51.100.202", forwarder)
        stub = StubClient(net, "203.0.113.91")
        answer = stub.ask("198.51.100.202", "www.example.com", RdataType.A)
        assert answer.rcode == Rcode.SERVFAIL

    def test_id_restamped(self, mini_internet, upstream):
        net = mini_internet["network"]
        forwarder = ForwardingResolver(net, "198.51.100.203", upstream.ip)
        if net.host_at("198.51.100.203") is None:
            net.attach("198.51.100.203", forwarder)
        query = make_query("www.example.com", RdataType.A, msg_id=4242)
        raw = net.send("203.0.113.92", "198.51.100.203", query.to_wire())
        assert Message.from_wire(raw).id == 4242


class TestQueryCopier:
    """The broken middlebox behind the paper's 418 SERVFAIL-at-it-1 cases."""

    def test_forwards_successful_answers(self, mini_internet, upstream):
        net = mini_internet["network"]
        copier = QueryCopyingForwarder(net, "198.51.100.204", upstream.ip)
        if net.host_at("198.51.100.204") is None:
            net.attach("198.51.100.204", copier)
        stub = StubClient(net, "203.0.113.93")
        answer = stub.ask("198.51.100.204", "www.example.com", RdataType.A)
        assert answer.rcode == Rcode.NOERROR

    def test_ra_copied_from_query(self, mini_internet, upstream):
        # example.com uses 5 iterations; the strict upstream SERVFAILs its
        # denial, and the copier echoes the query envelope: RA mirrors RD.
        net = mini_internet["network"]
        copier = QueryCopyingForwarder(net, "198.51.100.205", upstream.ip)
        if net.host_at("198.51.100.205") is None:
            net.attach("198.51.100.205", copier)
        query = make_query("nxprobe1.example.com", RdataType.A, want_dnssec=True)
        raw = net.send("203.0.113.94", "198.51.100.205", query.to_wire())
        response = Message.from_wire(raw)
        assert response.rcode == Rcode.SERVFAIL
        # RD was set in the query, so the echoed flags include RD... and no RA.
        assert response.has_flag(Flag.RD)
        assert not response.has_flag(Flag.RA)

    def test_broken_even_for_garbled_upstream(self, mini_internet):
        net = mini_internet["network"]
        copier = QueryCopyingForwarder(net, "198.51.100.206", "198.51.100.253")
        if net.host_at("198.51.100.206") is None:
            net.attach("198.51.100.206", copier)
        query = make_query("anything.example.com", RdataType.A)
        raw = net.send("203.0.113.95", "198.51.100.206", query.to_wire())
        assert Message.from_wire(raw).rcode == Rcode.SERVFAIL
