"""Tests for repro.dns.name: parsing, canonical ordering, structure."""

import pytest

from repro.dns.name import MAX_LABEL_LENGTH, Name, NameError_, root


class TestParsing:
    def test_simple(self):
        name = Name.from_text("www.example.com")
        assert name.label_count == 3
        assert name.labels == (b"www", b"example", b"com")

    def test_trailing_dot_equivalent(self):
        assert Name.from_text("a.b.") == Name.from_text("a.b")

    def test_root(self):
        assert Name.from_text(".") == root
        assert root.is_root()
        assert root.to_text() == "."

    def test_case_preserved_in_text(self):
        assert Name.from_text("WWW.Example.COM").to_text() == "WWW.Example.COM."

    def test_decimal_escape(self):
        name = Name.from_text("a\\046b.example")
        assert name.labels[0] == b"a.b"

    def test_char_escape(self):
        name = Name.from_text("a\\.b.example")
        assert name.labels[0] == b"a.b"
        assert name.label_count == 2

    def test_escape_round_trip(self):
        name = Name.from_text("a\\.b.example")
        assert Name.from_text(name.to_text()) == name

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a..b")

    def test_overlong_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("x" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_overlong_name_rejected(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            Name.from_text(".".join([label] * 5))

    def test_from_labels(self):
        assert Name.from_labels("www", "example", "com") == Name.from_text(
            "www.example.com"
        )

    def test_escape_out_of_range(self):
        with pytest.raises(NameError_):
            Name.from_text("a\\999.example")

    def test_trailing_backslash(self):
        with pytest.raises(NameError_):
            Name.from_text("abc\\")


class TestOrdering:
    def test_case_insensitive_equality(self):
        assert Name.from_text("EXAMPLE.com") == Name.from_text("example.COM")
        assert hash(Name.from_text("EXAMPLE.com")) == hash(Name.from_text("example.com"))

    def test_canonical_order_reversed_labels(self):
        # RFC 4034 §6.1: order by most-significant (rightmost) label first.
        a = Name.from_text("z.a.example")
        b = Name.from_text("a.z.example")
        assert a < b  # a.example < z.example branch decides

    def test_rfc4034_example_order(self):
        # The canonical ordering example from RFC 4034 §6.1.
        names = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
        ]
        parsed = [Name.from_text(n) for n in names]
        assert sorted(parsed) == parsed

    def test_sort_stability_with_case(self):
        assert not Name.from_text("A.example") < Name.from_text("a.example")
        assert not Name.from_text("a.example") < Name.from_text("A.example")


class TestStructure:
    def test_parent(self):
        assert Name.from_text("www.example.com").parent() == Name.from_text(
            "example.com"
        )

    def test_root_parent_raises(self):
        with pytest.raises(NameError_):
            root.parent()

    def test_is_subdomain_of(self):
        child = Name.from_text("a.b.example.com")
        assert child.is_subdomain_of(Name.from_text("example.com"))
        assert child.is_subdomain_of(child)
        assert child.is_subdomain_of(root)
        assert not Name.from_text("example.com").is_subdomain_of(child)
        assert not Name.from_text("xexample.com").is_subdomain_of(
            Name.from_text("example.com")
        )

    def test_is_subdomain_case_insensitive(self):
        assert Name.from_text("WWW.EXAMPLE.COM").is_subdomain_of(
            Name.from_text("example.com")
        )

    def test_split(self):
        prefix, suffix = Name.from_text("a.b.example.com").split(2)
        assert prefix == Name.from_text("a.b")
        assert suffix == Name.from_text("example.com")

    def test_split_too_deep_raises(self):
        with pytest.raises(NameError_):
            Name.from_text("a.com").split(5)

    def test_concatenate(self):
        assert Name.from_text("www").concatenate(
            Name.from_text("example.com")
        ) == Name.from_text("www.example.com")

    def test_prepend(self):
        assert Name.from_text("example.com").prepend("*") == Name.from_text(
            "*.example.com"
        )

    def test_common_ancestor(self):
        a = Name.from_text("x.a.example.com")
        b = Name.from_text("y.b.example.com")
        assert a.common_ancestor(b) == Name.from_text("example.com")
        assert a.common_ancestor(Name.from_text("other.net")) == root

    def test_relativize_labels(self):
        name = Name.from_text("a.b.example.com")
        assert name.relativize_labels(Name.from_text("example.com")) == (b"a", b"b")
        with pytest.raises(NameError_):
            name.relativize_labels(Name.from_text("other.org"))

    def test_immutability(self):
        name = Name.from_text("example.com")
        with pytest.raises(AttributeError):
            name.labels = ()


class TestWire:
    def test_to_wire(self):
        assert Name.from_text("ab.c").to_wire() == b"\x02ab\x01c\x00"
        assert root.to_wire() == b"\x00"

    def test_canonical_wire_lowercases(self):
        assert Name.from_text("AB.C").canonical_wire() == b"\x02ab\x01c\x00"

    def test_wire_preserves_case(self):
        assert Name.from_text("AB.c").to_wire() == b"\x02AB\x01c\x00"
