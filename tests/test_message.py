"""Tests for message encoding/decoding, flags, EDNS, truncation."""

import pytest

from repro.dns.edns import EDE_UNSUPPORTED_NSEC3_ITERATIONS, Edns, ExtendedError
from repro.dns.flags import Flag
from repro.dns.message import Message, Question, make_query, make_response
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rdata import A, NS, SOA, TXT
from repro.dns.rrset import RRset
from repro.dns.types import Opcode, RdataType
from repro.dns.wire import WireError


def round_trip(msg):
    return Message.from_wire(msg.to_wire())


class TestHeader:
    def test_id_round_trip(self):
        msg = Message(0x1234)
        assert round_trip(msg).id == 0x1234

    def test_flags_round_trip(self):
        msg = Message(1)
        for flag in (Flag.QR, Flag.AA, Flag.RD, Flag.RA, Flag.AD, Flag.CD):
            msg.set_flag(flag)
        decoded = round_trip(msg)
        for flag in (Flag.QR, Flag.AA, Flag.RD, Flag.RA, Flag.AD, Flag.CD):
            assert decoded.has_flag(flag)

    def test_clear_flag(self):
        msg = Message(1)
        msg.set_flag(Flag.RD)
        msg.set_flag(Flag.RD, False)
        assert not msg.has_flag(Flag.RD)

    def test_rcode_round_trip(self):
        msg = Message(1)
        msg.rcode = Rcode.NXDOMAIN
        assert round_trip(msg).rcode == Rcode.NXDOMAIN

    def test_opcode_round_trip(self):
        msg = Message(1)
        msg.opcode = Opcode.NOTIFY
        assert round_trip(msg).opcode == Opcode.NOTIFY

    def test_short_message_rejected(self):
        with pytest.raises(WireError):
            Message.from_wire(b"\x00\x01\x02")


class TestSections:
    def test_question_round_trip(self):
        msg = make_query("www.example.com", RdataType.AAAA)
        decoded = round_trip(msg)
        assert decoded.question[0] == Question("www.example.com", RdataType.AAAA)

    def test_rr_counts_are_per_record(self):
        # Regression: counts must be per-RR, not per-RRset.
        msg = Message(7)
        msg.answer.append(
            RRset("example.com", RdataType.A, 60, [A("1.1.1.1"), A("2.2.2.2")])
        )
        msg.answer.append(
            RRset("example.com", RdataType.TXT, 60, [TXT("x")])
        )
        wire = msg.to_wire()
        # ANCOUNT is at offset 6.
        assert wire[6] == 0 and wire[7] == 3
        decoded = Message.from_wire(wire)
        assert len(decoded.answer) == 2
        assert len(decoded.answer[0]) == 2

    def test_sections_preserved(self):
        msg = Message(9)
        msg.answer.append(RRset("a.example", RdataType.A, 30, [A("1.2.3.4")]))
        msg.authority.append(
            RRset("example", RdataType.SOA, 30, [SOA("n.example", "h.example", 1, 2, 3, 4, 5)])
        )
        msg.additional.append(RRset("ns.example", RdataType.A, 30, [A("9.9.9.9")]))
        decoded = round_trip(msg)
        assert len(decoded.answer) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1

    def test_find_rrset(self):
        msg = Message(1)
        rrset = RRset("x.example", RdataType.A, 30, [A("1.2.3.4")])
        msg.answer.append(rrset)
        assert msg.find_rrset(msg.answer, "X.EXAMPLE", RdataType.A) is rrset
        assert msg.find_rrset(msg.answer, "x.example", RdataType.AAAA) is None

    def test_add_rrset_merges(self):
        msg = Message(1)
        msg.add_rrset(msg.answer, RRset("x.example", RdataType.A, 30, [A("1.1.1.1")]))
        msg.add_rrset(msg.answer, RRset("x.example", RdataType.A, 30, [A("2.2.2.2")]))
        assert len(msg.answer) == 1
        assert len(msg.answer[0]) == 2

    def test_decode_merges_same_rrset(self):
        msg = Message(2)
        msg.answer.append(
            RRset("m.example", RdataType.A, 30, [A("1.1.1.1"), A("2.2.2.2")])
        )
        decoded = round_trip(msg)
        assert len(decoded.answer) == 1
        assert {r.to_text() for r in decoded.answer[0]} == {"1.1.1.1", "2.2.2.2"}


class TestEdns:
    def test_do_bit(self):
        msg = make_query("example.com", RdataType.A, want_dnssec=True)
        decoded = round_trip(msg)
        assert decoded.dnssec_ok
        assert decoded.edns.payload_size == 1232

    def test_no_edns(self):
        msg = Message(1)
        msg.question.append(Question("example.com", RdataType.A))
        decoded = round_trip(msg)
        assert decoded.edns is None
        assert not decoded.dnssec_ok

    def test_extended_error_round_trip(self):
        msg = make_query("example.com", RdataType.A, want_dnssec=True)
        msg.set_flag(Flag.QR)
        msg.edns.add_extended_error(EDE_UNSUPPORTED_NSEC3_ITERATIONS, "too many")
        decoded = round_trip(msg)
        errors = decoded.extended_errors()
        assert len(errors) == 1
        assert errors[0].info_code == EDE_UNSUPPORTED_NSEC3_ITERATIONS
        assert errors[0].extra_text == "too many"

    def test_extended_rcode_high_bits(self):
        msg = Message(1)
        msg.use_edns()
        msg.rcode = Rcode.BADVERS  # 16: needs the OPT high bits
        decoded = round_trip(msg)
        assert int(decoded.rcode) == int(Rcode.BADVERS)

    def test_ede_option_parsing_errors(self):
        from repro.dns.rdata.opt import EdnsOption

        with pytest.raises(ValueError):
            ExtendedError.from_option(EdnsOption(99, b"\x00\x1b"))
        with pytest.raises(ValueError):
            ExtendedError.from_option(EdnsOption(15, b"\x00"))


class TestTruncation:
    def test_truncated_when_too_large(self):
        msg = Message(5)
        msg.set_flag(Flag.QR)
        msg.question.append(Question("example.com", RdataType.TXT))
        for index in range(50):
            msg.add_rrset(
                msg.answer,
                RRset("example.com", RdataType.TXT, 60, [TXT(f"record {index} " + "x" * 60)]),
            )
        wire = msg.to_wire(max_size=512)
        decoded = Message.from_wire(wire)
        assert decoded.has_flag(Flag.TC)
        assert not decoded.answer

    def test_not_truncated_when_fits(self):
        msg = make_query("example.com", RdataType.A)
        decoded = Message.from_wire(msg.to_wire(max_size=512))
        assert not decoded.has_flag(Flag.TC)


class TestFactories:
    def test_make_response_mirrors_query(self):
        query = make_query("x.example", RdataType.A, want_dnssec=True)
        response = make_response(query, recursion_available=True)
        assert response.id == query.id
        assert response.is_response
        assert response.has_flag(Flag.RD)
        assert response.has_flag(Flag.RA)
        assert response.question == query.question
        assert response.edns is not None and response.edns.dnssec_ok

    def test_make_query_rd_flag(self):
        assert make_query("e.com", 1).has_flag(Flag.RD)
        assert not make_query("e.com", 1, recursion_desired=False).has_flag(Flag.RD)
