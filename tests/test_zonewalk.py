"""Tests for zone-walking and NSEC3 dictionary-attack tooling."""

import random

import pytest

from repro.dns.name import Name
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.resolver.validating import ValidatingResolver
from repro.scanner.zonewalk import (
    DEFAULT_DICTIONARY,
    Nsec3Walker,
    walk_nsec_zone,
)
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

SECRETS = ("www", "mail", "api", "hidden-gem")


@pytest.fixture(scope="module")
def walk_setup(mini_internet):
    """An NSEC zone and an NSEC3 zone hosted beside the mini internet."""
    net = mini_internet["network"]
    rng = random.Random(21)

    def make_zone(origin, nsec3):
        builder = (
            ZoneBuilder(origin)
            .soa(f"ns1.{origin}", f"h.{origin}")
            .ns(f"ns1.{origin}.")
            .a("ns1", "192.0.2.201")
        )
        for label in SECRETS:
            builder.a(label, "198.18.7.7")
        zone = builder.build()
        policy = SigningPolicy(
            nsec3=Nsec3Params(iterations=3, salt=b"\x77") if nsec3 else None
        )
        return sign_zone(zone, policy, rng=rng)

    nsec_zone = make_zone("walkme.com", nsec3=False)
    nsec3_zone = make_zone("hashme.com", nsec3=True)
    server = AuthoritativeServer("walk-auth", net)
    server.add_zone(nsec_zone)
    server.add_zone(nsec3_zone)
    net.attach("192.0.2.201", server)

    # Register the delegations in .com and re-sign it with its own keys.
    from repro.crypto.keys import make_ds
    from repro.dns.rdata import A, NS
    from repro.dns.types import RdataType
    from repro.zone.signing import SigningPolicy as SP

    com = mini_internet["com"]
    for zone in (nsec_zone, nsec3_zone):
        origin = zone.origin
        com.add(origin, RdataType.NS, 3600, NS(f"ns1.{origin.to_text()}"))
        com.add(origin, RdataType.DS, 3600, make_ds(origin, zone.keys[0].dnskey))
        com.add(f"ns1.{origin.to_text()}", RdataType.A, 3600, A("192.0.2.201"))
    sign_zone(
        com,
        SP(nsec3=Nsec3Params(iterations=0, opt_out=True)),
        ksk=com.keys[0],
        zsk=com.keys[1],
        rng=rng,
    )

    resolver = ValidatingResolver(
        net, "198.51.100.210", mini_internet["root_addresses"],
        mini_internet["trust_anchor"], policy=VENDOR_POLICIES["legacy"],
    )
    net.attach("198.51.100.210", resolver)
    client = StubClient(net, "203.0.113.210")
    return {"client": client, "resolver_ip": resolver.ip}


class TestNsecWalk:
    def test_enumerates_all_names(self, walk_setup):
        result = walk_nsec_zone(
            walk_setup["client"], walk_setup["resolver_ip"], "walkme.com"
        )
        discovered = {name.to_text() for name in result.names}
        for label in SECRETS:
            assert f"{label}.walkme.com." in discovered
        assert result.complete

    def test_query_budget_respected(self, walk_setup):
        result = walk_nsec_zone(
            walk_setup["client"], walk_setup["resolver_ip"], "walkme.com",
            max_queries=2,
        )
        assert result.queries <= 2
        assert not result.complete


class TestNsec3Walk:
    def test_collects_hashes(self, walk_setup):
        walker = Nsec3Walker(
            walk_setup["client"], walk_setup["resolver_ip"], "hashme.com"
        )
        collected = walker.collect([f"probe-{i}" for i in range(12)])
        assert collected >= 3
        assert walker.params is not None
        assert walker.params[1] == 3  # iterations

    def test_dictionary_attack_recovers_guessable(self, walk_setup):
        walker = Nsec3Walker(
            walk_setup["client"], walk_setup["resolver_ip"], "hashme.com"
        )
        walker.collect([f"crack-{i}" for i in range(25)])
        result = walker.crack(DEFAULT_DICTIONARY + ("hidden-gem",))
        assert "www" in result.recovered
        assert "hidden-gem" in result.recovered
        assert result.recovery_rate > 0.0

    def test_unguessable_stays_hidden(self, walk_setup):
        walker = Nsec3Walker(
            walk_setup["client"], walk_setup["resolver_ip"], "hashme.com"
        )
        walker.collect([f"x-{i}" for i in range(25)])
        result = walker.crack(("nothere", "alsonot"))
        assert "hidden-gem" not in result.recovered
        assert not set(result.recovered) & {"nothere", "alsonot"}

    def test_cost_scales_with_iterations(self, walk_setup):
        walker = Nsec3Walker(
            walk_setup["client"], walk_setup["resolver_ip"], "hashme.com"
        )
        walker.collect(["one-probe"])
        result = walker.crack(("a", "b", "c"))
        # 3 words + apex, at iterations+1 = 4 hashes each.
        assert result.hash_operations == 4 * 4

    def test_crack_before_collect_raises(self, walk_setup):
        walker = Nsec3Walker(
            walk_setup["client"], walk_setup["resolver_ip"], "hashme.com"
        )
        with pytest.raises(ValueError):
            walker.crack()
