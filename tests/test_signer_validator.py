"""Tests for RRSIG generation and validation (RFC 4034/4035 semantics)."""

import random

import pytest

from repro.crypto.keys import ALG_ECDSAP256SHA256, generate_keypair, make_ds
from repro.dns.name import Name
from repro.dns.rdata import A, TXT
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec.signer import (
    SIMULATION_NOW,
    canonical_rrset_wire,
    make_rrsig_rrset,
    rrsig_signed_data,
    sign_rrset,
)
from repro.dnssec.validator import (
    SecurityStatus,
    validate_dnskey_with_ds,
    validate_rrset,
)


@pytest.fixture(scope="module")
def zsk():
    return generate_keypair(ALG_ECDSAP256SHA256, rng=random.Random(5))


@pytest.fixture(scope="module")
def ksk():
    return generate_keypair(ALG_ECDSAP256SHA256, ksk=True, rng=random.Random(6))


@pytest.fixture(scope="module")
def dnskeys(zsk, ksk):
    return RRset("example.com", RdataType.DNSKEY, 3600, [zsk.dnskey, ksk.dnskey])


def make_a_rrset(name="www.example.com", ttl=300):
    return RRset(name, RdataType.A, ttl, [A("192.0.2.1"), A("192.0.2.2")])


class TestCanonicalWire:
    def test_owner_lowercased(self):
        upper = canonical_rrset_wire(make_a_rrset("WWW.EXAMPLE.COM"))
        lower = canonical_rrset_wire(make_a_rrset("www.example.com"))
        assert upper == lower

    def test_rdata_sorted(self):
        forward = RRset("x.example", RdataType.A, 60, [A("1.1.1.1"), A("9.9.9.9")])
        backward = RRset("x.example", RdataType.A, 60, [A("9.9.9.9"), A("1.1.1.1")])
        assert canonical_rrset_wire(forward) == canonical_rrset_wire(backward)

    def test_original_ttl_override(self):
        assert canonical_rrset_wire(make_a_rrset(), 999) != canonical_rrset_wire(
            make_a_rrset(), 300
        )


class TestSignValidate:
    def test_secure(self, zsk, dnskeys):
        rrset = make_a_rrset()
        rrsig = sign_rrset(rrset, zsk, "example.com")
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.SECURE

    def test_ttl_does_not_matter_for_validation(self, zsk, dnskeys):
        # Caches decrement TTLs; the original TTL in the RRSIG rules.
        rrset = make_a_rrset(ttl=300)
        rrsig = sign_rrset(rrset, zsk, "example.com")
        aged = rrset.copy(ttl=17)
        result = validate_rrset(aged, make_rrsig_rrset(aged, [rrsig]), dnskeys)
        assert result.secure

    def test_tampered_rdata_is_bogus(self, zsk, dnskeys):
        rrset = make_a_rrset()
        rrsig = sign_rrset(rrset, zsk, "example.com")
        tampered = RRset(rrset.name, RdataType.A, 300, [A("6.6.6.6")])
        result = validate_rrset(tampered, make_rrsig_rrset(tampered, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.BOGUS

    def test_expired_signature_is_bogus(self, zsk, dnskeys):
        rrset = make_a_rrset()
        rrsig = sign_rrset(
            rrset,
            zsk,
            "example.com",
            inception=SIMULATION_NOW - 2000,
            expiration=SIMULATION_NOW - 1000,
        )
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.BOGUS
        assert "validity window" in result.reason

    def test_not_yet_valid_is_bogus(self, zsk, dnskeys):
        rrset = make_a_rrset()
        rrsig = sign_rrset(
            rrset,
            zsk,
            "example.com",
            inception=SIMULATION_NOW + 1000,
            expiration=SIMULATION_NOW + 2000,
        )
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.BOGUS

    def test_no_rrsig_is_indeterminate(self, dnskeys):
        rrset = make_a_rrset()
        assert (
            validate_rrset(rrset, None, dnskeys).status
            is SecurityStatus.INDETERMINATE
        )

    def test_wrong_type_covered_is_indeterminate(self, zsk, dnskeys):
        rrset = make_a_rrset()
        other = RRset(rrset.name, RdataType.TXT, 300, [TXT("x")])
        rrsig = sign_rrset(other, zsk, "example.com")
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.INDETERMINATE

    def test_signer_not_ancestor_is_bogus(self, zsk, dnskeys):
        rrset = make_a_rrset("www.other.net")
        rrsig = sign_rrset(rrset, zsk, "example.com")
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [rrsig]), dnskeys)
        assert result.status is SecurityStatus.BOGUS

    def test_wildcard_expansion_validates(self, zsk, dnskeys):
        wildcard = RRset("*.example.com", RdataType.A, 300, [A("192.0.2.9")])
        rrsig = sign_rrset(wildcard, zsk, "example.com")
        assert rrsig.labels == 2  # wildcard label not counted
        expanded = RRset("anything.example.com", RdataType.A, 300, [A("192.0.2.9")])
        result = validate_rrset(expanded, make_rrsig_rrset(expanded, [rrsig]), dnskeys)
        assert result.secure

    def test_deep_wildcard_expansion_validates(self, zsk, dnskeys):
        wildcard = RRset("*.example.com", RdataType.A, 300, [A("192.0.2.9")])
        rrsig = sign_rrset(wildcard, zsk, "example.com")
        expanded = RRset("a.b.c.example.com", RdataType.A, 300, [A("192.0.2.9")])
        result = validate_rrset(expanded, make_rrsig_rrset(expanded, [rrsig]), dnskeys)
        assert result.secure

    def test_labels_field_exceeding_owner_is_bogus(self, zsk, dnskeys):
        rrset = make_a_rrset("www.example.com")
        rrsig = sign_rrset(rrset, zsk, "example.com")
        from repro.dns.rdata.dnssec import RRSIG

        inflated = RRSIG(
            rrsig.type_covered, rrsig.algorithm, 9, rrsig.original_ttl,
            rrsig.expiration, rrsig.inception, rrsig.key_tag,
            rrsig.signer, rrsig.signature,
        )
        result = validate_rrset(rrset, make_rrsig_rrset(rrset, [inflated]), dnskeys)
        assert result.status is SecurityStatus.BOGUS


class TestDnskeyDs:
    def test_chain_anchors(self, ksk, zsk, dnskeys):
        rrsig = sign_rrset(dnskeys, ksk, "example.com")
        ds = RRset("example.com", RdataType.DS, 3600, [make_ds("example.com", ksk.dnskey)])
        result = validate_dnskey_with_ds(
            "example.com", dnskeys, make_rrsig_rrset(dnskeys, [rrsig]), ds
        )
        assert result.secure

    def test_zsk_signed_dnskey_not_anchored_by_ksk_ds(self, ksk, zsk, dnskeys):
        # DNSKEY RRset signed only by the ZSK while DS points at the KSK.
        rrsig = sign_rrset(dnskeys, zsk, "example.com")
        ds = RRset("example.com", RdataType.DS, 3600, [make_ds("example.com", ksk.dnskey)])
        result = validate_dnskey_with_ds(
            "example.com", dnskeys, make_rrsig_rrset(dnskeys, [rrsig]), ds
        )
        assert result.status is SecurityStatus.BOGUS

    def test_ds_for_unknown_key(self, ksk, zsk, dnskeys):
        stranger = generate_keypair(ALG_ECDSAP256SHA256, ksk=True, rng=random.Random(77))
        rrsig = sign_rrset(dnskeys, ksk, "example.com")
        ds = RRset(
            "example.com", RdataType.DS, 3600, [make_ds("example.com", stranger.dnskey)]
        )
        result = validate_dnskey_with_ds(
            "example.com", dnskeys, make_rrsig_rrset(dnskeys, [rrsig]), ds
        )
        assert result.status is SecurityStatus.BOGUS

    def test_no_ds_is_indeterminate(self, ksk, dnskeys):
        rrsig = sign_rrset(dnskeys, ksk, "example.com")
        result = validate_dnskey_with_ds(
            "example.com", dnskeys, make_rrsig_rrset(dnskeys, [rrsig]), None
        )
        assert result.status is SecurityStatus.INDETERMINATE


class TestSignedData:
    def test_signed_data_reconstruction_for_wildcard(self, zsk):
        wildcard = RRset("*.example.com", RdataType.A, 300, [A("192.0.2.9")])
        rrsig = sign_rrset(wildcard, zsk, "example.com")
        expanded = RRset("foo.example.com", RdataType.A, 300, [A("192.0.2.9")])
        assert rrsig_signed_data(rrsig, wildcard) == rrsig_signed_data(rrsig, expanded)
