"""Property-based tests on NSEC3 chain and zone-lookup invariants."""

import random
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dns.name import Name
from repro.dnssec.denial import hash_covers
from repro.dnssec.nsec3hash import nsec3_hash
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params, build_nsec3_chain
from repro.zone.zone import LookupStatus

label_st = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10)
labels_st = st.lists(label_st, min_size=1, max_size=8, unique=True)


def build_zone(host_labels):
    builder = (
        ZoneBuilder("prop.test")
        .soa("ns.prop.test", "h.prop.test")
        .ns("ns.prop.test.")
        .a("ns", "192.0.2.1")
    )
    for label in host_labels:
        builder.a(label, "198.18.1.1")
    return builder.build()


class TestChainInvariants:
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st, st.integers(min_value=0, max_value=10), st.binary(max_size=4))
    def test_every_name_matched_or_covered(self, host_labels, iterations, salt):
        """Any query name either matches an entry or is covered by exactly
        the entry find_covering returns."""
        zone = build_zone(host_labels)
        params = Nsec3Params(iterations=iterations, salt=salt)
        chain = build_nsec3_chain(zone, params)
        probe = Name.from_text("almost-surely-absent.prop.test")
        digest = nsec3_hash(probe.canonical_wire(), salt, iterations)
        matched = chain.find_matching(digest)
        if matched is None:
            covering = chain.find_covering(digest)
            assert covering is not None
            if len(chain) > 1:
                assert hash_covers(
                    covering.owner_hash, covering.rdata.next_hash, digest
                )

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st)
    def test_chain_partitions_hash_space(self, host_labels):
        """Each entry's span ends where the next begins: no gaps/overlap."""
        zone = build_zone(host_labels)
        chain = build_nsec3_chain(zone, Nsec3Params())
        entries = chain.entries
        for index, entry in enumerate(entries):
            expected_next = entries[(index + 1) % len(entries)].owner_hash
            assert entry.rdata.next_hash == expected_next

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st, labels_st)
    def test_chain_source_names_exactly_authoritative(self, hosts_a, hosts_b):
        zone = build_zone(sorted(set(hosts_a + hosts_b)))
        chain = build_nsec3_chain(zone, Nsec3Params())
        sources = {entry.source_name for entry in chain}
        expected = set(zone.authoritative_names()) | set(zone.empty_nonterminals())
        expected.add(zone.origin)
        assert sources == expected


class TestLookupInvariants:
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st, label_st)
    def test_lookup_total_and_consistent(self, host_labels, probe_label):
        """Every lookup returns exactly one coherent status."""
        zone = build_zone(host_labels)
        qname = Name.from_text(f"{probe_label}.prop.test")
        result = zone.lookup(qname, 1)
        if probe_label in host_labels or probe_label == "ns":
            assert result.status is LookupStatus.ANSWER
            assert result.rrset is not None
        else:
            assert result.status is LookupStatus.NXDOMAIN
            assert result.rrset is None

    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st)
    def test_existing_names_never_nxdomain(self, host_labels):
        zone = build_zone(host_labels)
        for name in zone.names():
            result = zone.lookup(name, 16)  # TXT: nothing has TXT
            assert result.status in (
                LookupStatus.NODATA,
                LookupStatus.ANSWER,
                LookupStatus.DELEGATION,
            )

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(labels_st, st.integers(min_value=0, max_value=6), st.binary(max_size=3))
    def test_server_proofs_always_verify(self, host_labels, iterations, salt):
        """Whatever zone shape the server signs, its NXDOMAIN proofs verify."""
        from repro.dns.message import make_query
        from repro.dns.rcode import Rcode
        from repro.dnssec.denial import collect_proof_records, verify_nxdomain
        from repro.server.authoritative import AuthoritativeServer
        from repro.zone.signing import SigningPolicy, sign_zone

        zone = build_zone(host_labels)
        sign_zone(
            zone,
            SigningPolicy(nsec3=Nsec3Params(iterations=iterations, salt=salt)),
            rng=random.Random(1),
        )
        server = AuthoritativeServer("prop-auth")
        server.add_zone(zone)
        response = server.handle_query(
            make_query("no-such-name-zz.prop.test", 1, want_dnssec=True)
        )
        assert response.rcode == Rcode.NXDOMAIN
        records, params = collect_proof_records(response.authority, "prop.test")
        proof = verify_nxdomain("no-such-name-zz.prop.test", "prop.test", records, params)
        assert proof.valid, proof.reason
