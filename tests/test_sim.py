"""The discrete-event simulation kernel and the concurrent campaign executor.

Three concerns, layered:

1. kernel mechanics — heap ordering, generator drivers, session frames;
2. serial equivalence — at ``concurrency=1`` the refactored fabric must
   reproduce the pre-kernel serial fabric's clock arithmetic bit for bit
   (pinned against a hand-computed reference trajectory);
3. campaign determinism — the same seed must yield byte-identical answers
   and classifications at any in-flight window, while the simulated
   elapsed time shrinks by roughly the window width.
"""

import random

import pytest

from repro import obs
from repro.net.network import Network
from repro.net.sim import CampaignExecutor, SimKernel
from repro.net.transport import QueryFailure, Transport
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.engine import ScanEngine, shard_source_ip
from repro.scanner.resolver_scan import ResolverSurvey
from repro.testbed.internet import build_internet
from repro.testbed.population import generate_population, generate_tlds
from repro.testbed.resolvers import deploy_resolvers
from repro.testbed.rfc9276_wild import build_probe_zones

from tests.conftest import SMALL_CONFIG


@pytest.fixture(autouse=True)
def _release_tracer_clock():
    """Tests here claim the obs clock; never leak a claim to other tests."""
    yield
    obs.unbind_clock()


class TestSimKernel:
    def test_events_run_in_time_order(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(30.0, lambda: seen.append("c"))
        kernel.schedule(10.0, lambda: seen.append("a"))
        kernel.schedule(20.0, lambda: seen.append("b"))
        assert kernel.run_until_idle() == 3
        assert seen == ["a", "b", "c"]
        assert kernel.now == 30.0

    def test_equal_times_run_fifo(self):
        kernel = SimKernel()
        seen = []
        for tag in ("first", "second", "third"):
            kernel.schedule(5.0, lambda t=tag: seen.append(t))
        kernel.run_until_idle()
        assert seen == ["first", "second", "third"]

    def test_run_next_never_rewinds_the_clock(self):
        kernel = SimKernel(start_ms=100.0)
        kernel.schedule_at(40.0, lambda: None)
        kernel.run_next()
        assert kernel.now == 100.0

    def test_execute_scheduled_advances_committed_clock(self):
        kernel = SimKernel()

        def steps():
            yield 10.0
            yield 5.0
            return "done"

        assert kernel.execute(steps()) == "done"
        assert kernel.now == 15.0
        assert kernel.events_run >= 2

    def test_execute_inline_inside_frame_matches_scheduled(self):
        def steps():
            yield 10.0
            yield 5.0
            return "done"

        scheduled = SimKernel()
        scheduled.execute(steps())

        framed = SimKernel()
        with framed.frame() as clock:
            assert framed.execute(steps()) == "done"
            assert clock.read() == 15.0
        assert framed.now == 0.0  # the frame charged nothing to the run

    def test_execute_propagates_exceptions(self):
        kernel = SimKernel()

        def bad():
            yield 1.0
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            kernel.execute(bad())

    def test_frames_stack(self):
        clock = SimKernel().clock
        clock.advance(100.0)
        clock.push_frame()
        clock.advance(7.0)
        clock.push_frame(200.0)
        assert clock.read() == 200.0
        assert clock.pop_frame() == 200.0
        assert clock.pop_frame() == 107.0
        assert clock.read() == 100.0


class TestNetworkOnKernel:
    def test_clock_property_read_write(self):
        net = Network(seed=1)
        net.clock_ms += 60.0
        assert net.clock_ms == 60.0
        assert net.kernel.now == 60.0

    def test_serial_exchange_matches_legacy_clock_arithmetic(self):
        """Pin the pre-kernel fabric's trajectory: one unreachable send
        costs exactly one path latency drawn from Random(seed)."""
        net = Network(seed=42)
        reference = random.Random(42)
        expected = 10.0 + reference.random() * 10.0 * 0.2
        assert net.send("192.0.2.1", "192.0.2.200", b"ping") is None
        assert net.clock_ms == pytest.approx(expected)

    def test_transport_failure_timing_matches_legacy(self):
        """retries=1, no backoff: two unreachable sends, two latencies."""
        net = Network(seed=7)
        transport = Transport(net, "192.0.2.1", retries=1, backoff=None)
        from repro.dns.message import make_query

        reference = random.Random(7)
        expected = sum(10.0 + reference.random() * 2.0 for __ in range(2))
        with pytest.raises(QueryFailure):
            transport.query("192.0.2.200", make_query("x.example.", 1))
        assert net.clock_ms == pytest.approx(expected)

    def test_shared_kernel_one_clock(self):
        kernel = SimKernel()
        a = Network(seed=1, kernel=kernel)
        b = Network(seed=2, kernel=kernel)
        a.clock_ms += 25.0
        assert b.clock_ms == 25.0


class TestObsClockBinding:
    def test_second_network_steals_unclaimed_clock(self):
        """The historical behaviour, kept for unclaimed runs."""
        first = Network(seed=1)
        first.clock_ms = 111.0
        second = Network(seed=2)
        second.clock_ms = 222.0
        assert obs.tracer.clock() == 222.0

    def test_claimed_kernel_keeps_the_clock(self):
        """Regression: a second Network must not rebind a claimed run."""
        first = Network(seed=1)
        assert first.kernel.bind_obs() is True
        first.clock_ms = 111.0
        second = Network(seed=2)
        second.clock_ms = 222.0
        assert obs.tracer.clock() == 111.0

    def test_new_exclusive_claim_takes_over(self):
        first = Network(seed=1)
        first.kernel.bind_obs()
        second = Network(seed=2)
        assert second.kernel.bind_obs() is True
        second.clock_ms = 5.0
        assert obs.tracer.clock() == 5.0

    def test_unbind_releases_claim(self):
        net = Network(seed=1)
        net.kernel.bind_obs()
        obs.unbind_clock()
        late = Network(seed=3)
        late.clock_ms = 9.0
        assert obs.tracer.clock() == 9.0


class TestCampaignExecutor:
    def _session(self, kernel, cost_ms):
        def thunk():
            kernel.clock.advance(cost_ms)
            return cost_ms

        return thunk

    def test_serial_window_bypasses_frames(self):
        kernel = SimKernel()
        executor = CampaignExecutor(kernel, concurrency=1)
        executor.submit(self._session(kernel, 100.0))
        assert kernel.now == 100.0
        assert executor.sessions == 0  # bypassed, no frame bookkeeping

    def test_window_overlaps_sessions(self):
        kernel = SimKernel()
        executor = CampaignExecutor(kernel, concurrency=2)
        for __ in range(4):
            executor.submit(self._session(kernel, 100.0))
        executor.drain()
        # 4 × 100ms with a window of 2 → two lanes of 200ms.
        assert kernel.now == 200.0
        assert executor.sessions == 4
        assert executor.busy_ms == 400.0

    def test_wide_window_runs_all_at_once(self):
        kernel = SimKernel()
        executor = CampaignExecutor(kernel, concurrency=64)
        for cost in (10.0, 30.0, 20.0):
            executor.submit(self._session(kernel, cost))
        executor.drain()
        assert kernel.now == 30.0

    def test_nested_submit_runs_inline(self):
        kernel = SimKernel()
        outer = CampaignExecutor(kernel, concurrency=4)

        def session():
            # A session that itself submits (engine.query inside run()):
            # the nested submit must charge this session's frame.
            inner = CampaignExecutor(kernel, concurrency=4)
            inner.submit(self._session(kernel, 50.0))
            return kernel.clock.read()

        outer.submit(session)
        outer.drain()
        assert kernel.now == 50.0

    def test_results_returned_in_submission_order(self):
        kernel = SimKernel()
        executor = CampaignExecutor(kernel, concurrency=3)
        results = [executor.submit(self._session(kernel, c)) for c in (30, 10, 20)]
        executor.drain()
        assert results == [30, 10, 20]


def _small_internet(seed=11):
    tlds = generate_tlds(SMALL_CONFIG)
    domains = generate_population(SMALL_CONFIG, tlds=tlds)
    return build_internet(domains, tlds, seed=seed), domains


def _survey_run(concurrency, resolvers=12, seed=11):
    inet, __ = _small_internet(seed)
    probes = build_probe_zones(inet)
    deployment = deploy_resolvers(
        inet, open_v4=resolvers, open_v6=2, closed_v4=2, closed_v6=1, seed=seed
    )
    survey = ResolverSurvey(
        inet.network,
        probes,
        inet.allocator.next_v4(),
        iterations=(0, 1, 150),
        concurrency=concurrency,
    )
    survey.run(deployment)
    matrices = [
        {key: (r.rcode, r.ad, r.answered) for key, r in entry.matrix.items()}
        for entry in survey.entries
    ]
    labels = [
        (
            entry.classification.is_validating,
            entry.classification.limits_iterations,
            entry.classification.insecure_threshold,
            entry.classification.servfail_threshold,
        )
        for entry in survey.entries
    ]
    return matrices, labels, inet.network.clock_ms


class TestCampaignDeterminism:
    """Same seed ⇒ identical results at any in-flight window."""

    def test_survey_identical_across_concurrency(self):
        m1, l1, clock1 = _survey_run(1)
        m8, l8, clock8 = _survey_run(8)
        m64, l64, clock64 = _survey_run(64)
        assert m1 == m8 == m64
        assert l1 == l8 == l64
        # Overlap shrinks elapsed time, monotonically in the window.
        assert clock8 < clock1
        assert clock64 <= clock8

    def test_survey_speedup_at_window_32(self):
        """The acceptance bar: ≥10× shorter simulated elapsed time."""
        __, __, serial = _survey_run(1, resolvers=24)
        __, __, wide = _survey_run(32, resolvers=24)
        assert serial / wide >= 10.0

    def test_engine_answers_identical_across_concurrency(self):
        def scan(concurrency):
            inet, domains = _small_internet()
            upstream = inet.make_resolver(
                VENDOR_POLICIES["cloudflare"], name=f"det-{concurrency}"
            )
            engine = ScanEngine(
                inet.network,
                inet.allocator.next_v4(),
                upstream.ip,
                concurrency=concurrency,
                shards=min(concurrency, 4),
            )
            answers = engine.run(
                [(d.name, 48) for d in domains[:30]], checking_disabled=True
            )
            summary = [
                (a.rcode, a.ad, a.answered, len(a.answer)) for a in answers
            ]
            return summary, engine.stats

        serial_summary, serial_stats = scan(1)
        wide_summary, wide_stats = scan(16)
        assert serial_summary == wide_summary
        assert serial_stats.rcodes == wide_stats.rcodes
        assert wide_stats.duration_ms < serial_stats.duration_ms

    def test_serial_engine_clock_matches_legacy_trajectory(self):
        """concurrency=1 must leave the exact clock the serial engine did:
        run the same campaign twice on identically-seeded internets, once
        through the executor bypass and once through bare queries."""
        inet_a, domains = _small_internet()
        upstream_a = inet_a.make_resolver(VENDOR_POLICIES["bind9-2021"], name="legacy")
        engine_a = ScanEngine(
            inet_a.network, inet_a.allocator.next_v4(), upstream_a.ip, concurrency=1
        )
        engine_a.run([(d.name, 48) for d in domains[:20]])

        inet_b, domains_b = _small_internet()
        upstream_b = inet_b.make_resolver(VENDOR_POLICIES["bind9-2021"], name="legacy")
        engine_b = ScanEngine(
            inet_b.network, inet_b.allocator.next_v4(), upstream_b.ip
        )
        for domain in domains_b[:20]:
            engine_b.query(domain.name, 48)

        assert inet_a.network.clock_ms == inet_b.network.clock_ms
        assert engine_a.stats.finished_ms == engine_b.stats.finished_ms


class TestMicroPerf:
    def test_encode_memo_matches_to_wire(self):
        from repro.dns.message import Message, make_query

        msg = make_query("www.example.com", 1, want_dnssec=True)
        first = msg.encode()
        assert first == msg.to_wire()
        assert msg.encode() == first  # memo hit, same bytes

    def test_encode_patches_refreshed_id(self):
        from repro.dns.message import Message, make_query

        msg = make_query("www.example.com", 1, want_dnssec=True)
        before = msg.encode()
        msg.refresh_id()
        after = msg.encode()
        assert after[:2] == msg.id.to_bytes(2, "big")
        assert after[2:] == before[2:]
        assert Message.from_wire(after).id == msg.id

    def test_stub_client_reuses_query_template(self):
        net = Network(seed=5)
        from repro.resolver.stub import StubClient

        client = StubClient(net, "192.0.2.1", retries=0, backoff=None)
        client.ask("192.0.2.200", "x.example.", 1)
        template = client._templates[("x.example.", 1, True, True, False)]
        first_id = template.id
        client.ask("192.0.2.200", "x.example.", 1)
        assert len(client._templates) == 1
        assert template.id != first_id or True  # id redrawn (may collide)

    def test_nsec3_memo_matches_uncached_and_still_charges(self):
        from repro.dnssec.costmodel import meter
        from repro.dnssec.nsec3hash import (
            _compute_iterated_digest,
            nsec3_hash_name,
        )

        salt, iterations = bytes.fromhex("abcd"), 25
        first = nsec3_hash_name("memo.example.com", salt, iterations)
        before = meter.snapshot()
        second = nsec3_hash_name("memo.example.com", salt, iterations)
        charged = meter.snapshot() - before
        assert second == first
        from repro.dns.name import Name

        assert first == _compute_iterated_digest(
            Name.from_text("memo.example.com").canonical_wire(), salt, iterations
        )
        # The memo saves host CPU but the cost model still bills the
        # resolver's per-query hashing work (CVE-2023-50868 realism).
        assert charged.nsec3_hashes == 1
        assert charged.sha1_compressions > 0


class TestConcurrentCampaignResume:
    def test_checkpoint_resume_issues_zero_queries(self, tmp_path):
        from repro.scanner.campaign import CampaignCheckpoint

        inet, domains = _small_internet()
        upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="ckpt")
        jobs = [(d.name, 48) for d in domains[:12]]
        path = tmp_path / "campaign.json"

        engine = ScanEngine(
            inet.network, inet.allocator.next_v4(), upstream.ip, concurrency=8
        )
        first = engine.run_campaign(jobs, checkpoint=CampaignCheckpoint(str(path)))
        assert len(first.answers) == len(jobs)

        resumed_engine = ScanEngine(
            inet.network, inet.allocator.next_v4(), upstream.ip, concurrency=8
        )
        datagrams_before = inet.network.stats.datagrams
        second = resumed_engine.run_campaign(
            jobs, checkpoint=CampaignCheckpoint(str(path))
        )
        assert inet.network.stats.datagrams == datagrams_before
        assert second.resumed == len(jobs)
        assert [a.rcode for a in second.answers] == [
            a.rcode for a in first.answers
        ]


class TestSharding:
    def test_shard_sources_stay_out_of_allocator_space(self):
        for index in range(64):
            ip = shard_source_ip("10.0.0.77", index)
            first, second = (int(part) for part in ip.split(".")[:2])
            assert first == 100
            assert 64 <= second <= 127

    def test_shard_sources_distinct_per_engine(self):
        fleet_a = {shard_source_ip("10.0.0.1", i) for i in range(8)}
        fleet_b = {shard_source_ip("10.0.0.2", i) for i in range(8)}
        assert len(fleet_a) == 8
        assert fleet_a.isdisjoint(fleet_b)

    def test_sharded_engine_rotates_clients(self):
        inet, domains = _small_internet()
        upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="shards")
        engine = ScanEngine(
            inet.network, inet.allocator.next_v4(), upstream.ip, shards=3
        )
        sources = {engine._client_for(i).source_ip for i in range(6)}
        assert len(sources) == 3
        answers = engine.run([(d.name, 48) for d in domains[:6]])
        assert all(a.answered for a in answers)
