"""Tests for the RFC 5155 NSEC3 hash, including the RFC's own test vector."""

import pytest

from repro.dns.base32 import b32hex_encode
from repro.dns.name import Name
from repro.dnssec.costmodel import meter
from repro.dnssec.nsec3hash import (
    UnknownHashAlgorithm,
    nsec3_hash,
    nsec3_hash_name,
    nsec3_owner_name,
)


class TestRfc5155Vectors:
    """RFC 5155 Appendix A uses salt AABBCCDD and 12 additional iterations."""

    SALT = bytes.fromhex("AABBCCDD")
    ITERATIONS = 12

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("example", "0P9MHAVEQVM6T7VBL5LOP2U3T2RP3TOM"),
            ("a.example", "35MTHGPGCU1QG68FAB165KLNSNK3DPVL"),
            ("ai.example", "GJEQE526PLBF1G8MKLP59ENFD789NJGI"),
            ("ns1.example", "2T7B4G4VSA5SMI47K61MV5BV1A22BOJR"),
            ("w.example", "K8UDEMVP1J2F7EG6JEBPS17VP3N8I58H"),
            ("*.w.example", "R53BQ7CC2UVMUBFU5OCMM6PERS9TK9EN"),
            ("x.w.example", "B4UM86EGHHDS6NEA196SMVMLO4ORS995"),
            ("y.w.example", "JI6NEOAEPV8B5O6K4EV33ABHA8HT9FGC"),
            ("x.y.w.example", "2VPTU5TIMAMQTTGL4LUU9KG21E0AOR3S"),
            ("xx.example", "T644EBQK9BIBCNA874GIVR6JOJ62MLHV"),
        ],
    )
    def test_appendix_a_hashes(self, name, expected):
        digest = nsec3_hash_name(name, self.SALT, self.ITERATIONS)
        assert b32hex_encode(digest) == expected


class TestBasics:
    def test_zero_iterations_single_sha1(self):
        import hashlib

        name = Name.from_text("example.com")
        expected = hashlib.sha1(name.canonical_wire() + b"\x01").digest()
        assert nsec3_hash_name(name, b"\x01", 0) == expected

    def test_case_insensitive(self):
        assert nsec3_hash_name("EXAMPLE.COM", b"", 3) == nsec3_hash_name(
            "example.com", b"", 3
        )

    def test_iterations_change_hash(self):
        assert nsec3_hash_name("example.com", b"", 1) != nsec3_hash_name(
            "example.com", b"", 2
        )

    def test_salt_changes_hash(self):
        assert nsec3_hash_name("example.com", b"a", 1) != nsec3_hash_name(
            "example.com", b"b", 1
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(UnknownHashAlgorithm):
            nsec3_hash(b"\x00", b"", 0, hash_algorithm=2)

    def test_owner_name(self):
        owner = nsec3_owner_name("www.example.com", "example.com", b"", 0)
        assert owner.label_count == 3
        assert owner.is_subdomain_of(Name.from_text("example.com"))
        assert len(owner.labels[0]) == 32


class TestCostAccounting:
    def test_hash_count_charged(self):
        meter.reset()
        nsec3_hash_name("example.com", b"", 0)
        assert meter.nsec3_hashes == 1
        assert meter.sha1_compressions >= 1

    def test_iterations_scale_compressions(self):
        meter.reset()
        nsec3_hash_name("example.com", b"", 0)
        base = meter.sha1_compressions
        meter.reset()
        nsec3_hash_name("example.com", b"", 100)
        assert meter.sha1_compressions >= base + 100

    def test_snapshot_subtraction(self):
        meter.reset()
        before = meter.snapshot()
        nsec3_hash_name("example.com", b"", 5)
        delta = meter.snapshot() - before
        assert delta.nsec3_hashes == 1
        assert delta.sha1_compressions == 6
