"""Shared fixtures: a small signed mini-Internet reused across test modules.

Building and signing zones is the expensive part of integration testing,
so the heavyweight fixtures are session-scoped and read-only by convention
(tests attach their own resolvers/clients rather than mutating zones).
"""

import random

import pytest

from repro.crypto.keys import make_ds
from repro.dns.rdata import A
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.net.network import Network
from repro.server.authoritative import AuthoritativeServer
from repro.testbed.internet import build_internet
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
)
from repro.testbed.rfc9276_wild import build_probe_zones
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

#: A compact TLD configuration reused by testbed tests.
SMALL_CONFIG = PopulationConfig(
    n_domains=60,
    n_tlds=40,
    tld_dnssec=36,
    tld_nsec3=33,
    tld_zero_iterations=15,
    tld_identity_digital=7,
    tld_saltless=15,
    tld_salt8=12,
    tld_salt10=1,
)


@pytest.fixture(scope="session")
def mini_internet():
    """A hand-built 3-level tree: root → com → example.com (NSEC3, 5 it)."""
    rng = random.Random(99)
    net = Network(seed=2)
    example = (
        ZoneBuilder("example.com")
        .soa("ns1.example.com", "h.example.com")
        .ns("ns1.example.com.")
        .a("ns1", "192.0.2.53")
        .a("www", "192.0.2.80")
        .txt("info", "hello world")
        .wildcard_a("192.0.2.99", under="wild")
        .a("wild", "192.0.2.98")
        .build()
    )
    sign_zone(
        example,
        SigningPolicy(nsec3=Nsec3Params(iterations=5, salt=b"\xca\xfe")),
        rng=rng,
    )
    com = (
        ZoneBuilder("com")
        .soa("ns1.gtld.net", "h.gtld.net")
        .ns("ns1.com.")
        .a("ns1", "192.0.2.52")
        .delegate(
            "example",
            "ns1.example.com.",
            ds=make_ds("example.com", example.keys[0].dnskey),
        )
        .delegate("unsigned", "ns1.example.com.")
        .build()
    )
    com.add("ns1.example.com", RdataType.A, 3600, A("192.0.2.53"))
    sign_zone(
        com, SigningPolicy(nsec3=Nsec3Params(iterations=0, opt_out=True)), rng=rng
    )
    unsigned = (
        ZoneBuilder("unsigned.com")
        .soa("ns1.example.com.", "h.unsigned.com")
        .ns("ns1.example.com.")
        .a("www", "192.0.2.70")
        .build()
    )
    rootz = (
        ZoneBuilder(".")
        .soa("a.root.", "h.root.")
        .ns("a.root.")
        .a("a.root.", "192.0.2.1")
        .delegate("com.", "ns1.com.", ds=make_ds("com", com.keys[0].dnskey))
        .build()
    )
    rootz.add("ns1.com", RdataType.A, 3600, A("192.0.2.52"))
    sign_zone(rootz, SigningPolicy(nsec3=None), rng=rng)

    servers = {}
    for ip, zones in (
        ("192.0.2.1", [rootz]),
        ("192.0.2.52", [com]),
        ("192.0.2.53", [example, unsigned]),
    ):
        server = AuthoritativeServer(f"auth-{ip}", net)
        for zone in zones:
            server.add_zone(zone)
        net.attach(ip, server)
        servers[ip] = server

    trust_anchor = RRset(".", RdataType.DS, 3600, [make_ds(".", rootz.keys[0].dnskey)])
    return {
        "network": net,
        "root": rootz,
        "com": com,
        "example": example,
        "unsigned": unsigned,
        "servers": servers,
        "root_addresses": ["192.0.2.1"],
        "trust_anchor": trust_anchor,
    }


@pytest.fixture(scope="session")
def testbed():
    """A small generated testbed with probe zones."""
    tlds = generate_tlds(SMALL_CONFIG)
    domains = generate_population(SMALL_CONFIG, tlds=tlds)
    inet = build_internet(domains, tlds, seed=5)
    probe_set = build_probe_zones(inet)
    return {"inet": inet, "probes": probe_set, "domains": domains, "tlds": tlds}
