"""Tests for the zone container, lookup semantics, and the builder."""

import pytest

from repro.dns.name import Name
from repro.dns.rdata import A, NS
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.zone.builder import ZoneBuilder
from repro.zone.zone import LookupStatus, Zone


@pytest.fixture()
def zone():
    return (
        ZoneBuilder("example.com")
        .soa("ns1.example.com", "hostmaster.example.com")
        .ns("ns1.example.com.", "ns2.example.com.")
        .a("ns1", "192.0.2.1")
        .a("www", "192.0.2.10")
        .cname("alias", "www.example.com.")
        .a("a.b.c", "192.0.2.20")
        .wildcard_a("192.0.2.30", under="wild")
        .a("wild", "192.0.2.31")
        .delegate("child", "ns1.child.example.com.")
        .build()
    )


class TestConstruction:
    def test_requires_soa(self):
        with pytest.raises(ValueError):
            ZoneBuilder("x.test").ns("ns.x.test.").build()

    def test_requires_apex_ns(self):
        with pytest.raises(ValueError):
            ZoneBuilder("x.test").soa("ns.x.test", "h.x.test").build()

    def test_rejects_out_of_zone_record(self, zone):
        with pytest.raises(ValueError):
            zone.add("other.net", RdataType.A, 60, A("1.2.3.4"))

    def test_add_merges_rdata(self, zone):
        before = len(zone.get_rrset("www.example.com", RdataType.A))
        zone.add("www.example.com", RdataType.A, 60, A("192.0.2.99"))
        assert len(zone.get_rrset("www.example.com", RdataType.A)) == before + 1
        # Duplicate rdata does not grow the RRset.
        zone.add("www.example.com", RdataType.A, 60, A("192.0.2.99"))
        assert len(zone.get_rrset("www.example.com", RdataType.A)) == before + 1

    def test_record_count(self, zone):
        assert zone.record_count() >= 9


class TestLookup:
    def test_positive(self, zone):
        result = zone.lookup("www.example.com", RdataType.A)
        assert result.status is LookupStatus.ANSWER
        assert result.rrset[0].to_text() == "192.0.2.10"

    def test_nodata(self, zone):
        result = zone.lookup("www.example.com", RdataType.AAAA)
        assert result.status is LookupStatus.NODATA

    def test_nxdomain(self, zone):
        result = zone.lookup("missing.example.com", RdataType.A)
        assert result.status is LookupStatus.NXDOMAIN

    def test_empty_nonterminal_is_nodata(self, zone):
        # b.c.example.com exists only as an ancestor of a.b.c.example.com.
        result = zone.lookup("b.c.example.com", RdataType.A)
        assert result.status is LookupStatus.NODATA

    def test_cname(self, zone):
        result = zone.lookup("alias.example.com", RdataType.A)
        assert result.status is LookupStatus.CNAME
        assert result.cname[0].target == Name.from_text("www.example.com")

    def test_cname_query_for_cname_type(self, zone):
        result = zone.lookup("alias.example.com", RdataType.CNAME)
        assert result.status is LookupStatus.ANSWER

    def test_wildcard_expansion(self, zone):
        result = zone.lookup("anything.wild.example.com", RdataType.A)
        assert result.status is LookupStatus.WILDCARD
        assert result.rrset.name == Name.from_text("anything.wild.example.com")
        assert result.wildcard_owner == Name.from_text("*.wild.example.com")

    def test_wildcard_does_not_match_existing(self, zone):
        result = zone.lookup("wild.example.com", RdataType.A)
        assert result.status is LookupStatus.ANSWER
        assert result.rrset[0].to_text() == "192.0.2.31"

    def test_wildcard_nodata_for_missing_type(self, zone):
        result = zone.lookup("anything.wild.example.com", RdataType.TXT)
        assert result.status is LookupStatus.NODATA

    def test_delegation(self, zone):
        result = zone.lookup("host.child.example.com", RdataType.A)
        assert result.status is LookupStatus.DELEGATION
        assert result.delegation.name == Name.from_text("child.example.com")

    def test_delegation_at_cut(self, zone):
        result = zone.lookup("child.example.com", RdataType.A)
        assert result.status is LookupStatus.DELEGATION

    def test_ds_at_cut_answered_by_parent(self, zone):
        result = zone.lookup("child.example.com", RdataType.DS)
        assert result.status is LookupStatus.NODATA  # no DS stored → NODATA

    def test_not_in_zone(self, zone):
        result = zone.lookup("www.other.net", RdataType.A)
        assert result.status is LookupStatus.NOT_IN_ZONE

    def test_apex_ns(self, zone):
        result = zone.lookup("example.com", RdataType.NS)
        assert result.status is LookupStatus.ANSWER
        assert len(result.rrset) == 2


class TestStructure:
    def test_delegation_points(self, zone):
        assert zone.delegation_points() == [Name.from_text("child.example.com")]

    def test_delegation_for(self, zone):
        assert zone.delegation_for("x.child.example.com") == Name.from_text(
            "child.example.com"
        )
        assert zone.delegation_for("www.example.com") is None

    def test_authoritative_names_exclude_glue(self, zone):
        zone.add("ns1.child.example.com", RdataType.A, 60, A("192.0.2.40"))
        names = zone.authoritative_names()
        assert Name.from_text("ns1.child.example.com") not in names
        assert Name.from_text("child.example.com") in names

    def test_empty_nonterminals(self, zone):
        empties = zone.empty_nonterminals()
        assert Name.from_text("b.c.example.com") in empties
        assert Name.from_text("c.example.com") in empties
        assert Name.from_text("www.example.com") not in empties

    def test_soa_property(self, zone):
        assert zone.soa is not None
        assert int(zone.soa.rrtype) == int(RdataType.SOA)
