"""End-to-end integration: the complete paper methodology on the testbed.

These tests run both measurement pipelines (domains and resolvers) against
the session testbed and assert the *shape* of the paper's findings — who
wins, where the thresholds sit — rather than exact percentages, which need
larger populations than a test should build.
"""

import pytest

from repro.analysis.figures import figure1_series, figure3_series
from repro.analysis.stats import domain_headline_stats, resolver_headline_stats
from repro.analysis.tables import operator_table
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.dnskey_scan import dnskey_scan
from repro.scanner.engine import ScanEngine
from repro.scanner.nsec3_scan import nsec3_scan, scan_tlds
from repro.scanner.resolver_scan import ResolverSurvey
from repro.testbed.resolvers import deploy_resolvers

SMOKE_ITERATIONS = (1, 10, 25, 50, 51, 100, 101, 150, 151, 300, 500)


@pytest.fixture(scope="module")
def domain_pipeline(testbed):
    inet = testbed["inet"]
    upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="e2e-upstream")
    engine = ScanEngine(inet.network, inet.allocator.next_v4(), upstream.ip)
    names = [d.name for d in testbed["domains"]]
    enabled = dnskey_scan(engine, names)
    results = nsec3_scan(engine, enabled)
    return engine, enabled, results


@pytest.fixture(scope="module")
def resolver_pipeline(testbed):
    inet = testbed["inet"]
    deployment = deploy_resolvers(
        inet, open_v4=24, open_v6=6, closed_v4=6, closed_v6=4, seed=11
    )
    survey = ResolverSurvey(
        inet.network,
        testbed["probes"],
        inet.allocator.next_v4(),
        iterations=SMOKE_ITERATIONS,
    )
    open_entries = survey.run(deployment)
    atlas = AtlasCampaign(inet.network, testbed["probes"], iterations=SMOKE_ITERATIONS)
    closed_entries = atlas.run(deployment)
    return deployment, open_entries, closed_entries


class TestDomainPipeline:
    def test_scan_recovers_ground_truth(self, testbed, domain_pipeline):
        __, enabled, results = domain_pipeline
        truth_dnssec = {d.name for d in testbed["domains"] if d.dnssec}
        truth_nsec3 = {d.name for d in testbed["domains"] if d.nsec3}
        assert set(enabled) == truth_dnssec
        assert {r.domain for r in results if r.nsec3_enabled} == truth_nsec3

    def test_headline_shape(self, testbed, domain_pipeline):
        __, __, results = domain_pipeline
        headline = domain_headline_stats(results, total_domains=len(testbed["domains"]))
        # The paper's core finding: a large majority is non-compliant.
        if headline.nsec3_enabled >= 5:
            assert headline.non_compliant_pct > 50.0

    def test_figure1_majority_at_low_iterations(self, domain_pipeline):
        __, __, results = domain_pipeline
        nsec3 = [r for r in results if r.nsec3_enabled]
        if len(nsec3) >= 5:
            fig = figure1_series(results)
            assert fig.iterations_cdf.fraction_at_or_below(25) > 0.8

    def test_operator_table_nonempty(self, domain_pipeline):
        __, __, results = domain_pipeline
        if any(r.nsec3_enabled for r in results):
            rows = operator_table(results)
            assert rows
            assert rows[0].domains >= rows[-1].domains

    def test_tld_scan_identity_digital(self, testbed):
        inet = testbed["inet"]
        upstream = inet.make_resolver(VENDOR_POLICIES["google"], name="tld-upstream")
        engine = ScanEngine(inet.network, inet.allocator.next_v4(), upstream.ip)
        specs = [t for t in testbed["tlds"] if t.registry == "identity-digital"]
        results = scan_tlds(engine, specs[:3])
        assert all(r.report.iterations == 100 for r in results if r.nsec3_enabled)
        assert all(not r.report.item2_zero_iterations for r in results if r.nsec3_enabled)


class TestResolverPipeline:
    def test_kinds_classified_correctly(self, resolver_pipeline):
        deployment, open_entries, closed_entries = resolver_pipeline
        truth = {d.ip: d for d in deployment}
        for entry in open_entries + closed_entries:
            deployed = truth[entry.resolver.ip]
            cls = entry.classification
            if deployed.kind == "non-validating":
                assert not cls.is_validating
                continue
            assert cls.is_validating, deployed.policy_name
            policy = VENDOR_POLICIES[deployed.policy_name]
            if deployed.kind == "copier":
                assert cls.implements_item8
                assert cls.strict_servfail_at_one
            elif policy.insecure_above is not None:
                assert cls.implements_item6, deployed.policy_name

    def test_headline_shape(self, resolver_pipeline):
        __, open_entries, closed_entries = resolver_pipeline
        classifications = [
            e.classification for e in open_entries + closed_entries
        ]
        headline = resolver_headline_stats(classifications)
        assert headline.validators > 0
        # Majority of validators limit iterations (paper: 78.3 %).
        assert headline.limit_pct > 40.0
        # Item 6 outweighs Item 8 (paper: 59.9 % vs 18.4 %).
        assert headline.item6 >= headline.item8

    def test_figure3_ad_share_declines(self, resolver_pipeline):
        __, open_entries, __ = resolver_pipeline
        entries = [e for e in open_entries if e.resolver.family == "v4"]
        fig = figure3_series(entries, "open-v4")
        if fig.validators >= 5:
            ad_at_1 = fig.series[1][1]
            ad_at_500 = fig.series[500][1]
            assert ad_at_1 > ad_at_500

    def test_figure3_servfail_rises_after_150(self, resolver_pipeline):
        __, open_entries, closed_entries = resolver_pipeline
        fig = figure3_series(open_entries + closed_entries, "all")
        servfail_150 = fig.series[150][2]
        servfail_151 = fig.series[151][2]
        assert servfail_151 >= servfail_150

    def test_ede27_only_from_limiting_resolvers(self, resolver_pipeline):
        deployment, open_entries, __ = resolver_pipeline
        truth = {d.ip: d for d in deployment}
        for entry in open_entries:
            cls = entry.classification
            if cls.ede27_support:
                policy = VENDOR_POLICIES[truth[entry.resolver.ip].policy_name]
                assert policy.ede27


class TestCveCostShape:
    """CVE-2023-50868: validation cost grows linearly with iterations."""

    def test_cost_scales_with_iterations(self, testbed):
        inet = testbed["inet"]
        probes = testbed["probes"]
        resolver = inet.make_resolver(VENDOR_POLICIES["legacy"], name="cve-victim")
        stub = StubClient(inet.network, inet.allocator.next_v4())

        def cost_of(key, unique):
            before = meter.snapshot()
            answer = stub.ask(resolver.ip, probes.probe_name(key, unique), RdataType.A)
            assert answer.rcode == Rcode.NXDOMAIN
            return (meter.snapshot() - before).sha1_compressions

        low = cost_of(1, "cve-low")
        high = cost_of(500, "cve-high")
        assert high > low * 20  # paper reports up to 72× CPU amplification
