"""Streaming pipeline tests: lazy populations, bounded-memory sketches,
incremental aggregates, and shard determinism."""

import bisect
import math
import random
from collections import Counter

import pytest

from repro.analysis.cdf import Cdf, StreamingCdf
from repro.analysis.sketch import QuantileSketch, SpaceSavingTopK, StreamStats
from repro.analysis.tables import OperatorTableAccumulator, operator_table
from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance
from repro.scanner.nsec3_scan import DomainScanResult
from repro.scanner.supervisor import (
    CampaignPlan,
    UnitUniverse,
    plan_units,
    shard_units,
)
from repro.testbed.population import (
    Population,
    generate_tlds,
    iter_population,
    population_size,
    scaled_config,
    tail_domains,
)


class TestCdfDownsampling:
    def test_final_point_always_retained(self):
        # Regression: strided downsampling used to drop the (max, 1.0)
        # step, truncating every downsampled curve short of 100 %.
        cdf = Cdf(range(1000))
        for max_points in (2, 3, 10, 100, 999):
            points = cdf.points(max_points=max_points)
            assert len(points) == max_points
            assert points[-1] == (999, 1.0)

    def test_no_downsampling_below_threshold(self):
        cdf = Cdf([1, 2, 3])
        assert cdf.points(max_points=3) == cdf.points()
        assert cdf.points()[-1] == (3, 1.0)

    def test_downsampled_fractions_monotone(self):
        rng = random.Random(7)
        cdf = Cdf([rng.randrange(500) for __ in range(2000)])
        points = cdf.points(max_points=50)
        fractions = [fraction for __, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestStreamingCdf:
    def _pair(self, samples):
        return Cdf(samples), StreamingCdf(samples)

    def test_equals_exact_cdf(self):
        rng = random.Random(11)
        samples = [rng.randrange(40) for __ in range(997)]
        exact, streaming = self._pair(samples)
        assert len(streaming) == len(exact)
        for value in range(-1, 42):
            assert streaming.fraction_at_or_below(
                value
            ) == exact.fraction_at_or_below(value)
        for fraction in (0.001, 0.1, 0.25, 0.5, 0.9, 0.999, 1.0):
            assert streaming.percentile(fraction) == exact.percentile(fraction)
        assert streaming.points() == exact.points()
        assert streaming.points(max_points=7) == exact.points(max_points=7)
        xs = list(range(0, 40, 3))
        assert streaming.series_at(xs) == exact.series_at(xs)
        assert streaming.samples == exact.samples

    def test_merge_equals_whole(self):
        rng = random.Random(13)
        samples = [rng.randrange(25) for __ in range(500)]
        whole = StreamingCdf(samples)
        left = StreamingCdf(samples[:200])
        right = StreamingCdf(samples[200:])
        left.merge(right)
        assert left.points() == whole.points()
        assert len(left) == len(whole)

    def test_empty(self):
        streaming = StreamingCdf()
        assert streaming.fraction_at_or_below(5) == 0.0
        with pytest.raises(ValueError):
            streaming.percentile(0.5)


class TestStreamStats:
    def test_update_and_merge(self):
        stats = StreamStats()
        for value in (5, 1, 9, 3):
            stats.update(value)
        assert (stats.count, stats.minimum, stats.maximum) == (4, 1, 9)
        assert stats.mean == pytest.approx(4.5)

        other = StreamStats()
        other.update(-2)
        stats.merge(other)
        assert (stats.count, stats.minimum, stats.maximum) == (5, -2, 9)
        stats.merge(StreamStats())  # merging empty is a no-op
        assert stats.count == 5

    def test_empty_mean(self):
        assert StreamStats().mean == 0.0


class TestSpaceSavingTopK:
    def test_exact_within_capacity(self):
        rng = random.Random(3)
        stream = [f"op{rng.randrange(20)}" for __ in range(5000)]
        sketch = SpaceSavingTopK(capacity=64)
        truth = Counter()
        for key in stream:
            sketch.update(key)
            truth[key] += 1
        assert sketch.exact
        assert dict(sketch.counts) == dict(truth)
        assert all(error == 0 for error in sketch.errors.values())
        top = sketch.top(5)
        assert [(key, count) for key, count, __ in top] == truth.most_common(5)

    def test_preserves_insertion_order(self):
        sketch = SpaceSavingTopK(capacity=8)
        for key in ("b", "a", "c", "a", "b"):
            sketch.update(key)
        assert list(sketch.counts) == ["b", "a", "c"]

    def test_eviction_bounds(self):
        rng = random.Random(9)
        # Zipf-ish stream over more keys than the sketch holds.
        stream = [f"k{min(rng.randrange(60), rng.randrange(60))}" for __ in range(8000)]
        sketch = SpaceSavingTopK(capacity=16)
        truth = Counter()
        for key in stream:
            sketch.update(key)
            truth[key] += 1
        assert not sketch.exact
        assert len(sketch) == 16
        for key, estimate in sketch.counts.items():
            # Space-saving invariant: estimate overshoots, never under,
            # and the recorded error bounds the overshoot.
            assert estimate >= truth[key]
            assert estimate - sketch.errors[key] <= truth[key]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SpaceSavingTopK(capacity=0)


class TestQuantileSketch:
    def _rank_error(self, sorted_samples, value, fraction):
        """Distance from target rank to the closest rank *value* holds."""
        n = len(sorted_samples)
        target = max(1, math.ceil(fraction * n))
        lo = bisect.bisect_left(sorted_samples, value) + 1
        hi = bisect.bisect_right(sorted_samples, value)
        if lo <= target <= hi:
            return 0
        return min(abs(target - lo), abs(target - hi))

    @pytest.mark.parametrize("distribution", ["uniform", "zipf", "sorted"])
    def test_rank_error_bound(self, distribution):
        rng = random.Random(29)
        n, eps = 4000, 0.01
        if distribution == "uniform":
            samples = [rng.randrange(10_000) for __ in range(n)]
        elif distribution == "zipf":
            samples = [int(1.0 / max(rng.random(), 1e-6)) for __ in range(n)]
        else:
            samples = list(range(n))
        sketch = QuantileSketch(eps=eps)
        for value in samples:
            sketch.update(value)
        ordered = sorted(samples)
        for fraction in (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            value = sketch.query(fraction)
            assert value in samples
            assert self._rank_error(ordered, value, fraction) <= eps * n + 1

    def test_memory_bounded(self):
        sketch = QuantileSketch(eps=0.01)
        rng = random.Random(31)
        for __ in range(20_000):
            sketch.update(rng.random())
        # GK keeps O(1/eps * log(eps*n)) entries — far below n.
        assert sketch.retained < 2000
        assert len(sketch) == 20_000

    def test_agrees_with_exact_cdf(self):
        rng = random.Random(37)
        samples = [rng.randrange(200) for __ in range(3000)]
        sketch = QuantileSketch(eps=0.005)
        for value in samples:
            sketch.update(value)
        exact = Cdf(samples)
        for fraction in (0.05, 0.5, 0.95):
            approx = sketch.query(fraction)
            # The sketch's answer must sit within eps of the exact
            # percentile in *rank* space.
            low = exact.percentile(max(0.001, fraction - 2 * sketch.eps))
            high = exact.percentile(min(1.0, fraction + 2 * sketch.eps))
            assert low <= approx <= high

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(eps=0.7)
        with pytest.raises(ValueError):
            QuantileSketch().query(0.5)
        sketch = QuantileSketch().update(1)
        with pytest.raises(ValueError):
            sketch.query(1.5)


def fake_result(domain, iterations=None, salt=0, ns=("ns1.op.net.",)):
    """A synthetic stage-2 result (nsec3-enabled iff iterations given)."""
    if iterations is None:
        observation = Nsec3Observation(domain=domain, nsec3param_records=())
    else:
        params = ((1, iterations, b"\x00" * salt),)
        observation = Nsec3Observation(
            domain=domain, nsec3param_records=params, nsec3_records=params
        )
    result = DomainScanResult(domain=domain)
    result.observation = observation
    result.report = check_zone_compliance(observation)
    result.ns_targets = ns
    result.denial = "nsec3" if iterations is not None else ""
    return result


class TestOperatorAccumulator:
    def _calibrated_results(self):
        rng = random.Random(17)
        operators = [f"ns1.op{i}.net." for i in range(12)]
        results = []
        for index in range(400):
            operator = operators[min(rng.randrange(12), rng.randrange(12))]
            results.append(
                fake_result(
                    f"d{index}.com",
                    rng.choice((0, 0, 1, 5)),
                    rng.choice((0, 8)),
                    ns=(operator,),
                )
            )
        return results

    def test_streaming_equals_exact_counts(self):
        results = self._calibrated_results()
        truth = Counter()
        for result in results:
            truth[result.ns_targets[0].split(".", 1)[1].rstrip(".")] += 1
        accumulator = OperatorTableAccumulator()
        for result in results:
            accumulator.update(result)
        assert accumulator.exact
        rows = accumulator.rows(top_n=12)
        assert {row.operator: row.domains for row in rows} == dict(truth)
        # The fold wrapper renders the identical table.
        wrapped = operator_table(results, top_n=12)
        assert [(r.operator, r.domains, r.top_params) for r in rows] == [
            (r.operator, r.domains, r.top_params) for r in wrapped
        ]

    def test_incremental_equals_batch_after_shard_merge_order(self):
        # Folding results in global unit order (what merge_shards yields)
        # must match folding the concatenated list directly.
        results = self._calibrated_results()
        shards = [results[0::3], results[1::3], results[2::3]]
        reassembled = []
        for index in range(len(results)):
            reassembled.append(shards[index % 3][index // 3])
        assert [r.domain for r in reassembled] == [r.domain for r in results]
        one = OperatorTableAccumulator()
        for result in reassembled:
            one.update(result)
        rows = one.rows()
        batch_rows = operator_table(results)
        assert [(r.operator, r.domains) for r in rows] == [
            (r.operator, r.domains) for r in batch_rows
        ]


class TestStreamingPopulation:
    CONFIG = scaled_config(120, 24)

    def test_stream_matches_indexing(self):
        population = Population(self.CONFIG)
        streamed = list(iter_population(self.CONFIG, tlds=population.tlds))
        assert len(streamed) == len(population) == population_size(self.CONFIG)
        assert streamed == [population.spec_at(i) for i in range(len(population))]
        assert streamed[-4:] == tail_domains()

    def test_shards_reassemble_to_stream(self):
        population = Population(self.CONFIG)
        full = list(population)
        for workers in (2, 3, 5):
            shards = [
                list(population.iter_shard(shard, workers))
                for shard in range(workers)
            ]
            reassembled = [None] * len(full)
            for shard, specs in enumerate(shards):
                for offset, spec in enumerate(specs):
                    reassembled[shard + offset * workers] = spec
            assert reassembled == full

    def test_spec_for_name_inverts_the_generator(self):
        population = Population(self.CONFIG)
        for index in (0, 1, 57, 119):
            spec = population.spec_at(index)
            assert population.spec_for_name(spec.name) == spec
        assert population.spec_for_name("tail-it500-a.com") is not None
        assert population.spec_for_name("not-a-real-name-12345.com") is None
        assert population.spec_for_name("nodigits.example") is None

    def test_any_index_is_o1_reachable(self):
        # Entering the stream at an arbitrary offset yields the same
        # spec as walking to it — the property sharding relies on.
        population = Population(self.CONFIG)
        walked = list(population.iter_shard(97, 1))[0]
        assert population.spec_at(97) == walked


class TestUnitUniverse:
    def _plan(self, role="study"):
        return CampaignPlan(
            role=role,
            domains=16,
            tlds=10,
            resolvers=4,
            seed=5,
            workers=2,
            state_dir="/nonexistent",
        )

    @pytest.mark.parametrize("role", ["study", "scan", "survey"])
    def test_matches_materialised_plan(self, role):
        plan = self._plan(role)
        units, domain_specs, tld_specs = plan_units(plan)
        universe = UnitUniverse(plan)
        assert len(universe) == len(units)
        assert list(universe) == units
        assert [spec.label for spec in universe.tld_specs] == [
            spec.label for spec in tld_specs
        ]
        assert len(universe.population) == len(domain_specs)

    def test_shard_streams_match_shard_units(self):
        plan = self._plan()
        units, __, __ = plan_units(plan)
        universe = UnitUniverse(plan)
        for workers in (2, 3, 4):
            for shard in range(workers):
                expected = shard_units(units, shard, workers)
                assert list(universe.iter_shard(shard, workers)) == expected
                assert universe.shard_size(shard, workers) == len(expected)

    def test_unit_at_bounds(self):
        universe = UnitUniverse(self._plan())
        with pytest.raises(IndexError):
            universe.unit_at(len(universe))
        with pytest.raises(IndexError):
            universe.unit_at(-1)
