"""Tests for base32hex and NSEC type bitmaps."""

import pytest

from repro.dns.base32 import b32hex_decode, b32hex_encode
from repro.dns.bitmap import bitmap_to_text, decode_bitmap, encode_bitmap
from repro.dns.types import RdataType


class TestBase32Hex:
    def test_rfc4648_vectors(self):
        # RFC 4648 §10 test vectors (padding stripped).
        vectors = {
            b"": "",
            b"f": "CO",
            b"fo": "CPNG",
            b"foo": "CPNMU",
            b"foob": "CPNMUOG",
            b"fooba": "CPNMUOJ1",
            b"foobar": "CPNMUOJ1E8",
        }
        for raw, encoded in vectors.items():
            assert b32hex_encode(raw) == encoded
            assert b32hex_decode(encoded) == raw

    def test_case_insensitive_decode(self):
        assert b32hex_decode("cpnmuoj1e8") == b"foobar"

    def test_sha1_digest_length(self):
        # A 20-byte NSEC3 hash encodes to exactly 32 characters.
        assert len(b32hex_encode(b"\x00" * 20)) == 32

    def test_ordering_preserved(self):
        # base32hex preserves byte ordering — the property NSEC3 relies on.
        samples = [bytes([i, 255 - i, i ^ 0x55]) for i in range(0, 256, 17)]
        encoded = [b32hex_encode(s) for s in samples]
        assert sorted(samples) == [b32hex_decode(e) for e in sorted(encoded)]

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            b32hex_decode("W$")

    def test_padding_ignored(self):
        assert b32hex_decode("CO======") == b"f"


class TestBitmap:
    def test_round_trip_simple(self):
        types = [RdataType.A, RdataType.NS, RdataType.SOA, RdataType.RRSIG]
        assert decode_bitmap(encode_bitmap(types)) == sorted(int(t) for t in types)

    def test_multiple_windows(self):
        types = [1, 2, 257, 300, 65000]
        assert decode_bitmap(encode_bitmap(types)) == sorted(types)

    def test_empty(self):
        assert encode_bitmap([]) == b""
        assert decode_bitmap(b"") == []

    def test_duplicates_collapsed(self):
        assert decode_bitmap(encode_bitmap([1, 1, 1])) == [1]

    def test_known_encoding(self):
        # A (1) and MX (15): window 0, 2 octets, bits 1 and 15.
        wire = encode_bitmap([1, 15])
        assert wire == bytes([0, 2, 0b01000000, 0b00000001])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_bitmap([70000])

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            decode_bitmap(bytes([0, 0]))
        with pytest.raises(ValueError):
            decode_bitmap(bytes([0, 33] + [0] * 33))

    def test_decode_rejects_unordered_windows(self):
        block = bytes([1, 1, 0x80, 0, 1, 0x80])
        with pytest.raises(ValueError):
            decode_bitmap(block)

    def test_decode_truncated(self):
        with pytest.raises(ValueError):
            decode_bitmap(bytes([0, 4, 0xFF]))

    def test_to_text(self):
        text = bitmap_to_text([int(RdataType.A), int(RdataType.NSEC3PARAM), 65001])
        assert text == "A NSEC3PARAM TYPE65001"
