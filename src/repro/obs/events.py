"""Structured event journal: a bounded flight-recorder ring + JSONL sink.

Hot paths emit *typed events* — query issued/completed, guard trips,
breaker transitions, cache evictions, fault injections, checkpoint
flushes — into one :class:`EventJournal`. Two destinations, two jobs:

- the **ring** (``deque(maxlen=ring_size)``) always holds the full
  recent history in flat memory, so a long campaign cannot grow without
  bound and a post-mortem always has the last N events;
- the **sink** (an optional line-oriented JSONL stream, wired to
  ``--events-out``) receives the *sampled* stream: per-kind keep-1-in-N
  sampling bounds file size and I/O overhead on the hottest kinds.

Sampling is **seeded and counter-based**, not random: the decision for
the *n*-th event of a kind is a pure function of ``(seed, kind, n)``, so
two runs with the same seed — at any campaign concurrency, since
sessions execute in deterministic submission order — write identical
journals. The seed rotates the sampling phase so different seeds surface
different representatives of a high-frequency kind.

The **flight-recorder contract**: emitting a kind listed in ``dump_on``
(by default guard trips and campaign stalls) dumps the entire ring to
the sink as one ``flight.dump`` record — the unsampled recent history
leading up to the incident, which is exactly what a post-mortem needs
when a 302 M-domain campaign wedges at hour six. Dumps are rate-limited
by event distance (``dump_min_gap``) so a guard-trip storm cannot write
the same ring a thousand times.

Event timestamps are *simulated* milliseconds read from the tracer
clock (frame-aware under the campaign executor), which makes them
comparable across shards but — deliberately — not identical across
concurrency widths: a width-32 run overlaps sessions, so the same event
sequence carries earlier timestamps. Determinism tests compare journals
with timestamps stripped.
"""

from __future__ import annotations

import json
import zlib
from collections import deque

#: Default keep-1-in-N sampling for the hottest kinds; unlisted kinds
#: are always written. The ring always records everything.
DEFAULT_SAMPLE = {
    "query.issued": 8,
    "fault.inject": 8,
}

#: Emitting any of these kinds dumps the ring to the sink (post-mortem).
DEFAULT_DUMP_ON = frozenset({"guard.trip", "campaign.stall"})


class Event:
    """One journal entry: sequence number, simulated time, kind, fields."""

    __slots__ = ("seq", "t_ms", "kind", "fields")

    def __init__(self, seq, t_ms, kind, fields):
        self.seq = seq
        self.t_ms = t_ms
        self.kind = kind
        self.fields = fields

    def to_record(self):
        """The event as a JSON-able dict (field keys win no collisions:
        ``seq``/``t``/``kind`` are reserved)."""
        record = {"seq": self.seq, "t": round(self.t_ms, 3), "kind": self.kind}
        for key, value in self.fields.items():
            if key not in record:
                record[key] = value
        return record

    def __repr__(self):
        return f"Event(seq={self.seq}, t={self.t_ms:.1f}, kind={self.kind!r})"


class EventJournal:
    """The flight recorder: bounded ring, sampled JSONL sink, ring dumps."""

    def __init__(
        self,
        ring_size=256,
        sink=None,
        seed=0,
        sample=None,
        dump_on=DEFAULT_DUMP_ON,
        dump_min_gap=64,
    ):
        self.ring = deque(maxlen=ring_size)
        self.sink = sink
        self.seed = int(seed)
        self.sample = dict(DEFAULT_SAMPLE if sample is None else sample)
        self.dump_on = frozenset(dump_on)
        #: Minimum events between two ring dumps (storm rate limit).
        self.dump_min_gap = dump_min_gap
        self.seq = 0
        self.written = 0
        self.sampled_out = 0
        self.dumps = 0
        self.dumps_suppressed = 0
        self._kind_counts = {}
        self._phases = {}
        self._last_dump_seq = None

    # -- emission ------------------------------------------------------------

    def emit(self, kind, t_ms, /, **fields):
        """Record one event; returns it (for tests and dump triggers).

        ``kind``/``t_ms`` are positional-only so events may carry fields
        with those names (e.g. a guard trip's budget ``kind``).
        """
        self.seq += 1
        event = Event(self.seq, float(t_ms), kind, fields)
        self.ring.append(event)
        if self._keep(kind):
            self._write(event.to_record())
        else:
            self.sampled_out += 1
        if kind in self.dump_on:
            self.dump(reason=kind)
        return event

    def _keep(self, kind):
        """Seeded counter-based sampling: pure in ``(seed, kind, count)``."""
        count = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = count + 1
        every = self.sample.get(kind, 1)
        if every <= 1:
            return True
        phase = self._phases.get(kind)
        if phase is None:
            phase = self._phases[kind] = (
                zlib.crc32(f"{self.seed}:{kind}".encode("utf-8")) % every
            )
        return count % every == phase

    def _write(self, record):
        if self.sink is None:
            return
        self.sink.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.written += 1

    # -- the flight-recorder dump --------------------------------------------

    def dump(self, reason):
        """Write the ring to the sink as one ``flight.dump`` record.

        Returns the record (also when there is no sink, so callers and
        tests can inspect the post-mortem), or ``None`` when suppressed
        by the ``dump_min_gap`` rate limit.
        """
        if (
            self._last_dump_seq is not None
            and self.seq - self._last_dump_seq < self.dump_min_gap
        ):
            self.dumps_suppressed += 1
            return None
        self._last_dump_seq = self.seq
        self.dumps += 1
        record = {
            "kind": "flight.dump",
            "reason": reason,
            "seq": self.seq,
            "events": [event.to_record() for event in self.ring],
        }
        self._write(record)
        return record

    # -- introspection -------------------------------------------------------

    def tail(self, n=None):
        """The most recent *n* ring events (all of them by default)."""
        events = list(self.ring)
        if n is not None:
            events = events[-n:]
        return events

    def counts(self):
        """Events emitted so far, by kind (pre-sampling totals)."""
        return dict(sorted(self._kind_counts.items()))

    def clear(self):
        """Drop ring contents and counters; the sink stays attached."""
        self.ring.clear()
        self.seq = 0
        self.written = 0
        self.sampled_out = 0
        self.dumps = 0
        self.dumps_suppressed = 0
        self._kind_counts.clear()
        self._phases.clear()
        self._last_dump_seq = None

    def __len__(self):
        return len(self.ring)
