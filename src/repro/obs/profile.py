"""CPU-cost profiling: costmodel units per resolver policy and probe zone.

The paper's resolver survey (§4.2) and the CVE-2023-50868 analyses both
reduce to one question: *how much hashing does a validator do for a
negative answer at iteration count N, and what does it answer?* The
profiler aggregates :mod:`repro.dnssec.costmodel` deltas along the two
axes the study slices by:

- **per resolver policy** — cost units burned and rcode returned by each
  vendor behaviour (``legacy``, ``bind9-2023``, ``cloudflare``, …);
- **per probe zone** — cost and rcode for each ``it-N`` zone of the
  ``rfc9276-in-the-wild.com`` infrastructure (0–500 iterations), the
  histograms behind Figure-3-style response matrices.

Everything lands in a :class:`~repro.obs.metrics.MetricsRegistry`, so a
study run exports the profile with the rest of the metrics snapshot.
"""

from __future__ import annotations

from repro.dns.rcode import Rcode
from repro.obs.metrics import ChildCache

#: NSEC3 iteration-count buckets: vendor thresholds (50/100/150), the
#: probe-zone range (≤500), and the RFC 5155 ceiling (2500).
ITERATION_BUCKETS = (0, 1, 5, 10, 25, 50, 100, 150, 250, 500, 2500)

#: SHA-1 compression-unit buckets, spanning one cheap lookup to the
#: multi-hundred-thousand-unit bursts of high-iteration closest-encloser
#: proofs.
COST_UNIT_BUCKETS = (
    10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000
)


def rcode_label(rcode, answered=True):
    """The metrics label for one response outcome ("timeout" if unanswered)."""
    if not answered:
        return "timeout"
    return Rcode.to_text(rcode)


class CostProfiler:
    """Feeds cost/outcome observations into a metrics registry.

    Every recorder resolves its metric children through a
    :class:`~repro.obs.metrics.ChildCache` — these sites fire once per
    NSEC3 hash / validated question / survey probe, so the per-event
    cost must stay at a dict lookup, not a family declaration.
    """

    def __init__(self, registry):
        self.registry = registry
        self._children = ChildCache()

    # -- hashing ----------------------------------------------------------

    def observe_iterations(self, iterations):
        """Record one NSEC3 hash computation at *iterations* iterations."""
        child = self._children.get(self.registry, "iterations")
        if child is None:
            child = self._children.put(
                "iterations",
                self.registry.histogram(
                    "repro_nsec3_iterations",
                    "NSEC3 iteration counts of computed hashes.",
                    buckets=ITERATION_BUCKETS,
                ).labels(),
            )
        child.observe(iterations)

    # -- per-policy validation cost ---------------------------------------

    def record_validation(self, policy, cost, rcode):
        """Account one validated client question under *policy*.

        *cost* is a :class:`~repro.dnssec.costmodel.CostSnapshot` delta
        covering the full resolve-and-validate call.
        """
        rcode_text = rcode_label(rcode)
        key = ("validation", policy, rcode_text)
        children = self._children.get(self.registry, key)
        if children is None:
            children = self._children.put(
                key,
                (
                    self.registry.histogram(
                        "repro_validation_cost_units",
                        "SHA-1 compression units per validated question, "
                        "by policy.",
                        buckets=COST_UNIT_BUCKETS,
                        labelnames=("policy",),
                    ).labels(policy=policy),
                    self.registry.counter(
                        "repro_resolver_responses_total",
                        "Validated resolver verdicts by policy and rcode.",
                        labelnames=("policy", "rcode"),
                    ).labels(policy=policy, rcode=rcode_text),
                    self.registry.counter(
                        "repro_validation_signature_checks_total",
                        "Signature verifications performed during validation, "
                        "by policy.",
                        labelnames=("policy",),
                    ).labels(policy=policy),
                ),
            )
        cost_units, responses, signature_checks = children
        cost_units.observe(cost.sha1_compressions)
        responses.inc()
        signature_checks.inc(cost.signature_verifications)

    # -- per-probe-zone survey cost ---------------------------------------

    def record_probe(self, zone, cost, rcode, answered=True):
        """Account one survey probe against probe zone *zone* (e.g. it-150)."""
        rcode_text = rcode_label(rcode, answered)
        key = ("probe", zone, rcode_text)
        children = self._children.get(self.registry, key)
        if children is None:
            children = self._children.put(
                key,
                (
                    self.registry.histogram(
                        "repro_probe_cost_units",
                        "SHA-1 compression units per survey probe, "
                        "by probe zone.",
                        buckets=COST_UNIT_BUCKETS,
                        labelnames=("zone",),
                    ).labels(zone=zone),
                    self.registry.counter(
                        "repro_probe_responses_total",
                        "Survey probe outcomes by probe zone and rcode "
                        "(Figure 3 axes).",
                        labelnames=("zone", "rcode"),
                    ).labels(zone=zone, rcode=rcode_text),
                ),
            )
        cost_units, responses = children
        cost_units.observe(cost.sha1_compressions)
        responses.inc()
