"""Zero-dependency metrics: counters, gauges, and fixed-bucket histograms.

Prometheus-style data model without the client library: a metric *family*
is declared once (name, help, label names) in a :class:`MetricsRegistry`
and fans out into one *child* per distinct label-value combination.
Families render to the Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`) and to a JSON document
(:meth:`MetricsRegistry.to_json`) for file snapshots.

Declaration is idempotent — instrumentation sites call
``registry.counter("repro_x_total", ...)`` on every event and get the
same family back — but re-declaring a name with a different type or
label set raises :class:`MetricError` so two call sites cannot silently
share a name with different meanings.

Histogram buckets are fixed at declaration time. ``le`` bounds are
inclusive, as in Prometheus; exposition emits cumulative bucket counts
plus the implicit ``+Inf`` bucket, ``_sum``, and ``_count`` series.
"""

from __future__ import annotations

import re
from bisect import bisect_left

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: powers-of-ten-ish cost/latency scale.
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


class MetricError(ValueError):
    """Invalid metric declaration or use (name clash, bad labels)."""


def _format_value(value):
    """Prometheus sample value: integers bare, floats minimally."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labelnames, labelvalues, extra=()):
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise MetricError("counters can only increase")
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets):
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; the final slot is +Inf.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.sum += value
        self.count += 1
        # bisect_left finds the first bound >= value, i.e. the bucket a
        # linear ``value <= bound`` scan would have picked; past the last
        # bound it lands on the +Inf slot.
        self.counts[bisect_left(self.buckets, value)] += 1

    def cumulative(self):
        """Bucket counts as Prometheus exposes them: running totals."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class MetricFamily:
    """One named metric with a fixed type and label set."""

    def __init__(self, name, kind, help_text, labelnames, buckets=None):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError(f"invalid label name {label!r}")
        if kind == "histogram":
            buckets = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            if list(buckets) != sorted(set(buckets)):
                raise MetricError("histogram buckets must be sorted and unique")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children = {}

    def _new_child(self):
        if self.kind == "counter":
            return _CounterChild()
        if self.kind == "gauge":
            return _GaugeChild()
        return _HistogramChild(self.buckets)

    def labels(self, **labelvalues):
        """The child for one label-value combination (created on demand)."""
        try:
            key = tuple(str(labelvalues[name]) for name in self.labelnames)
        except KeyError:
            key = None
        if key is None or len(labelvalues) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    # -- label-less convenience --------------------------------------------

    def _solo(self):
        if self.labelnames:
            raise MetricError(f"{self.name} has labels; use .labels(...)")
        return self.labels()

    def inc(self, amount=1):
        self._solo().inc(amount)

    def set(self, value):
        self._solo().set(value)

    def dec(self, amount=1):
        child = self._solo()
        if not isinstance(child, _GaugeChild):
            raise MetricError(f"{self.name} is not a gauge")
        child.dec(amount)

    def observe(self, value):
        self._solo().observe(value)

    def samples(self):
        """(labelvalues, child) pairs in insertion order."""
        return list(self._children.items())


class ChildCache:
    """A per-site memo of resolved metric children for hot paths.

    Declaring a family and resolving a labelled child costs a few dict
    lookups, tuple builds, and validations per event — cheap once, but
    the network/cache/validator hot paths fire hundreds of thousands of
    times per campaign. A ``ChildCache`` lets such a site resolve each
    child once per registry *generation* and pay one identity check, one
    integer compare, and one dict lookup per event afterwards::

        _LOOKUPS = ChildCache()

        def _count_lookup(self, result):
            child = _LOOKUPS.get(obs.registry, (self.name, result))
            if child is None:
                child = _LOOKUPS.put(
                    (self.name, result),
                    obs.registry.counter(..., labelnames=("cache", "result"))
                    .labels(cache=self.name, result=result),
                )
            child.inc()

    :meth:`MetricsRegistry.reset` bumps the registry's generation, which
    lazily invalidates every cache — stale children can never leak
    across a reset (or across distinct registries).
    """

    __slots__ = ("_registry", "_generation", "_children")

    def __init__(self):
        self._registry = None
        self._generation = None
        self._children = {}

    def get(self, registry, key):
        """The cached child for *key*, or None if it must be (re)resolved."""
        if (
            registry is not self._registry
            or registry.generation != self._generation
        ):
            self._children.clear()
            self._registry = registry
            self._generation = registry.generation
            return None
        return self._children.get(key)

    def put(self, key, child):
        """Cache *child* under *key* for the current generation; returns it."""
        self._children[key] = child
        return child


class MetricsRegistry:
    """Declares and holds metric families; renders exposition snapshots."""

    def __init__(self):
        self._families = {}
        #: Bumped on every :meth:`reset`; consumed by :class:`ChildCache`.
        self.generation = 0

    # -- declaration -------------------------------------------------------

    def _declare(self, name, kind, help_text, labelnames, buckets=None):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise MetricError(
                f"{name} already declared as {family.kind}, not {kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name} already declared with labels {family.labelnames}"
            )
        return family

    def counter(self, name, help_text="", labelnames=()):
        return self._declare(name, "counter", help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()):
        return self._declare(name, "gauge", help_text, labelnames)

    def histogram(self, name, help_text="", buckets=None, labelnames=()):
        return self._declare(name, "histogram", help_text, labelnames, buckets)

    def get(self, name):
        """The family named *name*, or None."""
        return self._families.get(name)

    def families(self):
        return list(self._families.values())

    def sample_count(self):
        """Total number of live (family, label-combination) samples."""
        return sum(len(family._children) for family in self._families.values())

    def reset(self):
        """Drop every family and sample (a fresh registry)."""
        self._families.clear()
        self.generation += 1

    def __len__(self):
        return len(self._families)

    # -- exposition --------------------------------------------------------

    def render_prometheus(self):
        """The registry as Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.samples():
                if family.kind == "histogram":
                    bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                    for bound, count in zip(bounds, child.cumulative()):
                        labels = _render_labels(
                            family.labelnames, labelvalues, extra=(("le", bound),)
                        )
                        lines.append(f"{family.name}_bucket{labels} {count}")
                    labels = _render_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self):
        """The registry as a JSON-serialisable dict (bucket counts cumulative)."""
        out = {}
        for family in self._families.values():
            samples = []
            for labelvalues, child in family.samples():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": dict(zip(bounds, child.cumulative())),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "samples": samples,
            }
            if family.kind == "histogram":
                # Raw bounds alongside the formatted per-sample keys, so
                # the document round-trips through from_json even for a
                # family that has not observed anything yet.
                out[family.name]["buckets"] = list(family.buckets)
        return out

    @classmethod
    def from_json(cls, doc):
        """Rebuild a registry from a :meth:`to_json` document."""
        registry = cls()
        for name, payload in doc.items():
            kind = payload["type"]
            labelnames = tuple(payload.get("labels", ()))
            if kind == "histogram":
                family = registry.histogram(
                    name,
                    payload.get("help", ""),
                    buckets=payload.get("buckets") or None,
                    labelnames=labelnames,
                )
            elif kind == "gauge":
                family = registry.gauge(name, payload.get("help", ""), labelnames)
            else:
                family = registry.counter(name, payload.get("help", ""), labelnames)
            for sample in payload.get("samples", ()):
                labels = sample.get("labels", {})
                child = family.labels(**labels)
                if kind == "histogram":
                    bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                    cumulative = [sample["buckets"][bound] for bound in bounds]
                    previous = 0
                    for index, total in enumerate(cumulative):
                        child.counts[index] = total - previous
                        previous = total
                    child.sum = sample["sum"]
                    child.count = sample["count"]
                else:
                    child.value = sample["value"]
        return registry

    # -- cross-shard merge ---------------------------------------------------

    def merge(self, other):
        """Fold *other*'s samples into this registry, deterministically.

        The sharding primitive: merging the per-shard registries of a
        split campaign yields the same exposition as one registry that
        saw every event. Rules — counters add; histograms add per-bucket
        (bounds must match); gauges take the max, which is correct for
        the high-water/clock gauges this codebase records. A name
        declared with a different kind or label set (or bucket bounds)
        raises :class:`MetricError`. Families and children are re-sorted
        canonically (by name, then label values) so merge order cannot
        leak into the rendered output: ``a.merge(b)`` and ``b.merge(a)``
        render identically. Returns self.
        """
        for name, theirs in other._families.items():
            mine = self._declare(
                name, theirs.kind, theirs.help, theirs.labelnames, theirs.buckets
            )
            if theirs.kind == "histogram" and mine.buckets != theirs.buckets:
                raise MetricError(
                    f"{name} bucket bounds differ: "
                    f"{mine.buckets} vs {theirs.buckets}"
                )
            for labelvalues, their_child in theirs.samples():
                my_child = mine.labels(
                    **dict(zip(mine.labelnames, labelvalues))
                )
                if theirs.kind == "counter":
                    my_child.value += their_child.value
                elif theirs.kind == "gauge":
                    my_child.value = max(my_child.value, their_child.value)
                else:
                    for index, count in enumerate(their_child.counts):
                        my_child.counts[index] += count
                    my_child.sum += their_child.sum
                    my_child.count += their_child.count
        self._families = dict(sorted(self._families.items()))
        for family in self._families.values():
            family._children = dict(sorted(family._children.items()))
        return self
