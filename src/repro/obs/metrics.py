"""Zero-dependency metrics: counters, gauges, and fixed-bucket histograms.

Prometheus-style data model without the client library: a metric *family*
is declared once (name, help, label names) in a :class:`MetricsRegistry`
and fans out into one *child* per distinct label-value combination.
Families render to the Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`) and to a JSON document
(:meth:`MetricsRegistry.to_json`) for file snapshots.

Declaration is idempotent — instrumentation sites call
``registry.counter("repro_x_total", ...)`` on every event and get the
same family back — but re-declaring a name with a different type or
label set raises :class:`MetricError` so two call sites cannot silently
share a name with different meanings.

Histogram buckets are fixed at declaration time. ``le`` bounds are
inclusive, as in Prometheus; exposition emits cumulative bucket counts
plus the implicit ``+Inf`` bucket, ``_sum``, and ``_count`` series.
"""

from __future__ import annotations

import re

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: powers-of-ten-ish cost/latency scale.
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


class MetricError(ValueError):
    """Invalid metric declaration or use (name clash, bad labels)."""


def _format_value(value):
    """Prometheus sample value: integers bare, floats minimally."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labelnames, labelvalues, extra=()):
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise MetricError("counters can only increase")
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets):
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; the final slot is +Inf.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self):
        """Bucket counts as Prometheus exposes them: running totals."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class MetricFamily:
    """One named metric with a fixed type and label set."""

    def __init__(self, name, kind, help_text, labelnames, buckets=None):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError(f"invalid label name {label!r}")
        if kind == "histogram":
            buckets = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            if list(buckets) != sorted(set(buckets)):
                raise MetricError("histogram buckets must be sorted and unique")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children = {}

    def _new_child(self):
        if self.kind == "counter":
            return _CounterChild()
        if self.kind == "gauge":
            return _GaugeChild()
        return _HistogramChild(self.buckets)

    def labels(self, **labelvalues):
        """The child for one label-value combination (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    # -- label-less convenience --------------------------------------------

    def _solo(self):
        if self.labelnames:
            raise MetricError(f"{self.name} has labels; use .labels(...)")
        return self.labels()

    def inc(self, amount=1):
        self._solo().inc(amount)

    def set(self, value):
        self._solo().set(value)

    def observe(self, value):
        self._solo().observe(value)

    def samples(self):
        """(labelvalues, child) pairs in insertion order."""
        return list(self._children.items())


class MetricsRegistry:
    """Declares and holds metric families; renders exposition snapshots."""

    def __init__(self):
        self._families = {}

    # -- declaration -------------------------------------------------------

    def _declare(self, name, kind, help_text, labelnames, buckets=None):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise MetricError(
                f"{name} already declared as {family.kind}, not {kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name} already declared with labels {family.labelnames}"
            )
        return family

    def counter(self, name, help_text="", labelnames=()):
        return self._declare(name, "counter", help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()):
        return self._declare(name, "gauge", help_text, labelnames)

    def histogram(self, name, help_text="", buckets=None, labelnames=()):
        return self._declare(name, "histogram", help_text, labelnames, buckets)

    def get(self, name):
        """The family named *name*, or None."""
        return self._families.get(name)

    def families(self):
        return list(self._families.values())

    def sample_count(self):
        """Total number of live (family, label-combination) samples."""
        return sum(len(family._children) for family in self._families.values())

    def reset(self):
        """Drop every family and sample (a fresh registry)."""
        self._families.clear()

    def __len__(self):
        return len(self._families)

    # -- exposition --------------------------------------------------------

    def render_prometheus(self):
        """The registry as Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.samples():
                if family.kind == "histogram":
                    bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                    for bound, count in zip(bounds, child.cumulative()):
                        labels = _render_labels(
                            family.labelnames, labelvalues, extra=(("le", bound),)
                        )
                        lines.append(f"{family.name}_bucket{labels} {count}")
                    labels = _render_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self):
        """The registry as a JSON-serialisable dict (bucket counts cumulative)."""
        out = {}
        for family in self._families.values():
            samples = []
            for labelvalues, child in family.samples():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    bounds = [_format_value(b) for b in family.buckets] + ["+Inf"]
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": dict(zip(bounds, child.cumulative())),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "samples": samples,
            }
        return out
