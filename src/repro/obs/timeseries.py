"""Sim-clock time-series: a periodic scraper over flat-memory ring series.

End-of-run metric snapshots answer "how much"; the resource-exhaustion
literature the testbed reproduces (CVE-2023-50868, KeyTrap) asks "how
fast, and when" — cost *curves*, not terminal totals. The scraper is a
first-class periodic task on the :class:`~repro.net.sim.SimKernel`
(:meth:`SimKernel.every`): every ``interval_ms`` of committed simulated
time it samples a set of *selectors* (callables over the metrics
registry and the global cost meter) into :class:`RingSeries` — flat
``array('d')`` rings whose memory stays constant no matter how long the
campaign runs.

Samples land at the scrape's *due* time even when the clock jumps
(pacing, requeue delays), so curves have an even time base. Scraping
reads counters only — it never touches an RNG or advances the clock —
so a run with the scraper attached is byte-identical to one without.

Export: :meth:`TimeSeriesScraper.to_json` / :meth:`to_csv` produce
plottable documents (`t_ms` plus one column per series); :meth:`rates`
derives per-second rates from cumulative series (QPS, cost/s).
"""

from __future__ import annotations

import json
from array import array

from repro.dnssec.costmodel import meter

#: Default ring capacity: 4096 samples ≈ 34 simulated minutes at the
#: default 500 ms interval, in two 32 KiB arrays per series.
DEFAULT_CAPACITY = 4096


def family_sum(registry, name, **labels):
    """Sum of a family's child values whose labels match *labels*.

    Counters and gauges sum their values; histograms sum observation
    counts. Missing families sum to 0.0, so selectors are total
    functions over any registry.
    """
    family = registry.get(name)
    if family is None:
        return 0.0
    # Resolve the wanted labels to positions once per call — this runs
    # on every scrape tick, so the per-child work must stay a couple of
    # tuple indexes, not a dict build.
    wanted = []
    for key, value in labels.items():
        try:
            wanted.append((family.labelnames.index(key), str(value)))
        except ValueError:
            return 0.0  # label name the family does not carry: no match
    total = 0.0
    histogram = family.kind == "histogram"
    for labelvalues, child in family.samples():
        if any(labelvalues[index] != value for index, value in wanted):
            continue
        total += child.count if histogram else child.value
    return total


def _cache_hit_rate(registry):
    hits = family_sum(registry, "repro_cache_lookups_total", result="hit")
    misses = family_sum(
        registry, "repro_cache_lookups_total", result="miss"
    ) + family_sum(registry, "repro_cache_lookups_total", result="expired")
    total = hits + misses
    return hits / total if total else 0.0


def default_selectors():
    """The standard scrape set: cost, traffic, hit rate, pressure curves."""
    return [
        ("cost_sha1_total", lambda r: float(meter.sha1_compressions)),
        ("verify_total", lambda r: float(meter.signature_verifications)),
        ("scan_queries_total", lambda r: family_sum(r, "repro_scan_queries_total")),
        (
            "probe_responses_total",
            lambda r: family_sum(r, "repro_probe_responses_total"),
        ),
        ("net_datagrams_total", lambda r: family_sum(r, "repro_net_datagrams_total")),
        ("cache_hit_rate", _cache_hit_rate),
        ("inflight_sessions", lambda r: family_sum(r, "repro_inflight_sessions")),
        ("guard_shed_total", lambda r: family_sum(r, "repro_guard_shed_total")),
        (
            "breaker_opens_total",
            lambda r: family_sum(r, "repro_circuit_transitions_total", to="open"),
        ),
        (
            "faults_injected_total",
            lambda r: family_sum(r, "repro_net_faults_injected_total"),
        ),
    ]


class RingSeries:
    """A bounded (t, value) series in two flat ``array('d')`` rings.

    Appends past capacity overwrite the oldest sample (``dropped``
    counts them), so resident memory is fixed at declaration time — the
    constant-memory-analytics posture the paper-scale campaigns need.
    """

    __slots__ = ("name", "capacity", "_t", "_v", "_head", "dropped")

    def __init__(self, name, capacity=DEFAULT_CAPACITY):
        self.name = name
        self.capacity = int(capacity)
        self._t = array("d")
        self._v = array("d")
        self._head = 0
        self.dropped = 0

    def append(self, t_ms, value):
        if len(self._t) < self.capacity:
            self._t.append(t_ms)
            self._v.append(value)
        else:
            self._t[self._head] = t_ms
            self._v[self._head] = value
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def items(self):
        """Samples in chronological order as ``(t_ms, value)`` pairs."""
        n = len(self._t)
        return [
            (self._t[(self._head + i) % n], self._v[(self._head + i) % n])
            for i in range(n)
        ]

    def last(self):
        """The most recent ``(t_ms, value)`` sample, or None."""
        if not self._t:
            return None
        n = len(self._t)
        index = (self._head + n - 1) % n
        return (self._t[index], self._v[index])

    def __len__(self):
        return len(self._t)


class TimeSeriesScraper:
    """Samples selectors into ring series on a kernel periodic task."""

    def __init__(
        self,
        kernel,
        registry,
        interval_ms=500.0,
        capacity=DEFAULT_CAPACITY,
        selectors=None,
    ):
        self.kernel = kernel
        self.registry = registry
        self.interval_ms = float(interval_ms)
        self.selectors = list(default_selectors() if selectors is None else selectors)
        self.series = {
            name: RingSeries(name, capacity) for name, __ in self.selectors
        }
        self.samples = 0
        self._task = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Register the scrape as a periodic kernel task; returns self."""
        if self._task is None:
            self._task = self.kernel.every(
                self.interval_ms, self.scrape, name="timeseries-scrape"
            )
        return self

    def stop(self):
        """Deregister the periodic task (samples are kept)."""
        if self._task is not None:
            self.kernel.cancel(self._task)
            self._task = None

    # -- sampling ------------------------------------------------------------

    def scrape(self, t_ms=None):
        """Take one sample of every selector at *t_ms* (default: now).

        The periodic task calls this with the scrape's due time; callers
        may also invoke it directly for a final end-of-campaign sample.
        """
        if t_ms is None:
            t_ms = self.kernel.clock.read()
        for name, selector in self.selectors:
            self.series[name].append(t_ms, float(selector(self.registry)))
        self.samples += 1

    # -- derived views -------------------------------------------------------

    def rates(self, name):
        """Per-second rates derived from a cumulative series.

        Returns ``(t_ms, rate)`` pairs, one per interval between
        consecutive samples — the QPS / cost-per-second curve for a
        ``*_total`` series.
        """
        points = self.series[name].items()
        out = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt_s = (t1 - t0) / 1000.0
            if dt_s > 0:
                out.append((t1, (v1 - v0) / dt_s))
        return out

    # -- export --------------------------------------------------------------

    def to_json(self):
        """The scraped series as a JSON-able dict (values parallel to t_ms)."""
        out = {
            "interval_ms": self.interval_ms,
            "samples": self.samples,
            "series": {},
        }
        for name, series in self.series.items():
            points = series.items()
            out["series"][name] = {
                "t_ms": [round(t, 3) for t, __ in points],
                "values": [v for __, v in points],
                "dropped": series.dropped,
            }
        return out

    def to_csv(self):
        """One CSV document: ``t_ms`` plus a column per series.

        All series sample on the same ticks, so rows align; a ragged
        state (a selector added mid-run) truncates to the shortest.
        """
        names = [name for name, __ in self.selectors]
        columns = [self.series[name].items() for name in names]
        lines = ["t_ms," + ",".join(names)]
        for row in zip(*columns):
            t_ms = row[0][0]
            values = ",".join(_csv_number(v) for __, v in row)
            lines.append(f"{_csv_number(t_ms)},{values}")
        return "\n".join(lines) + "\n"

    def write(self, path):
        """Write the series to *path*: ``.csv`` gets CSV, else JSON."""
        if str(path).endswith(".csv"):
            text = self.to_csv()
        else:
            text = json.dumps(self.to_json(), sort_keys=True) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _csv_number(value):
    if float(value).is_integer():
        return str(int(value))
    return repr(round(float(value), 6))
