"""Span-based tracing keyed to the simulated clock.

One traced operation (a probe query, say) produces a *span tree*: the
root span covers the whole operation, children cover nested work —
network hops, resolver validation, signature checks, NSEC3 hashing.
Because delivery on the simulated network is synchronous, nesting falls
out of an explicit span stack: whichever span is active when a new one
starts becomes its parent.

Spans measure two things:

- **simulated time** — ``start_ms``/``end_ms`` read from the tracer's
  clock (bound to the :class:`repro.net.sim.SimKernel` clock that owns
  the run), so span durations reflect path latency, not host CPU;
- **CPU cost units** — a delta of the global
  :data:`repro.dnssec.costmodel.meter` between start and finish, so a
  span over an NSEC3-heavy validation shows exactly where the SHA-1
  compressions of CVE-2023-50868 land. Cost is inclusive of children;
  :func:`render_span_tree` also derives the exclusive share.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.dnssec.costmodel import CostSnapshot, meter


@dataclass
class Span:
    """One timed, cost-metered operation in a trace tree."""

    name: str
    start_ms: float
    attributes: dict = field(default_factory=dict)
    end_ms: float = None
    children: list = field(default_factory=list)
    #: Cost-meter delta over the span's lifetime (inclusive of children).
    cost: CostSnapshot = None
    _cost_start: CostSnapshot = field(default=None, repr=False)

    @property
    def duration_ms(self):
        """Simulated milliseconds covered by the span (0 while open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def set(self, **attributes):
        """Attach attributes after the span has started; returns self."""
        self.attributes.update(attributes)
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first, in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """The first span named *name* in the subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class NullSpan:
    """The do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def set(self, **attributes):
        return self


NULL_SPAN = NullSpan()


class Tracer:
    """Builds span trees over a simulated clock.

    ``clock`` is a zero-argument callable returning milliseconds;
    :func:`repro.obs.bind_clock` points it at the simulation kernel
    owning the run. Finished root spans are kept in a bounded deque so a
    long instrumented run cannot grow memory without bound.
    """

    def __init__(self, clock=None, max_roots=32):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.roots = deque(maxlen=max_roots)
        self._stack = []
        #: Finished roots evicted by the bounded deque (mirrors
        #: ``QueryLog.dropped``): overflow is counted, never silent.
        self.dropped_roots = 0

    @property
    def max_roots(self):
        return self.roots.maxlen

    def set_max_roots(self, max_roots):
        """Resize the finished-root ring, keeping the most recent roots."""
        self.roots = deque(self.roots, maxlen=int(max_roots))

    @property
    def active(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def start(self, name, **attributes):
        """Open a span as a child of the currently active one."""
        span = Span(name, float(self.clock()), dict(attributes))
        span._cost_start = meter.snapshot()
        self._stack.append(span)
        return span

    def finish(self, span):
        """Close *span*, recording duration and cost, and file it in the tree."""
        span.end_ms = float(self.clock())
        span.cost = meter.snapshot() - span._cost_start
        while self._stack:
            if self._stack.pop() is span:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            if (
                self.roots.maxlen is not None
                and len(self.roots) == self.roots.maxlen
            ):
                self.dropped_roots += 1
                from repro import obs

                if obs.enabled:
                    obs.registry.counter(
                        "repro_trace_roots_dropped_total",
                        "Finished root spans evicted from the tracer ring.",
                    ).inc()
            self.roots.append(span)
        return span

    @contextmanager
    def span(self, name, **attributes):
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.finish(span)

    def last_root(self):
        """The most recently finished root span, or None."""
        return self.roots[-1] if self.roots else None

    def clear(self):
        self.roots.clear()
        self._stack.clear()
        self.dropped_roots = 0


def _cost_suffix(span):
    cost = span.cost
    if cost is None:
        return ""
    parts = []
    if cost.sha1_compressions:
        parts.append(f"sha1={cost.sha1_compressions}")
    if cost.nsec3_hashes:
        parts.append(f"nsec3={cost.nsec3_hashes}")
    if cost.signature_verifications:
        parts.append(f"verify={cost.signature_verifications}")
    return "  [" + " ".join(parts) + "]" if parts else ""


def _attr_text(span):
    if not span.attributes:
        return ""
    return " " + " ".join(f"{k}={v}" for k, v in span.attributes.items())


def render_span_tree(span):
    """Pretty-print a span tree with durations and cost units.

    ::

        probe.query qname=... 84.3 ms  [sha1=612 nsec3=4 verify=6]
        └─ net.hop dst=10.0.0.9 transport=udp 22.1 ms  [...]
           └─ resolver.validate policy=legacy ...
    """
    lines = []

    def _render(node, prefix, connector):
        label = (
            f"{node.name}{_attr_text(node)} "
            f"{node.duration_ms:.1f} ms{_cost_suffix(node)}"
        )
        lines.append(prefix + connector + label)
        child_prefix = prefix
        if connector:
            child_prefix += "   " if connector.startswith("└") else "│  "
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            _render(child, child_prefix, "└─ " if last else "├─ ")

    _render(span, "", "")
    return "\n".join(lines)
