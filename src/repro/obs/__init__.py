"""Unified telemetry: metrics registry, query tracing, CPU-cost profiling.

One process-global observability context, **off by default**. Every
instrumentation site in the hot paths guards on :data:`enabled` (and
span sites on :data:`tracing`), so a disabled run pays one attribute
check per event — the study pipelines stay within noise of their
uninstrumented wall-clock.

Usage::

    from repro import obs

    obs.enable()                      # metrics only
    obs.enable(tracing_spans=True)    # metrics + span trees
    ... run a study ...
    print(obs.registry.render_prometheus())
    tree = obs.tracer.last_root()

Instrumentation idiom::

    if obs.enabled:
        obs.registry.counter("repro_x_total", "...").inc()
    with obs.span("net.hop", dst=ip) as sp:   # NULL span when tracing off
        ...

The tracer's clock is bound to the active simulated network
(:meth:`bind_clock`, called from ``Network.__init__``), so span
durations are simulated milliseconds, directly comparable to the
latency/timeout behaviour the resolvers experience.
"""

from __future__ import annotations

from repro.obs.metrics import DEFAULT_BUCKETS, MetricError, MetricsRegistry
from repro.obs.profile import CostProfiler, rcode_label
from repro.obs.trace import NULL_SPAN, Span, Tracer, render_span_tree

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricError",
    "MetricsRegistry",
    "CostProfiler",
    "rcode_label",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "render_span_tree",
    "enabled",
    "tracing",
    "registry",
    "tracer",
    "profiler",
    "enable",
    "disable",
    "reset",
    "bind_clock",
    "span",
]

#: Master switch: metrics (and profiler) collection.
enabled = False
#: Sub-switch: span recording (implies ``enabled``).
tracing = False

registry = MetricsRegistry()
tracer = Tracer()
profiler = CostProfiler(registry)


class _NullContext:
    """Shared no-op context manager returned by :func:`span` when off."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def enable(tracing_spans=False):
    """Turn collection on (optionally including span recording)."""
    global enabled, tracing
    enabled = True
    tracing = bool(tracing_spans)


def disable():
    """Turn all collection off (recorded data is kept until :func:`reset`)."""
    global enabled, tracing
    enabled = False
    tracing = False


def reset():
    """Drop all recorded metrics and spans (flags are untouched)."""
    registry.reset()
    tracer.clear()


def bind_clock(clock):
    """Point the tracer at a simulated clock (zero-arg callable → ms)."""
    tracer.clock = clock


def span(name, **attributes):
    """A tracer span when tracing is on; a shared no-op context otherwise."""
    if tracing:
        return tracer.span(name, **attributes)
    return _NULL_CONTEXT
