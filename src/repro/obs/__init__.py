"""Unified telemetry: metrics registry, query tracing, CPU-cost profiling.

One process-global observability context, **off by default**. Every
instrumentation site in the hot paths guards on :data:`enabled` (and
span sites on :data:`tracing`), so a disabled run pays one attribute
check per event — the study pipelines stay within noise of their
uninstrumented wall-clock.

Usage::

    from repro import obs

    obs.enable()                      # metrics only
    obs.enable(tracing_spans=True)    # metrics + span trees
    ... run a study ...
    print(obs.registry.render_prometheus())
    tree = obs.tracer.last_root()

Instrumentation idiom::

    if obs.enabled:
        obs.registry.counter("repro_x_total", "...").inc()
    with obs.span("net.hop", dst=ip) as sp:   # NULL span when tracing off
        ...

The tracer's clock is bound to the simulation kernel that owns the run
(:func:`bind_clock`), so span durations are simulated milliseconds,
directly comparable to the latency/timeout behaviour the resolvers
experience. ``Network.__init__`` binds *implicitly* (non-exclusive,
last network wins — the historical behaviour); a run that builds more
than one network should **claim** the clock via
``kernel.bind_obs()`` / ``bind_clock(..., exclusive=True)``, after
which implicit binds no longer steal it. :func:`unbind_clock` releases
a claim (test teardown).
"""

from __future__ import annotations

from repro.obs.events import EventJournal
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    ChildCache,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profile import CostProfiler, rcode_label
from repro.obs.trace import NULL_SPAN, Span, Tracer, render_span_tree

__all__ = [
    "DEFAULT_BUCKETS",
    "ChildCache",
    "MetricError",
    "MetricsRegistry",
    "CostProfiler",
    "rcode_label",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "render_span_tree",
    "EventJournal",
    "enabled",
    "tracing",
    "events",
    "registry",
    "tracer",
    "profiler",
    "journal",
    "console",
    "enable",
    "disable",
    "reset",
    "attach_journal",
    "emit",
    "bind_clock",
    "unbind_clock",
    "span",
]

#: Master switch: metrics (and profiler) collection.
enabled = False
#: Sub-switch: span recording (implies ``enabled``).
tracing = False
#: Sub-switch: structured event emission (True while a journal is attached).
events = False

registry = MetricsRegistry()
tracer = Tracer()
profiler = CostProfiler(registry)
#: The attached :class:`EventJournal`, or None (see :func:`attach_journal`).
journal = None
#: The live :class:`~repro.obs.live.ProgressConsole` for this run, or
#: None. Campaign drivers use it to declare totals (``console.expect``)
#: and phase names without threading a handle through every layer.
console = None


class _NullContext:
    """Shared no-op context manager returned by :func:`span` when off."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def enable(tracing_spans=False, max_roots=None):
    """Turn collection on (optionally including span recording).

    *max_roots* resizes the tracer's finished-root ring (default 32);
    overflow beyond it is counted in ``tracer.dropped_roots`` and the
    ``repro_trace_roots_dropped_total`` counter rather than silently
    discarded.
    """
    global enabled, tracing
    enabled = True
    tracing = bool(tracing_spans)
    if max_roots is not None:
        tracer.set_max_roots(max_roots)


def disable():
    """Turn all collection off (recorded data is kept until :func:`reset`)."""
    global enabled, tracing, events
    enabled = False
    tracing = False
    events = False


def reset():
    """Drop all recorded metrics, spans, and journal events (flags and
    journal attachment are untouched)."""
    registry.reset()
    tracer.clear()
    if journal is not None:
        journal.clear()


def attach_journal(new_journal):
    """Install (or with None, remove) the process-global event journal.

    Flips the :data:`events` fast-path flag that hot-path emission sites
    guard on; pass an :class:`EventJournal` wired to a JSONL sink for
    ``--events-out`` runs, or a sink-less one for in-memory flight
    recording. Returns the journal.
    """
    global journal, events
    journal = new_journal
    events = journal is not None
    return journal


def emit(kind, t_ms=None, /, **fields):
    """Emit one typed event into the attached journal (no-op when none).

    The timestamp defaults to the tracer clock — simulated milliseconds,
    frame-aware under the campaign executor. Hot paths guard the call on
    ``if obs.events:`` so a journal-less run pays one attribute check.
    """
    if journal is None:
        return None
    if t_ms is None:
        t_ms = tracer.clock()
    return journal.emit(kind, t_ms, **fields)


#: Who currently owns the tracer clock (None until someone claims it).
_clock_owner = None
#: True when the current binding was made with ``exclusive=True``.
_clock_claimed = False


def bind_clock(clock, owner=None, exclusive=False):
    """Point the tracer at a simulated clock (zero-arg callable → ms).

    Plain calls keep the historical last-caller-wins behaviour — until a
    caller *claims* the clock with ``exclusive=True`` (normally
    ``SimKernel.bind_obs()``, once per run). While claimed, non-exclusive
    binds from other owners are ignored, so constructing a second
    ``Network`` can no longer silently rebind the tracer mid-run. A new
    exclusive claim (a new run) takes over. Returns True when the bind
    took effect.
    """
    global _clock_owner, _clock_claimed
    if _clock_claimed and not exclusive and owner is not _clock_owner:
        return False
    _clock_owner = owner
    _clock_claimed = bool(exclusive)
    tracer.clock = clock
    return True


def unbind_clock():
    """Release any claim and reset the tracer clock to zero."""
    global _clock_owner, _clock_claimed
    _clock_owner = None
    _clock_claimed = False
    tracer.clock = lambda: 0.0


def span(name, **attributes):
    """A tracer span when tracing is on; a shared no-op context otherwise."""
    if tracing:
        return tracer.span(name, **attributes)
    return _NULL_CONTEXT
