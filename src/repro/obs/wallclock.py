"""Wall-clock metrics scrape path for the real-socket service mode.

:class:`~repro.obs.timeseries.TimeSeriesScraper` samples on the
*simulated* clock — a periodic kernel task with a deterministic time
base. The service mode (:mod:`repro.service`) runs against real OS
sockets where the kernel clock only advances while the worker thread is
inside a query, so its curves need real elapsed time instead.
:class:`WallClockScraper` reuses the same selectors, ring series, and
export formats, but samples from a daemon thread on a monotonic
real-time interval; ``t_ms`` is milliseconds since :meth:`start`.

The scrape set grows one service-specific selector: resident set size
(:func:`rss_bytes`), the figure the soak harness bounds — a service
surviving an attack burst only counts if its memory stayed flat too.
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs.timeseries import DEFAULT_CAPACITY, TimeSeriesScraper, default_selectors

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes():
    """Current resident set size of this process in bytes (0 if unknown).

    Reads ``/proc/self/statm`` (present on every Linux the testbed runs
    on); on platforms without procfs the selector degrades to 0 rather
    than failing the scrape.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


def service_selectors():
    """The sim-rail scrape set plus the wall-clock-only RSS curve."""
    return default_selectors() + [("rss_bytes", lambda r: float(rss_bytes()))]


class WallClockScraper(TimeSeriesScraper):
    """Samples selectors into ring series from a real-time daemon thread.

    Inherits the selector/series/export machinery of the sim-clock
    scraper; only the time base and lifecycle differ. Selectors read
    counters and the cost meter without locking — safe under the GIL,
    and a torn read costs one slightly-stale sample, never corruption.
    """

    def __init__(
        self,
        registry,
        interval_s=1.0,
        capacity=DEFAULT_CAPACITY,
        selectors=None,
    ):
        super().__init__(
            kernel=None,
            registry=registry,
            interval_ms=float(interval_s) * 1000.0,
            capacity=capacity,
            selectors=service_selectors() if selectors is None else selectors,
        )
        self._thread = None
        self._stop = threading.Event()
        self._started_at = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Take a t=0 baseline sample and start the scrape thread."""
        if self._thread is None:
            self._started_at = time.monotonic()
            self._stop.clear()
            self.scrape()
            self._thread = threading.Thread(
                target=self._run, name="wallclock-scrape", daemon=True
            )
            self._thread.start()
        return self

    def stop(self):
        """Stop the thread and take a final sample (series are kept)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self.scrape()

    def _run(self):
        while not self._stop.wait(self.interval_ms / 1000.0):
            self.scrape()

    # -- sampling ------------------------------------------------------------

    def elapsed_ms(self):
        if self._started_at is None:
            return 0.0
        return (time.monotonic() - self._started_at) * 1000.0

    def scrape(self, t_ms=None):
        """One sample at *t_ms* (default: real milliseconds since start)."""
        super().scrape(self.elapsed_ms() if t_ms is None else t_ms)
