"""Live campaign console: heartbeats, ETA, and a stall detector.

A :class:`ProgressConsole` rides the kernel's periodic-task rail
(:meth:`SimKernel.every`) and prints one heartbeat line per simulated
interval to stderr — stdout stays reserved for reports, which must
remain byte-identical with telemetry on or off::

    [sim 0:02:05 | wall 1.8s] scan: 214/400 done · 32 in-flight ·
        0 quarantined · sheds 0 · breaker opens 0 · ETA 1.6s

Counts are *pulled* from the metrics registry (completed, in-flight,
quarantined, guard sheds, breaker opens), so the console adds no
bookkeeping to the hot paths beyond the counters they already maintain.
ETA extrapolates from the wall-clock completion rate.

The **stall detector** watches the campaign's progress counters: when
no forward movement happens for ``stall_after_ms`` of simulated time,
it emits a ``campaign.stall`` event into the journal — which, by the
flight-recorder contract, dumps the recent-history ring to the JSONL
sink — and prints a stderr warning. One report per stall episode; the
detector re-arms when progress resumes.

:class:`LiveTelemetry` is the one-stop wiring used by the CLI: it
builds the journal (``--events-out``), the time-series scraper
(``--series-out`` / ``--progress``), and the console (``--progress``),
and tears them down in :meth:`finish` (final scrape, series file,
summary line).
"""

from __future__ import annotations

import sys
import time

from repro.obs.events import EventJournal
from repro.obs.timeseries import TimeSeriesScraper, family_sum


def _fmt_sim(ms):
    seconds = int(ms // 1000)
    return f"{seconds // 3600}:{(seconds // 60) % 60:02d}:{seconds % 60:02d}"


def _fmt_eta(seconds):
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressConsole:
    """Heartbeat printer + stall detector on the periodic-task rail."""

    def __init__(
        self,
        kernel,
        registry,
        stream=None,
        heartbeat_ms=1000.0,
        stall_after_ms=30_000.0,
        journal=None,
        label="campaign",
    ):
        self.kernel = kernel
        self.registry = registry
        self.stream = stream if stream is not None else sys.stderr
        self.heartbeat_ms = float(heartbeat_ms)
        self.stall_after_ms = float(stall_after_ms)
        self.journal = journal
        self.label = label
        self.expected = None
        self.heartbeats = 0
        self.stalls = 0
        self._task = None
        self._wall_start = time.perf_counter()
        self._done_base = 0
        self._phase_wall_start = self._wall_start
        self._last_progress = None
        self._last_progress_ms = 0.0
        self._stall_reported = False

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self._task is None:
            self._task = self.kernel.every(
                self.heartbeat_ms, self.tick, name="progress-heartbeat"
            )
        return self

    def stop(self):
        if self._task is not None:
            self.kernel.cancel(self._task)
            self._task = None

    def expect(self, total):
        """Declare the size of the *current* batch (enables x/N and ETA).

        The completed counter is cumulative across a run's phases, so
        each ``expect`` re-baselines it: heartbeats show this batch's
        progress, and ETA extrapolates from this batch's rate.
        """
        self.expected = int(total)
        self._done_base = self._raw_done()
        self._phase_wall_start = time.perf_counter()
        return self

    def phase(self, label):
        """Name the campaign phase shown on heartbeat lines."""
        self.label = label
        return self

    # -- registry views ------------------------------------------------------

    def _raw_done(self):
        return int(family_sum(self.registry, "repro_campaign_completed_total"))

    def _done(self):
        return self._raw_done() - self._done_base

    def _progress_value(self):
        """A monotone activity measure: any forward motion resets the
        stall clock, even when no job has fully completed yet."""
        return (
            family_sum(self.registry, "repro_campaign_completed_total")
            + family_sum(self.registry, "repro_scan_queries_total")
            + family_sum(self.registry, "repro_probe_responses_total")
        )

    def snapshot(self):
        """The counts a heartbeat renders, as a dict (tests hook here)."""
        return {
            "done": self._done(),
            "inflight": int(family_sum(self.registry, "repro_inflight_sessions")),
            "quarantined": int(
                family_sum(self.registry, "repro_campaign_quarantined_total")
            ),
            "sheds": int(family_sum(self.registry, "repro_guard_shed_total")),
            "breaker_opens": int(
                family_sum(
                    self.registry, "repro_circuit_transitions_total", to="open"
                )
            ),
        }

    def _eta_seconds(self, done):
        phase_wall_s = time.perf_counter() - self._phase_wall_start
        if self.expected is None or done <= 0 or phase_wall_s <= 0:
            return None
        remaining = max(0, self.expected - done)
        rate = done / phase_wall_s
        return remaining / rate if rate > 0 else None

    # -- the heartbeat -------------------------------------------------------

    def tick(self, now_ms):
        """One heartbeat at simulated *now_ms* (periodic-task callback)."""
        counts = self.snapshot()
        progress = self._progress_value()
        if self._last_progress is None or progress > self._last_progress:
            self._last_progress = progress
            self._last_progress_ms = now_ms
            self._stall_reported = False
        elif (
            not self._stall_reported
            and now_ms - self._last_progress_ms >= self.stall_after_ms
        ):
            self._report_stall(now_ms, now_ms - self._last_progress_ms)
        wall_s = time.perf_counter() - self._wall_start
        done = counts["done"]
        total = f"/{self.expected}" if self.expected is not None else ""
        eta = _fmt_eta(self._eta_seconds(done))
        self.stream.write(
            f"[sim {_fmt_sim(now_ms)} | wall {wall_s:.1f}s] {self.label}: "
            f"{done}{total} done · {counts['inflight']} in-flight · "
            f"{counts['quarantined']} quarantined · "
            f"sheds {counts['sheds']} · "
            f"breaker opens {counts['breaker_opens']} · ETA {eta}\n"
        )
        self.heartbeats += 1

    def _report_stall(self, now_ms, idle_ms):
        self.stalls += 1
        self._stall_reported = True
        if self.journal is not None:
            # campaign.stall is in the journal's dump_on set: this emits
            # the event *and* flushes the flight-recorder ring.
            self.journal.emit(
                "campaign.stall", now_ms, label=self.label, idle_ms=round(idle_ms)
            )
        self.stream.write(
            f"[sim {_fmt_sim(now_ms)}] STALL: {self.label} made no progress for "
            f"{idle_ms / 1000:.0f} simulated seconds — flight recorder dumped\n"
        )

    def finish(self):
        """Stop the heartbeat and print a final summary line."""
        self.stop()
        wall_s = time.perf_counter() - self._wall_start
        counts = self.snapshot()
        now_ms = self.kernel.clock.read()
        self.stream.write(
            f"[sim {_fmt_sim(now_ms)} | wall {wall_s:.1f}s] {self.label}: "
            f"finished — {self._raw_done()} done · "
            f"{counts['quarantined']} quarantined · "
            f"{self.heartbeats} heartbeats · {self.stalls} stalls\n"
        )


class LiveTelemetry:
    """Wires journal + scraper + console for one CLI run.

    Build *after* the kernel exists and before the campaign runs; call
    :meth:`finish` after the campaign (final scrape, file writes,
    summary). The constructor leaves global obs flags untouched except
    for installing the journal/console handles via
    :func:`repro.obs.attach_journal` / the ``obs.console`` slot.
    """

    def __init__(
        self,
        kernel,
        events_out=None,
        series_out=None,
        progress=False,
        scrape_interval_ms=500.0,
        seed=0,
        label="campaign",
        stream=None,
    ):
        from repro import obs

        self.kernel = kernel
        self.series_out = series_out
        self._events_path = None
        self._sink = None
        self.journal = None
        self.scraper = None
        self.console = None
        stream = stream if stream is not None else sys.stderr

        if events_out is not None:
            if events_out == "-":
                self._sink = stream
            else:
                self._events_path = events_out
                self._sink = open(events_out, "w", encoding="utf-8")
            self.journal = EventJournal(sink=self._sink, seed=seed)
            obs.attach_journal(self.journal)

        if series_out is not None or progress:
            self.scraper = TimeSeriesScraper(
                kernel, obs.registry, interval_ms=scrape_interval_ms
            ).start()

        if progress:
            self.console = ProgressConsole(
                kernel,
                obs.registry,
                stream=stream,
                journal=self.journal,
                label=label,
            ).start()
            obs.console = self.console

    def finish(self):
        """Final scrape, stop periodic tasks, write files, detach handles."""
        from repro import obs

        if self.scraper is not None:
            # One last sample at the campaign's final committed time so
            # terminal values are always captured regardless of phase.
            self.scraper.scrape(self.kernel.clock.read())
            self.scraper.stop()
            if self.series_out is not None:
                self.scraper.write(self.series_out)
        if self.console is not None:
            self.console.finish()
            if obs.console is self.console:
                obs.console = None
        if self.journal is not None:
            obs.attach_journal(None)
        if self._events_path is not None and self._sink is not None:
            self._sink.close()
            self._sink = None
