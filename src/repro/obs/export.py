"""Chrome-trace / Perfetto JSON export of span trees and journal events.

Produces the Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: a ``traceEvents`` array of complete spans
(``"ph": "X"``) plus instant events (``"ph": "i"``). The mapping:

- every finished **root span** gets its own thread lane (``tid`` 1..N,
  one track per traced session), its subtree flattened into complete
  events with microsecond ``ts``/``dur`` derived from simulated
  milliseconds — so the Perfetto timeline is the *simulated* timeline;
- span cost-meter deltas (SHA-1 compressions, NSEC3 hashes, signature
  verifications) and attributes land in ``args`` where the UI shows
  them on click;
- the **kernel event lane** (``tid`` 0) carries the journal's typed
  events (guard trips, breaker transitions, fault injections) as global
  instants, so incident markers line up against the span tracks.

``repro trace --trace-out run.json`` writes this document; load it in
the Perfetto UI to scrub through a probe's validation timeline.
"""

from __future__ import annotations

import json

#: Process id used for all lanes (one simulated run == one process).
_PID = 1
#: The journal/instant lane shared by kernel-level events.
KERNEL_LANE = 0


def _us(ms):
    """Simulated milliseconds → integer microseconds (trace ts unit)."""
    return int(round(float(ms) * 1000.0))


def _span_args(span):
    args = {str(k): str(v) for k, v in span.attributes.items()}
    cost = span.cost
    if cost is not None:
        for field_name in (
            "sha1_compressions",
            "nsec3_hashes",
            "signature_verifications",
        ):
            value = getattr(cost, field_name, 0)
            if value:
                args[field_name] = value
    return args


def _emit_span(span, tid, out):
    out.append(
        {
            "name": span.name,
            "ph": "X",
            "ts": _us(span.start_ms),
            "dur": max(0, _us(span.end_ms) - _us(span.start_ms))
            if span.end_ms is not None
            else 0,
            "pid": _PID,
            "tid": tid,
            "cat": "span",
            "args": _span_args(span),
        }
    )
    for child in span.children:
        _emit_span(child, tid, out)


def _thread_name(tid, name):
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": _PID,
        "tid": tid,
        "args": {"name": name},
    }


def chrome_trace(roots=(), events=(), process_name="repro"):
    """Build a Trace Event Format document (a JSON-able dict).

    *roots* are finished :class:`~repro.obs.trace.Span` roots (one lane
    each); *events* are journal :class:`~repro.obs.events.Event` objects
    for the kernel lane.
    """
    trace_events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": process_name},
        },
        _thread_name(KERNEL_LANE, "kernel events"),
    ]
    for index, root in enumerate(roots, start=1):
        label = root.name
        qname = root.attributes.get("qname")
        if qname:
            label = f"{label} {qname}"
        trace_events.append(_thread_name(index, label))
        _emit_span(root, index, trace_events)
    for event in events:
        trace_events.append(
            {
                "name": event.kind,
                "ph": "i",
                "s": "g",
                "ts": _us(event.t_ms),
                "pid": _PID,
                "tid": KERNEL_LANE,
                "cat": "event",
                "args": {
                    "seq": event.seq,
                    **{str(k): str(v) for k, v in event.fields.items()},
                },
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, roots=(), events=(), process_name="repro"):
    """Write :func:`chrome_trace` output to *path*; returns the document."""
    doc = chrome_trace(roots, events, process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True)
        handle.write("\n")
    return doc
