"""Resolver-side RFC 9276 compliance: Items 6–12 classification.

The paper probes each resolver with the 49 subdomains of
``rfc9276-in-the-wild.com`` and classifies it from the response matrix:

- *validating*: NOERROR + AD for ``valid``, SERVFAIL for ``expired``;
- *Item 6* (insecure above a limit): a delimiting value N such that
  ``it-n`` yields NXDOMAIN **with** AD for n ≤ N and NXDOMAIN **without**
  AD for n > N;
- *Item 8* (SERVFAIL above a limit): a threshold from which SERVFAIL is
  returned;
- *Item 10* (EDE 27) on those insecure/SERVFAIL responses;
- *Item 7* (integrity): a resolver implementing Item 6 must still
  SERVFAIL on ``it-2501-expired`` (expired signature over the NSEC3);
  answering NXDOMAIN means it skipped signature verification;
- *Item 12*: an insecure band followed by a SERVFAIL band at a higher
  threshold leaves a downgrade-attack window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.edns import EDE_UNSUPPORTED_NSEC3_ITERATIONS
from repro.dns.rcode import Rcode

#: The iteration counts probed by the paper (§4.2): 1–25 densely, then
#: steps of 25 up to 500, plus the vendor-threshold successors 51/101/151.
PROBE_ITERATIONS = tuple(
    sorted(set(range(0, 26)) | set(range(50, 501, 25)) | {51, 101, 151})
)


@dataclass(frozen=True)
class ProbeResult:
    """One response observed from a resolver for one probe zone."""

    rcode: int
    ad: bool = False
    ede_codes: tuple = ()
    ra: bool = True
    answered: bool = True

    @property
    def is_servfail(self):
        return self.answered and self.rcode == Rcode.SERVFAIL

    @property
    def is_nxdomain(self):
        return self.answered and self.rcode == Rcode.NXDOMAIN

    @property
    def is_secure_nxdomain(self):
        return self.is_nxdomain and self.ad

    @property
    def has_ede27(self):
        return EDE_UNSUPPORTED_NSEC3_ITERATIONS in self.ede_codes


@dataclass
class ResolverClassification:
    """The verdicts derived from one resolver's probe matrix."""

    resolver: str = ""
    is_validating: bool = False
    limits_iterations: bool = False
    implements_item6: bool = False
    insecure_threshold: int | None = None
    implements_item8: bool = False
    servfail_threshold: int | None = None
    ede27_support: bool = False
    item7_violation: bool = False
    item12_gap: bool = False
    notes: list = field(default_factory=list)

    @property
    def strict_servfail_at_one(self):
        """Resolvers that SERVFAIL for any non-zero iteration count.

        The paper found 418 of these; they render 87.8 % of NSEC3-enabled
        domains unreachable for negative answers.
        """
        return self.implements_item8 and self.servfail_threshold == 0


def _is_validating(matrix):
    valid = matrix.get("valid")
    expired = matrix.get("expired")
    if valid is None or expired is None:
        return False
    return (
        valid.answered
        and valid.rcode == Rcode.NOERROR
        and valid.ad
        and expired.is_servfail
    )


def _iteration_series(matrix):
    """The (iterations, ProbeResult) series present in the matrix, sorted."""
    series = []
    for key, result in matrix.items():
        if isinstance(key, int):
            series.append((key, result))
    series.sort()
    return series


def classify_resolver(matrix, resolver=""):
    """Classify one resolver from its probe response matrix.

    *matrix* maps probe identifiers to :class:`ProbeResult`: integer keys
    are ``it-N`` zones (0 denotes the compliant ``valid`` zone re-probed as
    an iteration point when present), and the string keys ``"valid"``,
    ``"expired"``, ``"it-2501-expired"`` are the control zones.
    """
    cls = ResolverClassification(resolver=resolver)
    cls.is_validating = _is_validating(matrix)
    if not cls.is_validating:
        cls.notes.append("not a validating resolver; Items 6-12 not applicable")
        return cls

    series = _iteration_series(matrix)
    if not series:
        cls.notes.append("no it-N probes present")
        return cls

    # --- Item 6: secure (AD) band followed by an insecure (no-AD) band.
    insecure_threshold = None
    saw_secure = False
    consistent_item6 = True
    for iterations, result in series:
        if result.is_secure_nxdomain:
            if insecure_threshold is not None:
                consistent_item6 = False  # AD reappeared above the limit
            saw_secure = True
        elif result.is_nxdomain:
            if insecure_threshold is None:
                insecure_threshold = iterations
        elif result.is_servfail:
            continue
    last_secure = max(
        (i for i, r in series if r.is_secure_nxdomain), default=None
    )
    if saw_secure and insecure_threshold is not None and consistent_item6:
        cls.implements_item6 = True
        cls.insecure_threshold = last_secure
    elif saw_secure and insecure_threshold is None:
        cls.notes.append("all probed iteration counts answered securely")

    # --- Item 8: SERVFAIL from some iteration count upward.
    servfail_points = [i for i, r in series if r.is_servfail]
    if servfail_points:
        first_servfail = min(servfail_points)
        # All probes at or above the first SERVFAIL must also SERVFAIL for
        # this to be a threshold rather than flakiness.
        tail = [r for i, r in series if i >= first_servfail]
        if all(r.is_servfail for r in tail):
            cls.implements_item8 = True
            below = [i for i, __ in series if i < first_servfail]
            cls.servfail_threshold = max(below) if below else 0
        else:
            cls.notes.append("non-monotonic SERVFAIL pattern; unstable resolver")

    cls.limits_iterations = cls.implements_item6 or cls.implements_item8

    # --- Item 10: EDE 27 on limiting responses.
    limiting = [
        r
        for i, r in series
        if (cls.implements_item6 and cls.insecure_threshold is not None and i > cls.insecure_threshold and r.is_nxdomain and not r.ad)
        or (cls.implements_item8 and cls.servfail_threshold is not None and i > cls.servfail_threshold and r.is_servfail)
    ]
    cls.ede27_support = bool(limiting) and any(r.has_ede27 for r in limiting)

    # --- Item 7: it-2501-expired must SERVFAIL when Item 6 is implemented.
    control = matrix.get("it-2501-expired")
    if cls.implements_item6 and control is not None and control.is_nxdomain:
        cls.item7_violation = True
        cls.notes.append(
            "Item 7 violated: accepted NSEC3 with expired RRSIG at 2501 iterations"
        )

    # --- Item 12: insecure band strictly below the SERVFAIL band.
    if (
        cls.implements_item6
        and cls.implements_item8
        and cls.insecure_threshold is not None
        and cls.servfail_threshold is not None
        and cls.servfail_threshold > cls.insecure_threshold
    ):
        # Verify an actual insecure (no-AD NXDOMAIN) response exists in the gap.
        gap = [
            r
            for i, r in series
            if cls.insecure_threshold < i <= cls.servfail_threshold
        ]
        if any(r.is_nxdomain and not r.ad for r in gap):
            cls.item12_gap = True
            cls.notes.append(
                f"Item 12: downgrade window between {cls.insecure_threshold} "
                f"and {cls.servfail_threshold} iterations"
            )
    return cls


def summarize(classifications):
    """Population-level counters matching the paper's §5.2 reporting."""
    totals = {
        "resolvers": 0,
        "validating": 0,
        "limit_iterations": 0,
        "item6": 0,
        "item8": 0,
        "servfail_at_one": 0,
        "ede27": 0,
        "item7_violations": 0,
        "item12_gaps": 0,
    }
    for cls in classifications:
        totals["resolvers"] += 1
        if not cls.is_validating:
            continue
        totals["validating"] += 1
        totals["limit_iterations"] += cls.limits_iterations
        totals["item6"] += cls.implements_item6
        totals["item8"] += cls.implements_item8
        totals["servfail_at_one"] += cls.strict_servfail_at_one
        totals["ede27"] += cls.ede27_support
        totals["item7_violations"] += cls.item7_violation
        totals["item12_gaps"] += cls.item12_gap
    return totals
