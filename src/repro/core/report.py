"""Full study report: every paper artifact in one text document.

:func:`render_study_report` combines the outputs of both measurement
pipelines into a single report mirroring the paper's §5 structure —
useful as the one-call entry point for downstream users who just want
"run the study, show me everything".
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.figures import figure1_series, figure3_series
from repro.analysis.stats import domain_headline_stats, resolver_headline_stats
from repro.analysis.tables import format_operator_table, operator_table
from repro.core.guidance import GUIDANCE


def _section(title):
    bar = "=" * len(title)
    return f"\n{title}\n{bar}\n"


def render_study_report(
    domain_results,
    total_domains,
    tld_results=None,
    survey_entries=None,
    title="RFC 9276 compliance study (synthetic reproduction)",
):
    """Render the full study as text.

    *domain_results* — stage-2 scan results; *tld_results* — TLD scan
    results; *survey_entries* — resolver survey entries (open + closed).
    Sections without data are omitted.
    """
    lines = [title, "*" * len(title)]

    lines.append(_section("Guidance under test (RFC 9276, paper Table 1)"))
    for item in GUIDANCE:
        lines.append(f"  Item {item.number:2d} [{item.keyword.value}] {item.summary}")

    lines.append(_section("Domain names (paper §5.1)"))
    headline = domain_headline_stats(domain_results, total_domains)
    for label, paper, measured in headline.rows():
        lines.append(f"  {label:42s} paper={paper:>6}  measured={measured}")

    figure1 = figure1_series(domain_results)
    if len(figure1.iterations_cdf):
        lines.append("\n  Figure 1 — CDFs over NSEC3-enabled domains:")
        lines.append(f"  {'x':>5s} {'iter ≤ x (%)':>13s} {'salt ≤ x B (%)':>15s}")
        for x, it_pct, salt_pct in figure1.rows((0, 1, 5, 10, 25, 50, 150, 500)):
            lines.append(f"  {x:5d} {it_pct:13.1f} {salt_pct:15.1f}")

    rows = operator_table(domain_results)
    if rows:
        lines.append("\n  Table 2 — authoritative operators:")
        for text_line in format_operator_table(rows).splitlines():
            lines.append("  " + text_line)

    if tld_results:
        nsec3 = [r for r in tld_results if r.nsec3_enabled]
        lines.append(_section("Top-level domains (paper §5.1)"))
        iteration_counts = Counter(r.report.iterations for r in nsec3)
        lines.append(f"  NSEC3-enabled TLDs: {len(nsec3)} / {len(tld_results)}")
        lines.append(f"  iteration values: {dict(sorted(iteration_counts.items()))}")
        lines.append(
            f"  opt-out: {sum(r.report.opt_out for r in nsec3)} "
            f"({100.0 * sum(r.report.opt_out for r in nsec3) / len(nsec3):.1f} %)"
            if nsec3
            else "  (no NSEC3 TLDs)"
        )

    if survey_entries:
        lines.append(_section("Validating resolvers (paper §5.2)"))
        classifications = [entry.classification for entry in survey_entries]
        resolver_headline = resolver_headline_stats(classifications)
        for label, paper, measured in resolver_headline.rows():
            lines.append(f"  {label:40s} paper={paper:>6}  measured={measured}")

        thresholds = Counter(
            cls.insecure_threshold
            for cls in classifications
            if cls.implements_item6 and cls.insecure_threshold is not None
        )
        lines.append(f"\n  Item 6 thresholds: {dict(sorted(thresholds.items()))}")

        figure3 = figure3_series(survey_entries, "all probed resolvers")
        lines.append(f"\n  Figure 3 — all categories ({figure3.validators} validators):")
        lines.append(f"  {'it-N':>6s} {'NXDOMAIN%':>10s} {'AD+NX%':>8s} {'SERVFAIL%':>10s}")
        for count in (1, 25, 50, 51, 100, 101, 150, 151, 300, 500):
            if count in figure3.series:
                nx, adnx, servfail = figure3.series[count]
                lines.append(f"  {count:6d} {nx:10.1f} {adnx:8.1f} {servfail:10.1f}")

    lines.append(_section("Verdict"))
    lines.append(
        f"  {headline.non_compliant_pct:.1f} % of NSEC3-enabled domains fail "
        "RFC 9276 Item 2 (paper: 87.8 %). Zeros are heroes."
    )
    return "\n".join(lines)
