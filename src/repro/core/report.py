"""Full study report: every paper artifact in one text document.

:class:`StudyAggregates` folds scan results, TLD results, and survey
entries into bounded-memory accumulators as they arrive, and renders the
paper's §5 structure from the aggregates alone — the streaming study
pipeline feeds it one record at a time and never holds the result lists.

:func:`render_study_report` keeps the original list-at-once signature as
a thin wrapper that folds the lists through the *same* accumulators, so
the streamed and materialised paths are byte-identical by construction
(CI asserts it end-to-end, clean and under chaos faults).
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.figures import Figure1Accumulator, Figure3Accumulator
from repro.analysis.stats import (
    DomainHeadlineAccumulator,
    ResolverHeadlineAccumulator,
)
from repro.analysis.tables import OperatorTableAccumulator, format_operator_table
from repro.core.guidance import GUIDANCE

DEFAULT_TITLE = "RFC 9276 compliance study (synthetic reproduction)"


def _section(title):
    bar = "=" * len(title)
    return f"\n{title}\n{bar}\n"


class StudyAggregates:
    """Incremental study state: everything the report needs, O(1) in the
    number of domains scanned.

    Feed records with :meth:`update_domain` / :meth:`update_tld` /
    :meth:`update_survey` in arrival order, then :meth:`render`.
    Sections with no records folded in are omitted, mirroring the
    optional list arguments of :func:`render_study_report`.
    """

    def __init__(self):
        self.domain_headline = DomainHeadlineAccumulator()
        self.figure1 = Figure1Accumulator()
        self.operators = OperatorTableAccumulator()
        self.tlds_seen = 0
        self.tld_nsec3 = 0
        self.tld_iteration_counts = Counter()
        self.tld_opt_out = 0
        self.survey_seen = 0
        self.resolver_headline = ResolverHeadlineAccumulator()
        self.item6_thresholds = Counter()
        self.figure3 = Figure3Accumulator()

    def update_domain(self, result):
        """Fold one stage-2 :class:`DomainScanResult`."""
        self.domain_headline.update(result)
        self.figure1.update(result)
        self.operators.update(result)
        return self

    def update_tld(self, result):
        """Fold one TLD scan result."""
        self.tlds_seen += 1
        if result.nsec3_enabled:
            self.tld_nsec3 += 1
            self.tld_iteration_counts[result.report.iterations] += 1
            self.tld_opt_out += result.report.opt_out
        return self

    def update_survey(self, entry):
        """Fold one resolver :class:`SurveyEntry`."""
        self.survey_seen += 1
        classification = entry.classification
        self.resolver_headline.update(classification)
        if (
            classification.implements_item6
            and classification.insecure_threshold is not None
        ):
            self.item6_thresholds[classification.insecure_threshold] += 1
        self.figure3.update(entry)
        return self

    def render(self, total_domains, title=DEFAULT_TITLE):
        """Render the full study as text from the folded aggregates."""
        lines = [title, "*" * len(title)]

        lines.append(_section("Guidance under test (RFC 9276, paper Table 1)"))
        for item in GUIDANCE:
            lines.append(f"  Item {item.number:2d} [{item.keyword.value}] {item.summary}")

        lines.append(_section("Domain names (paper §5.1)"))
        headline = self.domain_headline.headline(total_domains)
        for label, paper, measured in headline.rows():
            lines.append(f"  {label:42s} paper={paper:>6}  measured={measured}")

        figure1 = self.figure1.figure()
        if len(figure1.iterations_cdf):
            lines.append("\n  Figure 1 — CDFs over NSEC3-enabled domains:")
            lines.append(f"  {'x':>5s} {'iter ≤ x (%)':>13s} {'salt ≤ x B (%)':>15s}")
            for x, it_pct, salt_pct in figure1.rows((0, 1, 5, 10, 25, 50, 150, 500)):
                lines.append(f"  {x:5d} {it_pct:13.1f} {salt_pct:15.1f}")

        rows = self.operators.rows()
        if rows:
            lines.append("\n  Table 2 — authoritative operators:")
            for text_line in format_operator_table(rows).splitlines():
                lines.append("  " + text_line)

        if self.tlds_seen:
            lines.append(_section("Top-level domains (paper §5.1)"))
            lines.append(f"  NSEC3-enabled TLDs: {self.tld_nsec3} / {self.tlds_seen}")
            lines.append(
                f"  iteration values: {dict(sorted(self.tld_iteration_counts.items()))}"
            )
            lines.append(
                f"  opt-out: {self.tld_opt_out} "
                f"({100.0 * self.tld_opt_out / self.tld_nsec3:.1f} %)"
                if self.tld_nsec3
                else "  (no NSEC3 TLDs)"
            )

        if self.survey_seen:
            lines.append(_section("Validating resolvers (paper §5.2)"))
            resolver_headline = self.resolver_headline.headline()
            for label, paper, measured in resolver_headline.rows():
                lines.append(f"  {label:40s} paper={paper:>6}  measured={measured}")

            lines.append(
                f"\n  Item 6 thresholds: {dict(sorted(self.item6_thresholds.items()))}"
            )

            figure3 = self.figure3.figure("all probed resolvers")
            lines.append(
                f"\n  Figure 3 — all categories ({figure3.validators} validators):"
            )
            lines.append(
                f"  {'it-N':>6s} {'NXDOMAIN%':>10s} {'AD+NX%':>8s} {'SERVFAIL%':>10s}"
            )
            for count in (1, 25, 50, 51, 100, 101, 150, 151, 300, 500):
                if count in figure3.series:
                    nx, adnx, servfail = figure3.series[count]
                    lines.append(f"  {count:6d} {nx:10.1f} {adnx:8.1f} {servfail:10.1f}")

        lines.append(_section("Verdict"))
        lines.append(
            f"  {headline.non_compliant_pct:.1f} % of NSEC3-enabled domains fail "
            "RFC 9276 Item 2 (paper: 87.8 %). Zeros are heroes."
        )
        return "\n".join(lines)


def render_study_report(
    domain_results,
    total_domains,
    tld_results=None,
    survey_entries=None,
    title=DEFAULT_TITLE,
):
    """Render the full study as text.

    *domain_results* — stage-2 scan results; *tld_results* — TLD scan
    results; *survey_entries* — resolver survey entries (open + closed).
    Sections without data are omitted. Folds the lists through
    :class:`StudyAggregates`, the same accumulators the streaming
    pipeline updates record by record.
    """
    aggregates = StudyAggregates()
    for result in domain_results:
        aggregates.update_domain(result)
    for result in tld_results or ():
        aggregates.update_tld(result)
    for entry in survey_entries or ():
        aggregates.update_survey(entry)
    return aggregates.render(total_domains, title=title)
