"""Zone-side RFC 9276 compliance: Items 1–5 plus RFC 5155 consistency.

The paper's §4.1 pipeline keeps only domains that

1. return exactly one ``NSEC3PARAM`` record,
2. use identical parameters on all observed ``NSEC3`` records, and
3. use identical parameters between ``NSEC3`` and ``NSEC3PARAM`` records,

and calls those *NSEC3-enabled*. This module implements that filter and the
per-domain compliance verdicts that feed Figure 1, Table 2 and the headline
"87.8 % fail to adhere" number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Paper §5.1: opt-out is reasonable only for large, delegation-heavy zones.
#: Zones below this delegation count are "small" for Item 4 purposes.
SMALL_ZONE_DELEGATIONS = 1000


@dataclass(frozen=True)
class Nsec3Observation:
    """What a scan observed about one domain's NSEC3 configuration.

    ``nsec3param_records`` holds the parameter tuples
    ``(hash_algorithm, iterations, salt)`` of every NSEC3PARAM record at the
    apex; ``nsec3_records`` the tuples seen on NSEC3 records in negative
    responses; ``opt_out_seen`` whether any NSEC3 record had the opt-out
    flag set.
    """

    domain: str
    dnssec_enabled: bool = False
    nsec3param_records: tuple = ()
    nsec3_records: tuple = ()
    opt_out_seen: bool = False
    delegation_count: int = 0
    zone_published_openly: bool = False


@dataclass
class ZoneComplianceReport:
    """Per-domain verdicts for Items 1–5."""

    domain: str
    nsec3_enabled: bool = False
    exclusion_reason: str = ""
    iterations: int | None = None
    salt_length: int | None = None
    opt_out: bool = False
    item2_zero_iterations: bool = False
    item3_no_salt: bool = False
    item4_optout_ok: bool = True
    item1_nsec3_justified: bool | None = None
    violations: list = field(default_factory=list)

    @property
    def rfc9276_compliant(self):
        """Compliant in the paper's headline sense: Items 2 AND 3 both met.

        The paper's 87.8 % figure counts domains failing Item 2 alone;
        :attr:`item2_zero_iterations` exposes that directly.
        """
        return self.item2_zero_iterations and self.item3_no_salt


def check_rfc5155_consistency(observation):
    """Apply the paper's §4.1 filter. Returns (is_nsec3_enabled, reason)."""
    params = observation.nsec3param_records
    if not params:
        return False, "no NSEC3PARAM record"
    if len(params) > 1:
        return False, "more than one NSEC3PARAM record"
    if observation.nsec3_records:
        distinct = set(observation.nsec3_records)
        if len(distinct) > 1:
            return False, "inconsistent parameters among NSEC3 records"
        if params[0] != next(iter(distinct)):
            return False, "NSEC3 and NSEC3PARAM parameters differ"
    return True, ""


def check_zone_compliance(observation):
    """Audit one domain observation against RFC 9276 Items 1–5."""
    report = ZoneComplianceReport(domain=observation.domain)
    enabled, reason = check_rfc5155_consistency(observation)
    report.nsec3_enabled = enabled
    report.exclusion_reason = reason
    if not enabled:
        return report

    hash_algorithm, iterations, salt = observation.nsec3param_records[0]
    report.iterations = iterations
    report.salt_length = len(salt)
    report.opt_out = observation.opt_out_seen

    report.item2_zero_iterations = iterations == 0
    if not report.item2_zero_iterations:
        report.violations.append(
            f"Item 2 (MUST): {iterations} additional iterations (expected 0)"
        )

    report.item3_no_salt = len(salt) == 0
    if not report.item3_no_salt:
        report.violations.append(
            f"Item 3 (SHOULD NOT): salt of {len(salt)} bytes present"
        )

    small_zone = observation.delegation_count < SMALL_ZONE_DELEGATIONS
    if observation.opt_out_seen and small_zone:
        report.item4_optout_ok = False
        report.violations.append(
            "Item 4 (NOT RECOMMENDED): opt-out flag set on a small zone"
        )

    # Item 1 heuristic mirrors the paper's argument: a zone that openly
    # publishes its contents gains nothing from hashed denial.
    if observation.zone_published_openly:
        report.item1_nsec3_justified = False
        report.violations.append(
            "Item 1 (SHOULD): NSEC3 used although zone contents are public"
        )
    return report


def summarize(reports):
    """Aggregate counters over a collection of reports (paper §5.1 style)."""
    totals = {
        "domains": 0,
        "nsec3_enabled": 0,
        "item2_compliant": 0,
        "item3_compliant": 0,
        "both_compliant": 0,
        "opt_out": 0,
        "excluded": 0,
    }
    for report in reports:
        totals["domains"] += 1
        if not report.nsec3_enabled:
            totals["excluded"] += 1
            continue
        totals["nsec3_enabled"] += 1
        totals["item2_compliant"] += report.item2_zero_iterations
        totals["item3_compliant"] += report.item3_no_salt
        totals["both_compliant"] += report.rfc9276_compliant
        totals["opt_out"] += report.opt_out
    return totals
