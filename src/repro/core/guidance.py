"""RFC 9276 guidance items — Table 1 of the paper, as data.

Items 1–5 address authoritative name servers (zone-side settings); Items
6–12 address validating resolvers. Each item carries its RFC 2119
requirement keyword so reports can distinguish MUST violations from
ignored recommendations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Requirement(enum.Enum):
    """RFC 2119 requirement levels as used in RFC 9276."""

    MUST = "MUST"
    MUST_NOT = "MUST NOT"
    SHOULD = "SHOULD"
    SHOULD_NOT = "SHOULD NOT"
    RECOMMENDED = "RECOMMENDED"
    NOT_RECOMMENDED = "NOT RECOMMENDED"
    MAY = "MAY"


class Audience(enum.Enum):
    """Whom a guidance item addresses."""

    AUTHORITATIVE = "authoritative name server"
    RESOLVER = "validating resolver"


@dataclass(frozen=True)
class GuidanceItem:
    """One row of the paper's Table 1."""

    number: int
    keyword: Requirement
    audience: Audience
    summary: str

    def __str__(self):
        return f"Item {self.number} ({self.keyword.value}): {self.summary}"


#: The twelve items of RFC 9276 as summarised in the paper's Table 1.
GUIDANCE = (
    GuidanceItem(
        1,
        Requirement.SHOULD,
        Audience.AUTHORITATIVE,
        "prefer NSEC over NSEC3, if the NSEC3 operational or security "
        "features are not needed",
    ),
    GuidanceItem(
        2,
        Requirement.MUST,
        Audience.AUTHORITATIVE,
        "set the number of additional iterations to 0",
    ),
    GuidanceItem(
        3,
        Requirement.SHOULD_NOT,
        Audience.AUTHORITATIVE,
        "use a salt",
    ),
    GuidanceItem(
        4,
        Requirement.NOT_RECOMMENDED,
        Audience.AUTHORITATIVE,
        "set the opt-out flag for small zones",
    ),
    GuidanceItem(
        5,
        Requirement.MAY,
        Audience.AUTHORITATIVE,
        "set the opt-out flag for very large and sparsely signed zones with "
        "the majority of records insecure delegations",
    ),
    GuidanceItem(
        6,
        Requirement.MAY,
        Audience.RESOLVER,
        "return an insecure response if a queried name server returns NSEC3 "
        "resource records not complying with Item 2",
    ),
    GuidanceItem(
        7,
        Requirement.MUST,
        Audience.RESOLVER,
        "verify the RRSIG RRs for NSEC3 RRs in the answer of the "
        "authoritative server to ensure integrity of the number of "
        "additional iterations, if Item 6 is implemented",
    ),
    GuidanceItem(
        8,
        Requirement.MAY,
        Audience.RESOLVER,
        "set RCODE to SERVFAIL in the response to the client, if a queried "
        "name server returns NSEC3 RRs not complying with Item 2",
    ),
    GuidanceItem(
        9,
        Requirement.MAY,
        Audience.RESOLVER,
        "ignore the response of the queried name server, if it returns "
        "NSEC3 RRs not complying with Item 2, likely resulting in SERVFAIL",
    ),
    GuidanceItem(
        10,
        Requirement.SHOULD,
        Audience.RESOLVER,
        "return EDE information with INFO-CODE set to 27, if Item 6 or "
        "Item 8 are implemented",
    ),
    GuidanceItem(
        11,
        Requirement.MUST_NOT,
        Audience.RESOLVER,
        "return EDE information as in Item 10, if Item 9 is implemented",
    ),
    GuidanceItem(
        12,
        Requirement.SHOULD,
        Audience.RESOLVER,
        "set the number of iterations starting from which Item 6 and Item 8 "
        "are implemented to the same value if both are implemented",
    ),
)


def item(number):
    """Look up a guidance item by its Table 1 number."""
    for entry in GUIDANCE:
        if entry.number == number:
            return entry
    raise KeyError(f"no guidance item {number}")
