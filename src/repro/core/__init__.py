"""The paper's primary contribution: an RFC 9276 compliance engine.

- :mod:`repro.core.guidance` — Table 1 of the paper (the twelve guidance
  items of RFC 9276) encoded as first-class rule objects.
- :mod:`repro.core.zone_compliance` — Items 1–5 audits for zones/domains,
  plus the RFC 5155 consistency checks of paper §4.1.
- :mod:`repro.core.resolver_compliance` — Items 6–12 classification of a
  resolver from its observed responses to the ``it-N`` probe zones
  (paper §4.2/§5.2).
"""

from repro.core.guidance import GUIDANCE, GuidanceItem, Requirement
from repro.core.zone_compliance import (
    Nsec3Observation,
    ZoneComplianceReport,
    check_zone_compliance,
)
from repro.core.resolver_compliance import (
    ProbeResult,
    ResolverClassification,
    classify_resolver,
)

__all__ = [
    "GUIDANCE",
    "GuidanceItem",
    "Requirement",
    "Nsec3Observation",
    "ZoneComplianceReport",
    "check_zone_compliance",
    "ProbeResult",
    "ResolverClassification",
    "classify_resolver",
]
