"""Pure-Python public-key cryptography for DNSSEC.

The study's control zones (``expired``, ``it-2501-expired``) only behave
correctly if resolvers *really* verify signatures, so this package provides
working RSA (PKCS#1 v1.5 with SHA-1/SHA-256) and ECDSA P-256
implementations rather than stubs. Keys default to small-but-functional
sizes so that signing thousands of synthetic zones stays fast; the code
paths are identical to production-size keys.

This is reproduction infrastructure, not a hardened cryptographic library:
no constant-time guarantees, no side-channel defences.
"""

from repro.crypto.keys import (
    ALG_RSASHA1,
    ALG_RSASHA256,
    ALG_ECDSAP256SHA256,
    KeyPair,
    generate_keypair,
    make_ds,
)

__all__ = [
    "ALG_RSASHA1",
    "ALG_RSASHA256",
    "ALG_ECDSAP256SHA256",
    "KeyPair",
    "generate_keypair",
    "make_ds",
]
