"""RSA key generation and PKCS#1 v1.5 signatures (RFC 8017 subset).

DNSSEC algorithms 5 (RSASHA1) and 8 (RSASHA256) use this scheme
(RFC 3110 / RFC 5702). The DNSKEY public-key wire format is implemented in
:func:`encode_public_key` / :func:`decode_public_key`.
"""

from __future__ import annotations

import hashlib
import random

from repro import fastpath
from repro.crypto.primes import generate_prime

# DigestInfo DER prefixes for EMSA-PKCS1-v1_5 (RFC 8017 §9.2 notes).
_DIGEST_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}

# EMSA-PKCS1-v1_5 head (everything before the digest) per (em_len, hash):
# the padding run and DigestInfo prefix depend only on those two, and a
# signer re-derives them for every record in a zone.
_EMSA_HEAD = {}


def _emsa_head(em_len, hash_name):
    head = _EMSA_HEAD.get((em_len, hash_name))
    if head is None:
        prefix = _DIGEST_PREFIX[hash_name]
        digest_len = hashlib.new(hash_name).digest_size
        t_len = len(prefix) + digest_len
        if em_len < t_len + 11:
            raise ValueError("RSA modulus too small for this digest")
        padding = b"\xff" * (em_len - t_len - 3)
        head = b"\x00\x01" + padding + b"\x00" + prefix
        _EMSA_HEAD[(em_len, hash_name)] = head
    return head


class RsaPrivateKey:
    """An RSA private key.

    ``(n, e, d)`` always; when the factors are known (freshly generated
    keys) the CRT parameters ``(p, q, dp, dq, qinv)`` are stored too and
    :meth:`sign` exponentiates modulo the half-size factors — the same
    signature, ~3–4x faster. Keys rebuilt from ``(n, e, d)`` alone fall
    back to the plain-``d`` path.
    """

    __slots__ = ("n", "e", "d", "bits", "size", "p", "q", "dp", "dq", "qinv")

    def __init__(self, n, e, d, p=None, q=None):
        self.n = n
        self.e = e
        self.d = d
        self.bits = n.bit_length()
        self.size = (self.bits + 7) // 8
        self.p = p
        self.q = q
        if p is not None and q is not None:
            self.dp = d % (p - 1)
            self.dq = d % (q - 1)
            self.qinv = pow(q, -1, p)
        else:
            self.dp = self.dq = self.qinv = None

    def public(self):
        return RsaPublicKey(self.n, self.e)

    def sign(self, message, hash_name="sha256"):
        """EMSA-PKCS1-v1_5 signature over *message*."""
        em = _pkcs1_encode(message, self.size, hash_name)
        c = int.from_bytes(em, "big")
        if self.dp is not None and fastpath.enabled("rsa_crt"):
            # Garner's recombination (RFC 8017 §5.1.2 second form).
            m1 = pow(c, self.dp, self.p)
            m2 = pow(c, self.dq, self.q)
            h = (self.qinv * (m1 - m2)) % self.p
            signature = m2 + h * self.q
        else:
            signature = pow(c, self.d, self.n)
        return signature.to_bytes(self.size, "big")

    def signer(self, hash_name="sha256"):
        """A ``message -> signature`` closure with per-key setup hoisted.

        Zone signing calls :meth:`sign` once per RRset with the same key
        and hash; the closure binds the EMSA head, the output size, and
        the CRT (or plain-``d``) parameters once instead of re-deriving
        them per record. The ``rsa_crt`` kill switch is honoured at
        closure-creation time, matching a signing loop that checks it
        per call — the switch never flips mid-zone.
        """
        head = _emsa_head(self.size, hash_name)
        size = self.size
        new = hashlib.new
        if self.dp is not None and fastpath.enabled("rsa_crt"):
            p, q, dp, dq, qinv = self.p, self.q, self.dp, self.dq, self.qinv

            def sign(message):
                c = int.from_bytes(head + new(hash_name, message).digest(), "big")
                m1 = pow(c, dp, p)
                m2 = pow(c, dq, q)
                return (m2 + ((qinv * (m1 - m2)) % p) * q).to_bytes(size, "big")

        else:
            n, d = self.n, self.d

            def sign(message):
                c = int.from_bytes(head + new(hash_name, message).digest(), "big")
                return pow(c, d, n).to_bytes(size, "big")

        return sign


class RsaPublicKey:
    """An RSA public key (n, e)."""

    __slots__ = ("n", "e", "bits", "size")

    def __init__(self, n, e):
        self.n = n
        self.e = e
        self.bits = n.bit_length()
        self.size = (self.bits + 7) // 8

    def verify(self, message, signature, hash_name="sha256"):
        """True iff *signature* is a valid PKCS#1 v1.5 signature of *message*."""
        k = self.size
        if len(signature) != k:
            return False
        decrypted = pow(int.from_bytes(signature, "big"), self.e, self.n)
        expected = _pkcs1_encode(message, k, hash_name)
        return decrypted.to_bytes(k, "big") == expected


def _pkcs1_encode(message, em_len, hash_name):
    digest = hashlib.new(hash_name, message).digest()
    return _emsa_head(em_len, hash_name) + digest


def generate_rsa_key(bits=1024, rng=None):
    """Generate an RSA key. 1024-bit keys keep the simulation fast.

    e is fixed to 65537; p and q are regenerated until the modulus has
    exactly *bits* bits and e is invertible mod λ(n). The factors are
    kept on the key so signing can use the CRT.
    """
    rng = rng or random
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng=rng)
        q = generate_prime(bits - bits // 2, rng=rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RsaPrivateKey(n, e, d, p=p, q=q)


def encode_public_key(key):
    """DNSKEY public key field for RSA (RFC 3110 §2)."""
    exponent = key.e.to_bytes((key.e.bit_length() + 7) // 8, "big")
    modulus = key.n.to_bytes((key.n.bit_length() + 7) // 8, "big")
    if len(exponent) <= 255:
        header = bytes([len(exponent)])
    else:
        header = b"\x00" + len(exponent).to_bytes(2, "big")
    return header + exponent + modulus


def decode_public_key(data):
    """Parse an RFC 3110 public key field into :class:`RsaPublicKey`."""
    if not data:
        raise ValueError("empty RSA public key")
    if data[0] != 0:
        exp_len = data[0]
        offset = 1
    else:
        if len(data) < 3:
            raise ValueError("truncated RSA exponent length")
        exp_len = int.from_bytes(data[1:3], "big")
        offset = 3
    if len(data) < offset + exp_len + 1:
        raise ValueError("truncated RSA public key")
    e = int.from_bytes(data[offset : offset + exp_len], "big")
    n = int.from_bytes(data[offset + exp_len :], "big")
    if n == 0 or e == 0:
        raise ValueError("degenerate RSA public key")
    return RsaPublicKey(n, e)
