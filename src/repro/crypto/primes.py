"""Probabilistic prime generation (Miller–Rabin) for RSA key material."""

from __future__ import annotations

import random

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(candidate, rounds=24, rng=None):
    """Miller–Rabin primality test with trial division pre-filter."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or random
    # Write candidate-1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for __ in range(rounds):
        a = rng.randrange(2, candidate - 1)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for __ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits, rng=None):
    """Generate a probable prime of exactly *bits* bits."""
    if bits < 8:
        raise ValueError("prime size too small to be useful")
    rng = rng or random
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate
