"""DNSSEC key management: algorithm registry, key pairs, DS digests.

Ties the raw RSA/ECDSA implementations to the DNSKEY/DS record formats of
RFC 4034 and friends.
"""

from __future__ import annotations

import hashlib
import random

from repro.crypto import ecdsa, rsa
from repro.dns.rdata.dnssec import (
    DNSKEY,
    DS,
    DS_DIGEST_SHA1,
    DS_DIGEST_SHA256,
    FLAG_SEP,
    FLAG_ZONE,
    PROTOCOL_DNSSEC,
)
from repro.dns.name import Name

#: DNSSEC algorithm numbers (IANA registry).
ALG_RSASHA1 = 5
ALG_RSASHA256 = 8
ALG_ECDSAP256SHA256 = 13

ALGORITHM_NAMES = {
    ALG_RSASHA1: "RSASHA1",
    ALG_RSASHA256: "RSASHA256",
    ALG_ECDSAP256SHA256: "ECDSAP256SHA256",
}

SUPPORTED_ALGORITHMS = frozenset(ALGORITHM_NAMES)

_RSA_HASH = {ALG_RSASHA1: "sha1", ALG_RSASHA256: "sha256"}


class UnsupportedAlgorithm(ValueError):
    """Raised when an algorithm number has no implementation here."""


class KeyPair:
    """A DNSSEC signing key: private key plus its DNSKEY record."""

    __slots__ = ("algorithm", "flags", "private", "dnskey", "_tag")

    def __init__(self, algorithm, flags, private):
        self.algorithm = int(algorithm)
        self.flags = int(flags)
        self.private = private
        self.dnskey = DNSKEY(
            flags, PROTOCOL_DNSSEC, algorithm, self._encode_public()
        )
        self._tag = self.dnskey.key_tag()

    def _encode_public(self):
        if self.algorithm in _RSA_HASH:
            return rsa.encode_public_key(self.private.public())
        if self.algorithm == ALG_ECDSAP256SHA256:
            return ecdsa.encode_public_key(self.private.public())
        raise UnsupportedAlgorithm(f"algorithm {self.algorithm}")

    @property
    def key_tag(self):
        return self._tag

    @property
    def is_ksk(self):
        return bool(self.flags & FLAG_SEP)

    def sign(self, message):
        """Sign raw bytes with this key's algorithm."""
        if self.algorithm in _RSA_HASH:
            return self.private.sign(message, _RSA_HASH[self.algorithm])
        if self.algorithm == ALG_ECDSAP256SHA256:
            return self.private.sign(message)
        raise UnsupportedAlgorithm(f"algorithm {self.algorithm}")

    def bulk_signer(self):
        """A ``message -> signature`` closure for many-RRset signing loops.

        For RSA keys this hoists the EMSA prefix and CRT context out of
        the loop (see :meth:`RsaPrivateKey.signer`); ECDSA signing has no
        per-key setup worth hoisting, so :meth:`sign` is returned as-is.
        """
        if self.algorithm in _RSA_HASH:
            return self.private.signer(_RSA_HASH[self.algorithm])
        return self.sign


def generate_keypair(algorithm=ALG_ECDSAP256SHA256, ksk=False, rsa_bits=1024, rng=None):
    """Generate a signing key pair for the given DNSSEC algorithm.

    ECDSA P-256 is the default because its keys generate in microseconds,
    which matters when the testbed signs thousands of zones.
    """
    rng = rng or random
    flags = FLAG_ZONE | (FLAG_SEP if ksk else 0)
    if algorithm in _RSA_HASH:
        private = rsa.generate_rsa_key(rsa_bits, rng=rng)
    elif algorithm == ALG_ECDSAP256SHA256:
        private = ecdsa.generate_ecdsa_key(rng)
    else:
        raise UnsupportedAlgorithm(f"algorithm {algorithm}")
    return KeyPair(algorithm, flags, private)


def verify_signature(dnskey, message, signature):
    """Verify *signature* over *message* with the public key in *dnskey*.

    Always performs the real public-key operation. The bounded,
    metered verification memo lives one layer up in
    :mod:`repro.dnssec.validator`, where RRset canonical forms make the
    memo key cheap and hit/miss counters are exported.
    """
    return _verify_signature_uncached(dnskey, message, signature)


def _verify_signature_uncached(dnskey, message, signature):
    algorithm = dnskey.algorithm
    if algorithm in _RSA_HASH:
        try:
            public = rsa.decode_public_key(dnskey.key)
        except ValueError:
            return False
        return public.verify(message, signature, _RSA_HASH[algorithm])
    if algorithm == ALG_ECDSAP256SHA256:
        try:
            public = ecdsa.decode_public_key(dnskey.key)
        except ValueError:
            return False
        return public.verify(message, signature)
    raise UnsupportedAlgorithm(f"algorithm {algorithm}")


def make_ds(owner, dnskey, digest_type=DS_DIGEST_SHA256):
    """Build the DS record a parent publishes for a child's KSK (RFC 4034 §5).

    The digest covers ``canonical-owner-name | DNSKEY-rdata``.
    """
    owner = Name.from_text(owner)
    material = owner.canonical_wire() + dnskey.to_wire()
    if digest_type == DS_DIGEST_SHA1:
        digest = hashlib.sha1(material).digest()
    elif digest_type == DS_DIGEST_SHA256:
        digest = hashlib.sha256(material).digest()
    else:
        raise UnsupportedAlgorithm(f"DS digest type {digest_type}")
    return DS(dnskey.key_tag(), dnskey.algorithm, digest_type, digest)


def ds_matches_dnskey(owner, ds, dnskey):
    """True iff *ds* is the digest of *dnskey* at *owner*."""
    if ds.key_tag != dnskey.key_tag() or ds.algorithm != dnskey.algorithm:
        return False
    try:
        expected = make_ds(owner, dnskey, ds.digest_type)
    except UnsupportedAlgorithm:
        return False
    return expected.digest == ds.digest
