"""ECDSA over NIST P-256 for DNSSEC algorithm 13 (RFC 6605).

A compact, correct implementation: Jacobian-coordinate point arithmetic,
RFC 6979-style deterministic nonces (HMAC-DRBG) so signatures are
reproducible under seeded tests, and the raw 64-byte r‖s signature format
DNSSEC uses (RFC 6605 §4).
"""

from __future__ import annotations

import hashlib
import hmac

# NIST P-256 domain parameters (FIPS 186-4 D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

_JAC_INF = (0, 0, 0)


def _inv(x, m):
    return pow(x, -1, m)


def _to_jacobian(point):
    if point is None:
        return _JAC_INF
    x, y = point
    return (x, y, 1)


def _from_jacobian(jac):
    x, y, z = jac
    if z == 0:
        return None
    zinv = _inv(z, P)
    zinv2 = zinv * zinv % P
    return (x * zinv2 % P, y * zinv2 * zinv % P)


def _jac_double(jac):
    x, y, z = jac
    if z == 0 or y == 0:
        return _JAC_INF
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = (3 * x * x + A * z * z % P * z % P * z) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jac_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = z1 * z1 % P
    z2sq = z2 * z2 % P
    u1 = x1 * z2sq % P
    u2 = x2 * z1sq % P
    s1 = y1 * z2sq * z2 % P
    s2 = y2 * z1sq * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _JAC_INF
        return _jac_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = h * h % P
    h3 = h2 * h % P
    u1h2 = u1 * h2 % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = h * z1 * z2 % P
    return (nx, ny, nz)


def _scalar_mult_jac(k, point):
    result = _JAC_INF
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        k >>= 1
    return result


def _scalar_mult(k, point):
    """k * point using double-and-add over Jacobian coordinates.

    Multiplications by the generator use a precomputed 2^i·G table, which
    roughly halves the work — signing and key generation dominate the cost
    of building the signed testbed, so this matters at scale.
    """
    if point == (GX, GY):
        return _from_jacobian(_base_mult_jac(k))
    return _from_jacobian(_scalar_mult_jac(k, point))


_BASE_TABLE = None


def _base_table():
    global _BASE_TABLE
    if _BASE_TABLE is None:
        table = []
        current = _to_jacobian((GX, GY))
        for __ in range(256):
            table.append(_from_jacobian(current))
            current = _jac_double(current)
        _BASE_TABLE = table
    return _BASE_TABLE


def _base_mult_jac(k):
    table = _base_table()
    result = _JAC_INF
    index = 0
    while k:
        if k & 1:
            result = _jac_add(result, _to_jacobian(table[index]))
        k >>= 1
        index += 1
    return result


def is_on_curve(point):
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + A * x + B)) % P == 0


def _bits_to_int(digest):
    value = int.from_bytes(digest, "big")
    excess = len(digest) * 8 - N.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_scalar, digest):
    """Deterministic nonce per RFC 6979 (HMAC-SHA256 DRBG)."""
    holen = 32
    x = private_scalar.to_bytes(32, "big")
    h1 = _bits_to_int(digest) % N
    h1 = h1.to_bytes(32, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits_to_int(v)
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


class EcdsaPrivateKey:
    """A P-256 private key."""

    __slots__ = ("d", "public_point")

    def __init__(self, d):
        if not 1 <= d < N:
            raise ValueError("private scalar out of range")
        self.d = d
        self.public_point = _scalar_mult(d, (GX, GY))

    def public(self):
        return EcdsaPublicKey(self.public_point)

    def sign(self, message):
        """Raw 64-byte r‖s signature over SHA-256(message)."""
        digest = hashlib.sha256(message).digest()
        z = _bits_to_int(digest)
        while True:
            k = _rfc6979_nonce(self.d, digest)
            point = _scalar_mult(k, (GX, GY))
            r = point[0] % N
            if r == 0:
                continue
            s = _inv(k, N) * (z + r * self.d) % N
            if s == 0:
                continue
            return r.to_bytes(32, "big") + s.to_bytes(32, "big")


class EcdsaPublicKey:
    """A P-256 public key (affine point)."""

    __slots__ = ("point",)

    def __init__(self, point):
        if point is None or not is_on_curve(point):
            raise ValueError("public key not on curve")
        self.point = point

    def verify(self, message, signature):
        """Verify a raw 64-byte r‖s signature."""
        if len(signature) != 64:
            return False
        r = int.from_bytes(signature[:32], "big")
        s = int.from_bytes(signature[32:], "big")
        if not (1 <= r < N and 1 <= s < N):
            return False
        digest = hashlib.sha256(message).digest()
        z = _bits_to_int(digest)
        w = _inv(s, N)
        u1 = z * w % N
        u2 = r * w % N
        point = _from_jacobian(
            _jac_add(_base_mult_jac(u1), _scalar_mult_jac(u2, self.point))
        )
        if point is None:
            return False
        return point[0] % N == r


def generate_ecdsa_key(rng):
    """Generate a P-256 key from the supplied RNG (seedable for tests)."""
    while True:
        d = rng.getrandbits(256)
        if 1 <= d < N:
            return EcdsaPrivateKey(d)


def encode_public_key(key):
    """DNSKEY public key field for algorithm 13: x‖y, 64 bytes (RFC 6605 §4)."""
    x, y = key.point
    return x.to_bytes(32, "big") + y.to_bytes(32, "big")


def decode_public_key(data):
    """Parse the 64-byte x‖y field into :class:`EcdsaPublicKey`."""
    if len(data) != 64:
        raise ValueError(f"P-256 public key must be 64 bytes, got {len(data)}")
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    return EcdsaPublicKey((x, y))
