"""The bulk scan engine (zdns-equivalent).

Sends large batches of queries through a shared recursive resolver — the
paper used Cloudflare 1.1.1.1 — with a client-side rate limit (their scan
averaged 14.7 K requests/s; see the ethics appendix). The limiter operates
on the simulated clock, so cache-hit-rate and load numbers in the ethics
ablation are meaningful.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro import obs
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.stub import StubClient


@dataclass
class ScanStats:
    """Bookkeeping for one scan campaign.

    Outcomes are kept per rcode (``rcodes``), so SERVFAIL-vs-NXDOMAIN
    splits survive aggregation; ``answered``/``timeouts`` are derived
    views kept for compatibility.
    """

    queries: int = 0
    #: Answered queries by (integer) rcode.
    rcodes: Counter = field(default_factory=Counter)
    unanswered: int = 0
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def answered(self):
        """Queries that got any response at all."""
        return sum(self.rcodes.values())

    @property
    def timeouts(self):
        """Queries unanswered after every retry."""
        return self.unanswered

    def rcode_counts(self):
        """Answered-query outcomes as ``{rcode text: count}``."""
        return {
            Rcode.to_text(rcode): count
            for rcode, count in sorted(self.rcodes.items())
        }

    @property
    def duration_ms(self):
        """Simulated wall-clock time spanned by the campaign."""
        return max(0.0, self.finished_ms - self.started_ms)

    @property
    def effective_qps(self):
        """Achieved queries/second on the simulated clock."""
        if self.duration_ms <= 0:
            return 0.0
        return self.queries / (self.duration_ms / 1000.0)


class ScanEngine:
    """Runs query batches against one upstream resolver."""

    def __init__(self, network, source_ip, resolver_ip, max_qps=None, retries=1):
        self.network = network
        self.client = StubClient(network, source_ip, retries=retries)
        self.resolver_ip = resolver_ip
        self.max_qps = max_qps
        self.stats = ScanStats()

    def query(self, qname, qtype=RdataType.A, want_dnssec=True, checking_disabled=False):
        """One rate-limited query; returns a :class:`StubAnswer`."""
        if self.stats.queries == 0:
            self.stats.started_ms = self.network.clock_ms
        if self.max_qps:
            # Keep the average request rate at or below the limit by
            # advancing the simulated clock when we are ahead of schedule.
            earliest = self.stats.started_ms + (
                self.stats.queries * 1000.0 / self.max_qps
            )
            if self.network.clock_ms < earliest:
                self.network.clock_ms = earliest
        answer = self.client.ask(
            self.resolver_ip,
            qname,
            qtype,
            want_dnssec=want_dnssec,
            checking_disabled=checking_disabled,
        )
        self.stats.queries += 1
        if answer.answered:
            self.stats.rcodes[answer.rcode] += 1
        else:
            self.stats.unanswered += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_scan_queries_total",
                "Scan-engine queries, by response rcode (timeout if none).",
                labelnames=("rcode",),
            ).labels(
                rcode=obs.rcode_label(answer.rcode, answer.answered)
            ).inc()
        self.stats.finished_ms = self.network.clock_ms
        return answer

    def run(self, jobs, want_dnssec=True, checking_disabled=False):
        """Run ``(qname, qtype)`` jobs; returns the list of answers.

        The DNSSEC flags apply to every job in the batch — callers that
        scan with CD set (measuring what zones publish rather than what a
        validator accepts) keep that behaviour through the batch API.
        """
        return [
            self.query(
                qname,
                qtype,
                want_dnssec=want_dnssec,
                checking_disabled=checking_disabled,
            )
            for qname, qtype in jobs
        ]
