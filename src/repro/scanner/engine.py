"""The bulk scan engine (zdns-equivalent).

Sends large batches of queries through a shared recursive resolver — the
paper used Cloudflare 1.1.1.1 — with a client-side rate limit (their scan
averaged 14.7 K requests/s; see the ethics appendix). The limiter operates
on the simulated clock, so cache-hit-rate and load numbers in the ethics
ablation are meaningful.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field

from repro import obs
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.sim import CampaignExecutor
from repro.resolver.stub import StubAnswer, StubClient
from repro.scanner.campaign import (
    CampaignResult,
    answer_from_record,
    answer_to_record,
    job_key,
)


#: Resolved per-rcode scan counters for the per-query hot path.
_SCAN_CHILDREN = obs.ChildCache()


def shard_source_ip(base_ip, index):
    """A deterministic scanner-fleet source address for shard *index*.

    Drawn from 100.64.0.0/10 (the CGNAT block), which none of the
    testbed allocators (10.0.0.0/16, 192.0.2.0/24, 198.18.0.0/15,
    2001:db8::/32) ever hand out, so shard sources can never collide
    with a deployed host. The base address is mixed in so two sharded
    engines on one network keep distinct fleets.
    """
    basis = zlib.crc32(str(base_ip).encode("utf-8")) & 0x3FF
    host = (basis * 251 + index) % (1 << 22)
    return f"100.{64 + (host >> 16)}.{(host >> 8) & 0xFF}.{host & 0xFF}"


@dataclass
class ScanStats:
    """Bookkeeping for one scan campaign.

    Outcomes are kept per rcode (``rcodes``), so SERVFAIL-vs-NXDOMAIN
    splits survive aggregation; ``answered``/``timeouts`` are derived
    views kept for compatibility.
    """

    queries: int = 0
    #: Answered queries by (integer) rcode.
    rcodes: Counter = field(default_factory=Counter)
    unanswered: int = 0
    started_ms: float = 0.0
    finished_ms: float = 0.0
    #: Extra per-target attempts spent absorbing flaky answers.
    reprobes: int = 0
    #: Campaign bookkeeping (see :meth:`ScanEngine.run_campaign`).
    requeued: int = 0
    recovered: int = 0
    resumed: int = 0

    @property
    def answered(self):
        """Queries that got any response at all."""
        return sum(self.rcodes.values())

    @property
    def timeouts(self):
        """Queries unanswered after every retry."""
        return self.unanswered

    def rcode_counts(self):
        """Answered-query outcomes as ``{rcode text: count}``."""
        return {
            Rcode.to_text(rcode): count
            for rcode, count in sorted(self.rcodes.items())
        }

    @property
    def duration_ms(self):
        """Simulated wall-clock time spanned by the campaign."""
        return max(0.0, self.finished_ms - self.started_ms)

    @property
    def effective_qps(self):
        """Achieved queries/second on the simulated clock."""
        if self.duration_ms <= 0:
            return 0.0
        return self.queries / (self.duration_ms / 1000.0)


class ScanEngine:
    """Runs query batches against one upstream resolver.

    *target_retries* is the per-target resilience knob: a query whose
    final answer is a timeout or SERVFAIL is re-asked up to that many
    extra times (the upstream path may just have had a bad moment — the
    paper re-queried flaky responders for the same reason). *breaker*
    is an optional shared circuit breaker handed to the transport.

    *concurrency* is the in-flight window: each query becomes a session
    on the network's simulation kernel, so up to that many overlap on
    the simulated clock (answers are byte-identical at any window size —
    sessions execute in submission order; only time overlaps). The
    default of 1 preserves exact serial behaviour. *shards* splits the
    stub-client hot path across that many source addresses (the paper's
    scan fleet), which also spreads per-source rate-limit buckets.
    """

    def __init__(
        self,
        network,
        source_ip,
        resolver_ip,
        max_qps=None,
        retries=1,
        target_retries=0,
        breaker=None,
        concurrency=1,
        shards=1,
    ):
        self.network = network
        self.client = StubClient(network, source_ip, retries=retries, breaker=breaker)
        self.resolver_ip = resolver_ip
        self.max_qps = max_qps
        self.target_retries = target_retries
        self.stats = ScanStats()
        self.concurrency = max(1, int(concurrency))
        self.shards = max(1, int(shards))
        if self.shards > 1:
            self._clients = [self.client] + [
                StubClient(
                    network,
                    shard_source_ip(source_ip, index),
                    retries=retries,
                    breaker=breaker,
                )
                for index in range(1, self.shards)
            ]
        else:
            self._clients = None
        self.executor = CampaignExecutor(network.kernel, self.concurrency)
        self._submitted = 0

    def _client_for(self, index):
        """The shard client owning query *index* (``self.client`` unsharded)."""
        if self._clients is None:
            return self.client
        return self._clients[index % self.shards]

    def drain(self):
        """Wait for every in-flight session; syncs stats to the makespan."""
        self.executor.drain()
        if self.stats.queries:
            self.stats.finished_ms = max(
                self.stats.finished_ms, self.network.kernel.now
            )

    def _ask(self, qname, qtype, want_dnssec, checking_disabled, client=None):
        """One rate-limited attempt (no outcome bookkeeping)."""
        if self.stats.queries == 0:
            self.stats.started_ms = self.network.clock_ms
        if self.max_qps:
            # Keep the average request rate at or below the limit by
            # advancing the simulated clock when we are ahead of schedule.
            earliest = self.stats.started_ms + (
                self.stats.queries * 1000.0 / self.max_qps
            )
            if self.network.clock_ms < earliest:
                self.network.clock_ms = earliest
        answer = (client or self.client).ask(
            self.resolver_ip,
            qname,
            qtype,
            want_dnssec=want_dnssec,
            checking_disabled=checking_disabled,
        )
        self.stats.queries += 1
        if obs.enabled:
            rcode_text = obs.rcode_label(answer.rcode, answer.answered)
            child = _SCAN_CHILDREN.get(obs.registry, rcode_text)
            if child is None:
                child = _SCAN_CHILDREN.put(
                    rcode_text,
                    obs.registry.counter(
                        "repro_scan_queries_total",
                        "Scan-engine queries, by response rcode "
                        "(timeout if none).",
                        labelnames=("rcode",),
                    ).labels(rcode=rcode_text),
                )
            child.inc()
        self.stats.finished_ms = self.network.clock_ms
        return answer

    @staticmethod
    def _transient(answer):
        """Outcomes worth a re-ask: no answer, or a (possibly fault-induced)
        SERVFAIL — genuine SERVFAILs are stable and survive the retries."""
        return not answer.answered or answer.rcode == Rcode.SERVFAIL

    def query(self, qname, qtype=RdataType.A, want_dnssec=True, checking_disabled=False):
        """One rate-limited query; returns a :class:`StubAnswer`.

        Only the final outcome lands in ``stats.rcodes``/``unanswered``;
        intermediate re-asks count as ``stats.reprobes`` (and as queries,
        for pacing — they are real traffic). With ``concurrency > 1``
        the query runs as one in-flight session on the kernel — the
        answer is still returned synchronously, while its simulated cost
        overlaps the window.
        """
        index = self._submitted
        self._submitted += 1
        return self.executor.submit(
            lambda: self._query_session(
                qname, qtype, want_dnssec, checking_disabled,
                self._client_for(index),
            )
        )

    def _query_session(self, qname, qtype, want_dnssec, checking_disabled, client):
        if obs.events:
            obs.emit("query.issued", qname=str(qname), qtype=int(qtype))
        answer = self._ask(qname, qtype, want_dnssec, checking_disabled, client)
        for __ in range(self.target_retries):
            if not self._transient(answer):
                break
            self.stats.reprobes += 1
            answer = self._ask(qname, qtype, want_dnssec, checking_disabled, client)
        if answer.answered:
            self.stats.rcodes[answer.rcode] += 1
        else:
            self.stats.unanswered += 1
        if obs.events:
            obs.emit(
                "query.completed",
                qname=str(qname),
                rcode=obs.rcode_label(answer.rcode, answer.answered),
            )
        if obs.enabled:
            obs.registry.counter(
                "repro_campaign_completed_total",
                "Campaign jobs settled (scan targets / surveyed resolvers).",
                labelnames=("campaign",),
            ).labels(campaign="scan").inc()
        return answer

    def run(self, jobs, want_dnssec=True, checking_disabled=False):
        """Run ``(qname, qtype)`` jobs; returns the list of answers.

        The DNSSEC flags apply to every job in the batch — callers that
        scan with CD set (measuring what zones publish rather than what a
        validator accepts) keep that behaviour through the batch API.
        """
        jobs = list(jobs)
        if obs.console is not None:
            obs.console.expect(len(jobs))
        answers = [
            self.query(
                qname,
                qtype,
                want_dnssec=want_dnssec,
                checking_disabled=checking_disabled,
            )
            for qname, qtype in jobs
        ]
        self.drain()
        return answers

    def run_campaign(
        self,
        jobs,
        want_dnssec=True,
        checking_disabled=False,
        checkpoint=None,
        requeue_attempts=1,
        requeue_delay_ms=1000.0,
    ):
        """A fault-tolerant, resumable batch run.

        Targets whose query stays unanswered are quarantined and requeued
        at the end of the campaign (up to *requeue_attempts* extra
        passes, waiting *requeue_delay_ms* of simulated time before each
        so transient outages can clear). With a
        :class:`~repro.scanner.campaign.CampaignCheckpoint`, every final
        outcome is persisted and a resumed campaign issues **zero**
        queries for already-completed targets. Returns a
        :class:`~repro.scanner.campaign.CampaignResult` with answers
        aligned to *jobs*.
        """
        jobs = list(jobs)
        if obs.console is not None:
            obs.console.expect(len(jobs))
        result = CampaignResult()
        answers = {}
        deferred = []

        def settle(key, answer):
            answers[key] = answer
            if checkpoint is not None:
                checkpoint.record(key, answer_to_record(answer))

        for qname, qtype in jobs:
            key = job_key(qname, qtype)
            if key in answers:
                continue  # duplicate job: one query serves both
            if checkpoint is not None and checkpoint.done(key):
                answers[key] = answer_from_record(checkpoint.get(key))
                result.resumed += 1
                continue
            answer = self.query(
                qname, qtype, want_dnssec=want_dnssec,
                checking_disabled=checking_disabled,
            )
            if not answer.answered:
                deferred.append((key, qname, qtype))
                continue
            settle(key, answer)

        # Count requeues idempotently by job key: with a checkpoint the
        # "entered the requeue" flag is journaled, so a target whose
        # requeue straddles a crash/resume boundary is counted once, not
        # once per resumed run.
        if checkpoint is not None:
            result.requeued = sum(
                1 for key, __, __ in deferred if checkpoint.note(key, "requeued")
            )
        else:
            result.requeued = len(deferred)
        if obs.enabled and result.requeued:
            obs.registry.counter(
                "repro_campaign_requeued_total",
                "Targets quarantined for an end-of-campaign requeue pass "
                "(counted once per job key across resumes).",
                labelnames=("campaign",),
            ).labels(campaign="scan").inc(result.requeued)
        for __ in range(requeue_attempts):
            if not deferred:
                break
            # The requeue pass waits out the delay *after* every main-pass
            # session has completed on the kernel clock.
            self.drain()
            if requeue_delay_ms:
                self.network.clock_ms += requeue_delay_ms
            still_failing = []
            for key, qname, qtype in deferred:
                answer = self.query(
                    qname, qtype, want_dnssec=want_dnssec,
                    checking_disabled=checking_disabled,
                )
                if answer.answered:
                    result.recovered += 1
                    settle(key, answer)
                else:
                    still_failing.append((key, qname, qtype))
            deferred = still_failing

        for key, __qname, __qtype in deferred:
            # Exhausted: record the timeout so a resume does not re-burn
            # budget on it (re-scan without the checkpoint to insist).
            result.failed.append(key)
            settle(key, StubAnswer.timeout())

        self.drain()
        if checkpoint is not None:
            checkpoint.flush()
        self.stats.requeued += result.requeued
        self.stats.recovered += result.recovered
        self.stats.resumed += result.resumed
        result.answers = [answers[job_key(qname, qtype)] for qname, qtype in jobs]
        return result
