"""The bulk scan engine (zdns-equivalent).

Sends large batches of queries through a shared recursive resolver — the
paper used Cloudflare 1.1.1.1 — with a client-side rate limit (their scan
averaged 14.7 K requests/s; see the ethics appendix). The limiter operates
on the simulated clock, so cache-hit-rate and load numbers in the ethics
ablation are meaningful.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro import obs
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.stub import StubAnswer, StubClient
from repro.scanner.campaign import (
    CampaignResult,
    answer_from_record,
    answer_to_record,
    job_key,
)


@dataclass
class ScanStats:
    """Bookkeeping for one scan campaign.

    Outcomes are kept per rcode (``rcodes``), so SERVFAIL-vs-NXDOMAIN
    splits survive aggregation; ``answered``/``timeouts`` are derived
    views kept for compatibility.
    """

    queries: int = 0
    #: Answered queries by (integer) rcode.
    rcodes: Counter = field(default_factory=Counter)
    unanswered: int = 0
    started_ms: float = 0.0
    finished_ms: float = 0.0
    #: Extra per-target attempts spent absorbing flaky answers.
    reprobes: int = 0
    #: Campaign bookkeeping (see :meth:`ScanEngine.run_campaign`).
    requeued: int = 0
    recovered: int = 0
    resumed: int = 0

    @property
    def answered(self):
        """Queries that got any response at all."""
        return sum(self.rcodes.values())

    @property
    def timeouts(self):
        """Queries unanswered after every retry."""
        return self.unanswered

    def rcode_counts(self):
        """Answered-query outcomes as ``{rcode text: count}``."""
        return {
            Rcode.to_text(rcode): count
            for rcode, count in sorted(self.rcodes.items())
        }

    @property
    def duration_ms(self):
        """Simulated wall-clock time spanned by the campaign."""
        return max(0.0, self.finished_ms - self.started_ms)

    @property
    def effective_qps(self):
        """Achieved queries/second on the simulated clock."""
        if self.duration_ms <= 0:
            return 0.0
        return self.queries / (self.duration_ms / 1000.0)


class ScanEngine:
    """Runs query batches against one upstream resolver.

    *target_retries* is the per-target resilience knob: a query whose
    final answer is a timeout or SERVFAIL is re-asked up to that many
    extra times (the upstream path may just have had a bad moment — the
    paper re-queried flaky responders for the same reason). *breaker*
    is an optional shared circuit breaker handed to the transport.
    """

    def __init__(
        self,
        network,
        source_ip,
        resolver_ip,
        max_qps=None,
        retries=1,
        target_retries=0,
        breaker=None,
    ):
        self.network = network
        self.client = StubClient(network, source_ip, retries=retries, breaker=breaker)
        self.resolver_ip = resolver_ip
        self.max_qps = max_qps
        self.target_retries = target_retries
        self.stats = ScanStats()

    def _ask(self, qname, qtype, want_dnssec, checking_disabled):
        """One rate-limited attempt (no outcome bookkeeping)."""
        if self.stats.queries == 0:
            self.stats.started_ms = self.network.clock_ms
        if self.max_qps:
            # Keep the average request rate at or below the limit by
            # advancing the simulated clock when we are ahead of schedule.
            earliest = self.stats.started_ms + (
                self.stats.queries * 1000.0 / self.max_qps
            )
            if self.network.clock_ms < earliest:
                self.network.clock_ms = earliest
        answer = self.client.ask(
            self.resolver_ip,
            qname,
            qtype,
            want_dnssec=want_dnssec,
            checking_disabled=checking_disabled,
        )
        self.stats.queries += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_scan_queries_total",
                "Scan-engine queries, by response rcode (timeout if none).",
                labelnames=("rcode",),
            ).labels(
                rcode=obs.rcode_label(answer.rcode, answer.answered)
            ).inc()
        self.stats.finished_ms = self.network.clock_ms
        return answer

    @staticmethod
    def _transient(answer):
        """Outcomes worth a re-ask: no answer, or a (possibly fault-induced)
        SERVFAIL — genuine SERVFAILs are stable and survive the retries."""
        return not answer.answered or answer.rcode == Rcode.SERVFAIL

    def query(self, qname, qtype=RdataType.A, want_dnssec=True, checking_disabled=False):
        """One rate-limited query; returns a :class:`StubAnswer`.

        Only the final outcome lands in ``stats.rcodes``/``unanswered``;
        intermediate re-asks count as ``stats.reprobes`` (and as queries,
        for pacing — they are real traffic).
        """
        answer = self._ask(qname, qtype, want_dnssec, checking_disabled)
        for __ in range(self.target_retries):
            if not self._transient(answer):
                break
            self.stats.reprobes += 1
            answer = self._ask(qname, qtype, want_dnssec, checking_disabled)
        if answer.answered:
            self.stats.rcodes[answer.rcode] += 1
        else:
            self.stats.unanswered += 1
        return answer

    def run(self, jobs, want_dnssec=True, checking_disabled=False):
        """Run ``(qname, qtype)`` jobs; returns the list of answers.

        The DNSSEC flags apply to every job in the batch — callers that
        scan with CD set (measuring what zones publish rather than what a
        validator accepts) keep that behaviour through the batch API.
        """
        return [
            self.query(
                qname,
                qtype,
                want_dnssec=want_dnssec,
                checking_disabled=checking_disabled,
            )
            for qname, qtype in jobs
        ]

    def run_campaign(
        self,
        jobs,
        want_dnssec=True,
        checking_disabled=False,
        checkpoint=None,
        requeue_attempts=1,
        requeue_delay_ms=1000.0,
    ):
        """A fault-tolerant, resumable batch run.

        Targets whose query stays unanswered are quarantined and requeued
        at the end of the campaign (up to *requeue_attempts* extra
        passes, waiting *requeue_delay_ms* of simulated time before each
        so transient outages can clear). With a
        :class:`~repro.scanner.campaign.CampaignCheckpoint`, every final
        outcome is persisted and a resumed campaign issues **zero**
        queries for already-completed targets. Returns a
        :class:`~repro.scanner.campaign.CampaignResult` with answers
        aligned to *jobs*.
        """
        result = CampaignResult()
        answers = {}
        deferred = []

        def settle(key, answer):
            answers[key] = answer
            if checkpoint is not None:
                checkpoint.record(key, answer_to_record(answer))

        for qname, qtype in jobs:
            key = job_key(qname, qtype)
            if key in answers:
                continue  # duplicate job: one query serves both
            if checkpoint is not None and checkpoint.done(key):
                answers[key] = answer_from_record(checkpoint.get(key))
                result.resumed += 1
                continue
            answer = self.query(
                qname, qtype, want_dnssec=want_dnssec,
                checking_disabled=checking_disabled,
            )
            if not answer.answered:
                deferred.append((key, qname, qtype))
                continue
            settle(key, answer)

        result.requeued = len(deferred)
        for __ in range(requeue_attempts):
            if not deferred:
                break
            if requeue_delay_ms:
                self.network.clock_ms += requeue_delay_ms
            still_failing = []
            for key, qname, qtype in deferred:
                answer = self.query(
                    qname, qtype, want_dnssec=want_dnssec,
                    checking_disabled=checking_disabled,
                )
                if answer.answered:
                    result.recovered += 1
                    settle(key, answer)
                else:
                    still_failing.append((key, qname, qtype))
            deferred = still_failing

        for key, __qname, __qtype in deferred:
            # Exhausted: record the timeout so a resume does not re-burn
            # budget on it (re-scan without the checkpoint to insist).
            result.failed.append(key)
            settle(key, StubAnswer.timeout())

        if checkpoint is not None:
            checkpoint.flush()
        self.stats.requeued += result.requeued
        self.stats.recovered += result.recovered
        self.stats.resumed += result.resumed
        result.answers = [answers[job_key(qname, qtype)] for qname, qtype in jobs]
        return result
