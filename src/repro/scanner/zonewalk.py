"""Zone enumeration tooling: NSEC walking and NSEC3 dictionary attacks.

The reconnaissance techniques the paper's background discusses (§2.2 and
the Wander et al. / Wang et al. citations in §3):

- :func:`walk_nsec_zone` — enumerate an NSEC-signed zone through a
  resolver by querying just-past names and following the ``next`` field;
- :class:`Nsec3Walker` — collect NSEC3 hashes from negative responses,
  then run an offline dictionary attack against them, demonstrating why
  extra hash iterations "protect" nothing an attacker wants (RFC 9276's
  rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.types import RdataType
from repro.dnssec.nsec3hash import nsec3_hash

#: Labels most zones contain — the paper's point: subdomains are guessable.
DEFAULT_DICTIONARY = (
    "www", "mail", "ftp", "api", "ns1", "ns2", "smtp", "imap", "pop",
    "webmail", "admin", "portal", "vpn", "dev", "test", "staging", "blog",
    "shop", "cdn", "static", "db", "mx", "git", "wiki", "intranet",
)


def _just_past(name):
    """The lexically-next name after *name*: prepend a minimal label.

    ``\\000.<name>`` sorts immediately after ``<name>`` in canonical order,
    so the denial for it reveals the NSEC record starting at *name* (or
    the span containing it).
    """
    return Name.from_text(name).prepend(b"\x00")


@dataclass
class NsecWalkResult:
    """Outcome of an NSEC walk."""

    zone: Name
    names: list = field(default_factory=list)
    queries: int = 0
    complete: bool = False


def walk_nsec_zone(client, resolver_ip, zone, max_queries=500):
    """Enumerate an NSEC-signed zone via a resolver.

    *client* is a :class:`~repro.resolver.stub.StubClient`. Queries names
    just past each discovered owner and reads the NSEC ``next`` field from
    the denial. Stops when the chain wraps back to the apex.
    """
    zone = Name.from_text(zone)
    result = NsecWalkResult(zone=zone)
    current = zone
    seen = set()
    while result.queries < max_queries:
        probe = _just_past(current)
        answer = client.ask(
            resolver_ip, probe, RdataType.A, want_dnssec=True, checking_disabled=True
        )
        result.queries += 1
        if not answer.answered:
            break
        nsec_rrsets = [
            rrset
            for rrset in answer.authority
            if int(rrset.rrtype) == int(RdataType.NSEC)
        ]
        if not nsec_rrsets:
            break
        hop = None
        for rrset in nsec_rrsets:
            if rrset.name not in seen:
                seen.add(rrset.name)
                result.names.append(rrset.name)
            candidate = rrset[0].next_name
            if rrset.name == current or current.is_subdomain_of(rrset.name):
                hop = candidate
        if hop is None:
            hop = nsec_rrsets[0][0].next_name
        if hop == zone or hop in seen:
            result.complete = True
            break
        current = hop
    result.names.sort()
    return result


@dataclass
class Nsec3CrackResult:
    """Outcome of an offline dictionary attack on collected NSEC3 hashes."""

    zone: Name
    iterations: int
    salt: bytes
    hashes_collected: int = 0
    recovered: dict = field(default_factory=dict)
    hash_operations: int = 0

    @property
    def recovery_rate(self):
        if not self.hashes_collected:
            return 0.0
        return len(self.recovered) / self.hashes_collected


class Nsec3Walker:
    """Collects NSEC3 hashes from denials, then cracks them offline."""

    def __init__(self, client, resolver_ip, zone):
        self.client = client
        self.resolver_ip = resolver_ip
        self.zone = Name.from_text(zone)
        self.hashes = set()
        self.params = None
        self.queries = 0

    def collect(self, probe_labels):
        """Query random names to harvest NSEC3 records from denials."""
        for label in probe_labels:
            answer = self.client.ask(
                self.resolver_ip,
                self.zone.prepend(label.encode("ascii")),
                RdataType.A,
                want_dnssec=True,
                checking_disabled=True,
            )
            self.queries += 1
            for rrset in answer.authority:
                if int(rrset.rrtype) != int(RdataType.NSEC3):
                    continue
                for rdata in rrset:
                    self.params = (rdata.hash_algorithm, rdata.iterations, rdata.salt)
                    self.hashes.add(rdata.next_hash)
                try:
                    from repro.dnssec.denial import owner_hash_of

                    self.hashes.add(owner_hash_of(rrset.name, self.zone))
                except Exception:
                    pass
        return len(self.hashes)

    def crack(self, dictionary=DEFAULT_DICTIONARY):
        """Offline dictionary attack against the collected hashes."""
        if self.params is None:
            raise ValueError("no NSEC3 parameters collected yet")
        hash_algorithm, iterations, salt = self.params
        result = Nsec3CrackResult(
            zone=self.zone,
            iterations=iterations,
            salt=salt,
            hashes_collected=len(self.hashes),
        )
        for word in dictionary:
            candidate = self.zone.prepend(word.encode("ascii"))
            digest = nsec3_hash(
                candidate.canonical_wire(), salt, iterations, hash_algorithm
            )
            result.hash_operations += iterations + 1
            if digest in self.hashes:
                result.recovered[word] = candidate
        # The apex itself always hashes into the chain.
        apex_digest = nsec3_hash(
            self.zone.canonical_wire(), salt, iterations, hash_algorithm
        )
        result.hash_operations += iterations + 1
        if apex_digest in self.hashes:
            result.recovered["@"] = self.zone
        return result
