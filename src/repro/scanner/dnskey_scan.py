"""Stage 1 of the domain pipeline (§4.1): which domains are DNSSEC-enabled.

"We used zdns to query each domain for its DNSKEY records […]. If any
DNSKEY records are returned, we consider the domain name DNSSEC-enabled."
The paper deliberately keeps domains whose signatures are broken — so this
scan runs with CD (checking disabled), exactly as a non-validating lookup
tool would.
"""

from __future__ import annotations

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType


def dnskey_scan(engine, domain_names):
    """Return the subset of *domain_names* that present DNSKEY records."""
    enabled = []
    for name in domain_names:
        answer = engine.query(
            name, RdataType.DNSKEY, want_dnssec=True, checking_disabled=True
        )
        if answer.rcode != Rcode.NOERROR:
            continue
        if any(int(rrset.rrtype) == int(RdataType.DNSKEY) for rrset in answer.answer):
            enabled.append(name)
    # Settle the engine's in-flight window so stage 2 starts after every
    # stage-1 session has completed on the simulated clock.
    engine.drain()
    return enabled
