"""AXFR client (RFC 5936): how the paper obtained ccTLD zone files.

§4.1: "country-code TLD (ccTLD) zone files downloaded via AXFR zone
transfers for .ch, .nu, .se, and .li". The client asks a zone's
authoritative server for a full transfer; servers refuse unless the zone
is explicitly transferable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.transport import QueryFailure, Transport


class TransferRefused(Exception):
    """The server declined the zone transfer (the common case)."""


@dataclass
class ZoneTransfer:
    """The result of one AXFR."""

    zone: Name
    rrsets: list = field(default_factory=list)

    def delegated_names(self):
        """Registered domains in the zone: owners of non-apex NS RRsets."""
        names = set()
        for rrset in self.rrsets:
            if int(rrset.rrtype) == int(RdataType.NS) and rrset.name != self.zone:
                names.add(rrset.name.to_text().rstrip("."))
        return sorted(names)

    def record_count(self):
        return sum(len(rrset) for rrset in self.rrsets)


def axfr(network, source_ip, server_ip, zone):
    """Transfer *zone* from *server_ip*; returns a :class:`ZoneTransfer`.

    Raises :class:`TransferRefused` when the server says no, and
    :class:`~repro.net.transport.QueryFailure` when it is unreachable.
    """
    zone = Name.from_text(zone)
    transport = Transport(network, source_ip)
    query = make_query(zone, RdataType.AXFR, recursion_desired=False)
    response = transport.query(server_ip, query)
    if response.rcode == Rcode.REFUSED:
        raise TransferRefused(f"{server_ip} refused AXFR of {zone}")
    if response.rcode != Rcode.NOERROR:
        raise QueryFailure(f"AXFR rcode {Rcode.to_text(response.rcode)}", qname=zone)
    rrsets = list(response.answer)
    # Strip the trailing SOA duplicate (the transfer-complete marker).
    if (
        len(rrsets) >= 2
        and int(rrsets[-1].rrtype) == int(RdataType.SOA)
        and int(rrsets[0].rrtype) == int(RdataType.SOA)
    ):
        rrsets = rrsets[:-1]
    return ZoneTransfer(zone=zone, rrsets=rrsets)
