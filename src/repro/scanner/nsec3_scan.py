"""Stage 2 of the domain pipeline (§4.1): NSEC3 parameters and compliance.

For every DNSSEC-enabled domain:

1. query ``NSEC3PARAM`` (the advertised chain parameters) and ``NS`` (for
   operator attribution, Table 2);
2. query a random, almost-surely-nonexistent subdomain to trigger a
   negative response carrying actual ``NSEC3`` records;
3. keep only domains with exactly one NSEC3PARAM record and consistent
   parameters across NSEC3 and NSEC3PARAM (RFC 5155 consistency — the
   paper's *NSEC3-enabled* filter);
4. audit against RFC 9276 Items 1–5.

All queries run with CD set: the paper's scanner measures what zones
publish, not what a validator accepts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType


@dataclass
class DomainScanResult:
    """Everything stage 2 learned about one domain."""

    domain: str
    observation: Nsec3Observation = None
    report: object = None
    ns_targets: tuple = ()
    denial: str = ""

    @property
    def nsec3_enabled(self):
        return self.report is not None and self.report.nsec3_enabled


def _params_of(rdata):
    return (rdata.hash_algorithm, rdata.iterations, bytes(rdata.salt))


def _random_label(rng):
    return "zx" + "".join(rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for __ in range(12))


def domain_rng(seed, domain):
    """The probe-label RNG for one domain, derived from (seed, domain).

    Seeding from the *name* rather than sharing one sequential stream
    makes the probe label a pure function of the domain: a campaign
    partitioned across worker shards (or resumed mid-list) draws exactly
    the labels the single-process scan would. ``random.Random(str)``
    seeds via SHA-512 of the bytes, independent of PYTHONHASHSEED.
    """
    return random.Random(f"{seed}/{str(domain).rstrip('.').lower()}")


def scan_domain(engine, domain, rng, delegation_count=0, open_zone=False):
    """Run the stage-2 scan for one domain; returns a DomainScanResult."""
    result = DomainScanResult(domain=domain)

    param_answer = engine.query(
        domain, RdataType.NSEC3PARAM, checking_disabled=True
    )
    nsec3params = []
    if param_answer.rcode == Rcode.NOERROR:
        for rrset in param_answer.answer:
            if int(rrset.rrtype) == int(RdataType.NSEC3PARAM):
                nsec3params.extend(_params_of(r) for r in rrset)

    ns_answer = engine.query(domain, RdataType.NS, checking_disabled=True)
    targets = []
    if ns_answer.rcode == Rcode.NOERROR:
        for rrset in ns_answer.answer:
            if int(rrset.rrtype) == int(RdataType.NS):
                targets.extend(r.target.to_text() for r in rrset)
    result.ns_targets = tuple(sorted(set(targets)))

    probe_name = f"{_random_label(rng)}.{domain}"
    negative = engine.query(probe_name, RdataType.A, checking_disabled=True)
    nsec3_records = []
    opt_out = False
    saw_nsec = False
    for rrset in negative.authority:
        if int(rrset.rrtype) == int(RdataType.NSEC3):
            for rdata in rrset:
                nsec3_records.append(_params_of(rdata))
                opt_out = opt_out or rdata.opt_out
        elif int(rrset.rrtype) == int(RdataType.NSEC):
            saw_nsec = True
    if saw_nsec and not nsec3_records and not nsec3params:
        result.denial = "nsec"
    elif nsec3params or nsec3_records:
        result.denial = "nsec3"

    result.observation = Nsec3Observation(
        domain=domain,
        dnssec_enabled=True,
        nsec3param_records=tuple(nsec3params),
        nsec3_records=tuple(nsec3_records),
        opt_out_seen=opt_out,
        delegation_count=delegation_count,
        zone_published_openly=open_zone,
    )
    result.report = check_zone_compliance(result.observation)
    return result


def nsec3_scan(engine, domains, seed=1355):
    """Stage-2 scan over many domains; returns DomainScanResults.

    Probe labels come from :func:`domain_rng`, so any partition of
    *domains* — shards in worker processes, resumed suffixes — issues
    the same queries the full sequential scan would.
    """
    results = [
        scan_domain(engine, domain, domain_rng(seed, domain))
        for domain in domains
    ]
    engine.drain()
    return results


def scan_tlds(engine, tld_specs, seed=31):
    """The TLD variant of the pipeline (§5.1's 1,449-TLD analysis).

    *tld_specs* may be labels or :class:`~repro.testbed.population.TldSpec`
    objects; specs contribute delegation counts and open-zone-data flags to
    the Item 4/5 and Item 1 heuristics.
    """
    results = []
    for spec in tld_specs:
        if isinstance(spec, str):
            label, delegations, open_zone = spec, 10_000, False
        else:
            label, delegations, open_zone = spec.label, 10_000, spec.open_zone_data
        results.append(
            scan_domain(
                engine,
                label,
                domain_rng(seed, label),
                delegation_count=delegations,
                open_zone=open_zone,
            )
        )
    engine.drain()
    return results
