"""RIPE-Atlas-style measurement of closed resolvers (§4.2).

Closed resolvers only answer queries from inside their own network, so the
paper used RIPE Atlas probes as in-network vantage points. The simulated
equivalent: every closed resolver's segment contains a registered probe
address; the campaign issues the standard probe matrix from there.

Fidelity detail: "RIPE Atlas does not supply the EDE data" — the campaign
strips EDE codes from its results, which is why the paper could not check
Items 10/11 for closed resolvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resolver_compliance import classify_resolver
from repro.scanner.resolver_scan import (
    SurveyEntry,
    probe_resolver,
    probe_with_policy,
)
from repro.testbed.rfc9276_wild import PROBE_ZONE_ITERATIONS


@dataclass
class AtlasCampaign:
    """Probes closed resolvers from inside their networks."""

    network: object
    probe_set: object
    iterations: tuple = PROBE_ZONE_ITERATIONS
    #: RIPE Atlas caps concurrent measurements; we model the cap as a
    #: simple budget of resolvers per campaign run.
    max_probes: int = 1000
    #: Same graceful-degradation knobs as :class:`ResolverSurvey` — Atlas
    #: probes cross the same hostile network the scanner does.
    retry_policy: object = None
    #: In-flight window on the simulation kernel (Atlas probes run from
    #: independent vantage points, so their sessions naturally overlap).
    concurrency: int = 1
    entries: list = field(default_factory=list)

    def run(self, deployed_resolvers):
        from repro.net.sim import CampaignExecutor

        executor = CampaignExecutor(self.network.kernel, self.concurrency)
        self.entries = []
        count = 0
        for index, deployed in enumerate(deployed_resolvers):
            if deployed.access != "closed":
                continue
            if count >= self.max_probes:
                break
            if not deployed.probe_source_ip:
                continue
            matrix, healthy = executor.submit(
                lambda d=deployed, i=index: self._probe(d, i)
            )
            classification = classify_resolver(matrix, resolver=deployed.ip)
            if self.retry_policy is not None and not healthy:
                classification.notes.append(
                    "degraded: Atlas probes unanswered or unstable"
                )
            self.entries.append(SurveyEntry(deployed, matrix, classification))
            count += 1
        executor.drain()
        return self.entries

    def _probe(self, deployed, index):
        """One closed resolver's probe session; returns (matrix, healthy)."""
        if self.retry_policy is None:
            matrix = probe_resolver(
                self.network,
                deployed.ip,
                self.probe_set,
                deployed.probe_source_ip,
                unique=f"atlas{index}",
                iterations=self.iterations,
                keep_ede=False,  # Atlas does not expose EDE
            )
            return matrix, True
        return probe_with_policy(
            self.network,
            deployed.ip,
            self.probe_set,
            deployed.probe_source_ip,
            f"atlas{index}",
            self.iterations,
            self.retry_policy,
            keep_ede=False,
        )

    def classifications(self):
        return [entry.classification for entry in self.entries]
