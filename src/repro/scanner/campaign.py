"""Resumable scan campaigns: durable journaled checkpoints.

A multi-hour scan of 302 M domains dies to reboots, rate-limit bans, and
operator opt-outs; the paper's ethics appendix promises minimal load, so
a restarted campaign must not re-query what it already measured. A
:class:`CampaignCheckpoint` persists per-target outcomes durably so an
interrupted campaign resumes with **zero duplicate queries** — even when
the interruption is a SIGKILL that lands mid-write.

Durability model (two files):

- ``path`` — the compacted JSON **snapshot**, written atomically: the
  temp file is fsynced before ``os.replace`` and the containing
  directory is fsynced after, so the rename is durably ordered and a
  power cut can neither tear the snapshot nor make it vanish.
- ``path + ".journal"`` — an append-only **CRC32-framed journal** of
  records since the last snapshot. Each frame is
  ``<u32 payload length><u32 crc32(payload)><payload JSON>``; appends
  are flushed and fsynced. A torn or bit-flipped tail fails its length,
  CRC, or JSON check and the journal is truncated back to the last good
  frame on load — everything up to the damage is kept.

The journal is *expected* to be damaged by crashes and self-heals; the
snapshot is atomically replaced and therefore never partially written,
so an unparseable, foreign, or future-versioned snapshot raises
:class:`CampaignError` instead of being silently discarded (pass
``discard=True`` — the CLI's ``--discard-checkpoint`` — to archive it
and start fresh). Once the journal grows past ``compact_every`` frames
it is folded back into the snapshot and truncated.

Checkpoint records are plain JSON dicts; the scan engine and the
resolver survey each define their own record codecs
(:func:`answer_to_record` here; the probe-matrix codec lives in
:mod:`repro.scanner.resolver_scan`). Resumed answers carry RCODE/flags
but not the response rrsets — enough to finish counting a campaign, not
to re-derive zone parameters. Re-scan without the checkpoint if the full
sections matter.

Besides records, the checkpoint stores idempotent **notes**: flags keyed
by (tag, job key) used to count per-job events like requeues exactly
once across resume boundaries (see :meth:`CampaignCheckpoint.note`).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro import obs
from repro.resolver.stub import StubAnswer

CHECKPOINT_VERSION = 2

#: First bytes of every journal file; a journal that does not start with
#: this is treated as having no recoverable frames.
JOURNAL_MAGIC = b"RPROJRN2"

#: ``<u32 payload length><u32 crc32(payload)>`` preceding every frame.
_FRAME_HEADER = struct.Struct("<II")

#: Sanity bound on one frame; a corrupt length field almost never
#: survives this *and* the CRC check.
_MAX_FRAME = 1 << 24


class CampaignError(Exception):
    """A checkpoint that cannot be trusted (foreign, stale, or damaged
    in a way the journal recovery is not allowed to paper over)."""


def job_key(qname, qtype):
    """Stable identity of one scan job: normalised qname + numeric type."""
    return f"{str(qname).rstrip('.').lower()}/{int(qtype)}"


def answer_to_record(answer):
    """A :class:`StubAnswer` as a JSON-able checkpoint record."""
    return {
        "rcode": int(answer.rcode),
        "ad": bool(answer.ad),
        "ra": bool(answer.ra),
        "ede": list(answer.ede_codes),
        "answered": bool(answer.answered),
    }


def answer_from_record(record):
    """Rebuild a (section-less) :class:`StubAnswer` from a record.

    A record missing fields means the checkpoint predates this schema or
    belongs to another tool — surfaced as :class:`CampaignError` rather
    than a bare ``KeyError`` deep inside a resumed campaign.
    """
    try:
        return StubAnswer(
            rcode=record["rcode"],
            ad=record["ad"],
            ra=record["ra"],
            answer=[],
            ede_codes=tuple(record["ede"]),
            answered=record["answered"],
        )
    except (KeyError, TypeError) as exc:
        raise CampaignError(
            f"checkpoint record is not a scan answer ({exc!r}); the file "
            "is stale or from another campaign — re-run with "
            "--discard-checkpoint (or delete it) to start fresh"
        ) from None


def _fsync_directory(path):
    """fsync the directory containing *path* (durable rename ordering)."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds: nothing more we can do
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path, text):
    """Write *text* to *path* atomically and durably.

    The temp file is fsynced **before** the rename (so the new content
    is on disk when the name flips) and the directory **after** (so the
    rename itself survives power loss) — without the second fsync the
    checkpoint can vanish: the old name is gone but the new directory
    entry was never persisted.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(path)


def frame_payload(payload):
    """Frame one JSON-able *payload* for the journal (header + bytes)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def read_journal_payloads(path):
    """Parse a journal's good-frame prefix without touching the file.

    Returns the decoded payload list, stopping (silently) at the first
    torn or corrupt frame — the read-only counterpart of the recovery
    performed on load, used by the supervisor's merge accounting and the
    fuzz tests.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return []
    if not blob.startswith(JOURNAL_MAGIC):
        return []
    payloads = []
    offset = len(JOURNAL_MAGIC)
    while offset + _FRAME_HEADER.size <= len(blob):
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        if length > _MAX_FRAME or start + length > len(blob):
            break
        body = blob[start:start + length]
        if zlib.crc32(body) != crc:
            break
        try:
            payloads.append(json.loads(body.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            break
        offset = start + length
    return payloads


class CampaignCheckpoint:
    """Keyed checkpoint: durable JSON snapshot + CRC32-framed journal.

    ``flush_every`` bounds how much progress an interruption can lose:
    that many records are buffered before they are appended (and
    fsynced) to the journal. ``compact_every`` bounds journal growth:
    once that many frames accumulate they are folded into the snapshot.
    A missing checkpoint starts the campaign from scratch; a *damaged
    snapshot* or a version/schema mismatch raises :class:`CampaignError`
    unless ``discard=True`` archives the files and starts fresh. A
    damaged journal *tail* is expected (that is what being killed
    mid-write produces) and is truncated back to the last good frame.

    *schema* names the record codec (e.g. ``"scan-answer/1"``); a
    snapshot recording a different schema is rejected rather than fed to
    the wrong ``*_from_record`` decoder.
    """

    def __init__(self, path, flush_every=50, schema=None,
                 discard=False, compact_every=4096):
        self.path = str(path)
        self.journal_path = f"{self.path}.journal"
        self.flush_every = flush_every
        self.schema = schema
        self.compact_every = compact_every
        self._records = {}
        self._notes = {}
        self._pending = []
        self._journal_frames = 0
        self._load(discard=discard)

    # -- load & recovery -----------------------------------------------------

    def _load(self, discard=False):
        try:
            self._load_snapshot()
        except CampaignError:
            if not discard:
                raise
            self._archive_invalid()
            self._records = {}
            self._notes = {}
            return
        self._journal_frames = self._replay_journal()
        if self._journal_frames >= self.compact_every:
            self.compact()

    def _load_snapshot(self):
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            # The snapshot is written atomically, so a crash cannot tear
            # it: an unparseable file is foreign or damaged at rest.
            raise CampaignError(
                f"checkpoint {self.path} is not a campaign snapshot "
                f"({exc}); re-run with --discard-checkpoint to archive it "
                "and start fresh"
            ) from None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("records"), dict
        ):
            raise CampaignError(
                f"checkpoint {self.path} has no record map — not a "
                "campaign snapshot; re-run with --discard-checkpoint to "
                "archive it and start fresh"
            )
        version = payload.get("version")
        if version not in (1, CHECKPOINT_VERSION):
            raise CampaignError(
                f"checkpoint {self.path} has version {version!r} (this "
                f"build reads {CHECKPOINT_VERSION}); re-run with "
                "--discard-checkpoint to archive it and start fresh"
            )
        stored_schema = payload.get("schema")
        if (
            self.schema is not None
            and stored_schema is not None
            and stored_schema != self.schema
        ):
            raise CampaignError(
                f"checkpoint {self.path} holds {stored_schema!r} records, "
                f"this campaign expects {self.schema!r}; re-run with "
                "--discard-checkpoint to archive it and start fresh"
            )
        self._records = payload["records"]
        notes = payload.get("notes")
        if isinstance(notes, dict):
            self._notes = {
                tag: set(keys) for tag, keys in notes.items()
                if isinstance(keys, list)
            }

    def _archive_invalid(self):
        """Move a rejected snapshot (and its journal) aside, keeping the
        evidence while freeing the path for a fresh campaign."""
        for path in (self.path, self.journal_path):
            if os.path.exists(path):
                os.replace(path, f"{path}.invalid")
        _fsync_directory(self.path)

    def _replay_journal(self):
        """Apply journal frames; truncate a torn/corrupt tail in place.

        Returns the number of good frames. Every failure mode a crash
        can produce — short header, short payload, bit-flipped bytes,
        garbage length — lands after the last fully-fsynced frame, so
        recovery is: keep the prefix, cut the rest.
        """
        try:
            with open(self.journal_path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return 0
        good_end = len(JOURNAL_MAGIC)
        frames = 0
        if not blob.startswith(JOURNAL_MAGIC):
            good_end = 0  # header damaged: no frame boundary is trustworthy
        else:
            offset = len(JOURNAL_MAGIC)
            while offset + _FRAME_HEADER.size <= len(blob):
                length, crc = _FRAME_HEADER.unpack_from(blob, offset)
                start = offset + _FRAME_HEADER.size
                if length > _MAX_FRAME or start + length > len(blob):
                    break
                body = blob[start:start + length]
                if zlib.crc32(body) != crc:
                    break
                try:
                    payload = json.loads(body.decode("utf-8"))
                    self._apply_frame(payload)
                except (ValueError, UnicodeDecodeError, TypeError, KeyError):
                    break
                offset = start + length
                good_end = offset
                frames += 1
        if good_end < len(blob):
            dropped = len(blob) - good_end
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            if obs.enabled:
                obs.registry.counter(
                    "repro_checkpoint_recoveries_total",
                    "Journal loads that truncated a torn or corrupt tail.",
                ).inc()
            if obs.events:
                obs.emit(
                    "checkpoint.recover", frames=frames, dropped_bytes=dropped
                )
        return frames

    def _apply_frame(self, payload):
        if "r" in payload:
            self._records[payload["k"]] = payload["r"]
        elif "n" in payload:
            self._notes.setdefault(payload["n"], set()).add(payload["k"])
        else:
            raise KeyError("unknown frame")

    # -- the checkpoint protocol ---------------------------------------------

    def done(self, key):
        return key in self._records

    def get(self, key):
        return self._records[key]

    def keys(self):
        """The checkpointed job keys (used by the supervisor's merge)."""
        return self._records.keys()

    def record(self, key, record):
        self._records[key] = record
        self._pending.append(frame_payload({"k": key, "r": record}))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def note(self, key, tag="requeued"):
        """Set an idempotent per-job flag; True only the *first* time.

        The flag is journaled, so counting events by fresh notes — "this
        job entered the requeue" — cannot double-count a job whose
        requeue straddles a crash/resume boundary.
        """
        seen = self._notes.setdefault(tag, set())
        if key in seen:
            return False
        seen.add(key)
        self._pending.append(frame_payload({"n": tag, "k": key}))
        if len(self._pending) >= self.flush_every:
            self.flush()
        return True

    def noted(self, key, tag="requeued"):
        return key in self._notes.get(tag, ())

    def notes(self, tag="requeued"):
        return frozenset(self._notes.get(tag, ()))

    def flush(self):
        """Append pending frames to the journal, durably."""
        if not self._pending:
            if not os.path.exists(self.path) and not os.path.exists(
                self.journal_path
            ):
                self.compact()  # materialise an empty-but-valid checkpoint
            return
        fresh = not os.path.exists(self.journal_path)
        with open(self.journal_path, "ab") as handle:
            if fresh or os.path.getsize(self.journal_path) == 0:
                handle.write(JOURNAL_MAGIC)
            for frame in self._pending:
                handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        if fresh:
            _fsync_directory(self.journal_path)
        self._journal_frames += len(self._pending)
        flushed = len(self._pending)
        self._pending = []
        if obs.events:
            obs.emit(
                "checkpoint.flush", records=len(self._records), pending=flushed
            )
        if self._journal_frames >= self.compact_every:
            self.compact()

    def compact(self):
        """Fold the journal into the snapshot and truncate it."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "schema": self.schema,
            "records": self._records,
            "notes": {tag: sorted(keys) for tag, keys in self._notes.items()},
        }
        _atomic_write(self.path, json.dumps(payload))
        with open(self.journal_path, "wb") as handle:
            handle.write(JOURNAL_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_directory(self.journal_path)
        self._pending = []
        self._journal_frames = 0
        if obs.events:
            obs.emit("checkpoint.compact", records=len(self._records))

    def __len__(self):
        return len(self._records)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`ScanEngine.run_campaign` pass."""

    #: Answers aligned with the submitted jobs (resumed ones section-less).
    answers: list = field(default_factory=list)
    #: Jobs satisfied from the checkpoint without touching the network.
    resumed: int = 0
    #: Jobs that failed the main pass and entered the requeue —
    #: counted idempotently by job key when a checkpoint is attached
    #: (a job whose requeue straddles a resume is counted once).
    requeued: int = 0
    #: Requeued jobs that eventually answered.
    recovered: int = 0
    #: Job keys still unanswered after every requeue pass.
    failed: list = field(default_factory=list)
