"""Resumable scan campaigns: JSON checkpoints and campaign bookkeeping.

A multi-hour scan of 302 M domains dies to reboots, rate-limit bans, and
operator opt-outs; the paper's ethics appendix promises minimal load, so
a restarted campaign must not re-query what it already measured. A
:class:`CampaignCheckpoint` persists per-target outcomes to a JSON file
(written atomically, flushed incrementally) so an interrupted campaign
resumes with **zero duplicate queries**.

Checkpoint records are plain JSON dicts; the scan engine and the
resolver survey each define their own record codecs
(:func:`answer_to_record` here; the probe-matrix codec lives in
:mod:`repro.scanner.resolver_scan`). Resumed answers carry RCODE/flags
but not the response rrsets — enough to finish counting a campaign, not
to re-derive zone parameters. Re-scan without the checkpoint if the full
sections matter.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro import obs
from repro.resolver.stub import StubAnswer

CHECKPOINT_VERSION = 1


def job_key(qname, qtype):
    """Stable identity of one scan job: normalised qname + numeric type."""
    return f"{str(qname).rstrip('.').lower()}/{int(qtype)}"


def answer_to_record(answer):
    """A :class:`StubAnswer` as a JSON-able checkpoint record."""
    return {
        "rcode": int(answer.rcode),
        "ad": bool(answer.ad),
        "ra": bool(answer.ra),
        "ede": list(answer.ede_codes),
        "answered": bool(answer.answered),
    }


def answer_from_record(record):
    """Rebuild a (section-less) :class:`StubAnswer` from a record."""
    return StubAnswer(
        rcode=record["rcode"],
        ad=record["ad"],
        ra=record["ra"],
        answer=[],
        ede_codes=tuple(record["ede"]),
        answered=record["answered"],
    )


class CampaignCheckpoint:
    """Keyed JSON checkpoint with incremental, atomic persistence.

    ``flush_every`` bounds how much progress an interruption can lose;
    every flush writes a temp file and renames it over the old one, so a
    crash mid-write never corrupts the previous checkpoint. A missing or
    unreadable file simply starts the campaign from scratch.
    """

    def __init__(self, path, flush_every=50):
        self.path = str(path)
        self.flush_every = flush_every
        self._records = {}
        self._pending = 0
        self._load()

    def _load(self):
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if payload.get("version") != CHECKPOINT_VERSION:
            return
        records = payload.get("records")
        if isinstance(records, dict):
            self._records = records

    # -- the checkpoint protocol ---------------------------------------------

    def done(self, key):
        return key in self._records

    def get(self, key):
        return self._records[key]

    def record(self, key, record):
        self._records[key] = record
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def flush(self):
        if not self._pending and os.path.exists(self.path):
            return
        payload = {"version": CHECKPOINT_VERSION, "records": self._records}
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, self.path)
        flushed = self._pending
        self._pending = 0
        if obs.events:
            obs.emit(
                "checkpoint.flush", records=len(self._records), pending=flushed
            )

    def __len__(self):
        return len(self._records)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`ScanEngine.run_campaign` pass."""

    #: Answers aligned with the submitted jobs (resumed ones section-less).
    answers: list = field(default_factory=list)
    #: Jobs satisfied from the checkpoint without touching the network.
    resumed: int = 0
    #: Jobs that failed the main pass and entered the requeue.
    requeued: int = 0
    #: Requeued jobs that eventually answered.
    recovered: int = 0
    #: Job keys still unanswered after every requeue pass.
    failed: list = field(default_factory=list)
