"""Crash-safe multi-process campaign supervision.

The kernel-equivalence guarantee (PR 3: reports are byte-identical at
any concurrency) is exactly the property that lets a campaign shard
across OS processes: each worker rebuilds the full deterministic
testbed from ``(domains, tlds, seed)`` and measures only its shard of
the global unit list, so the union of shard outputs — merged in global
unit order through the existing order-independent report builders — is
byte-identical to the single-process run. What this module adds is
surviving the part where workers die.

Pieces:

- :func:`plan_units` — the global, ordered unit list (domains, TLD
  audits, resolver probes) derived purely from the plan, identically in
  the supervisor and in every worker. Units are dealt round-robin to
  shards, preserving **global indices** so cache-busting probe labels
  (``r{index}``, ``atlas{index}``) match the single-process run.
  Workers never build that list: :class:`UnitUniverse` resolves their
  (start=shard, stride=workers) sub-stream on demand, so worker memory
  is bounded by the shard's checkpoint while only the supervisor —
  whose merge reads every record anyway — pays O(N).
- :func:`worker_main` — the spawn entry point: builds its world, runs
  its shard's units against a per-shard
  :class:`~repro.scanner.campaign.CampaignCheckpoint` (the durable
  CRC32-framed journal), heartbeats progress, and writes a done-file
  (stats + metrics snapshot) on completion. A seeded
  :class:`~repro.net.faults.ProcessKill` directive makes it SIGKILL or
  hang itself mid-campaign — tearing its own journal tail on the way
  out, so restarts exercise the real recovery path.
- :func:`run_supervised` — the fleet loop: wall-clock watchdog over
  heartbeat files, bounded restart-with-backoff of crashed/hung/killed
  workers (each restart resumes from the shard journal with zero
  duplicate queries for every journaled unit), lame-shard quarantine
  past the restart budget, and the deterministic merge: reports from
  shard checkpoints in global unit order, metrics via
  ``MetricsRegistry.merge``/``from_json``, plus explicit coverage
  accounting when quarantine degraded the run.

Byte-identity is guaranteed for clean-network runs (``kill:`` faults
included — they never touch a datagram). Network-weather chaos is
supported under ``--workers`` too, but each worker draws its own fault
streams, so those runs converge statistically rather than
byte-for-byte — same as any two chaos seeds.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field

from repro import fastpath, obs
from repro.net.faults import parse_fault_spec
from repro.net.procpool import Watchdog, WorkerHandle, backoff_delay
from repro.scanner.campaign import CampaignCheckpoint, CampaignError
from repro.scanner.nsec3_scan import DomainScanResult, domain_rng, scan_domain
from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance

#: Record-schema tag of the per-shard unit checkpoints.
WORKER_SCHEMA = "study-units/1"

#: The Atlas campaign's probe budget (mirrors AtlasCampaign.max_probes).
ATLAS_MAX_PROBES = 1000

#: Degradation notes must match the inline pipelines byte-for-byte.
SURVEY_DEGRADED_NOTE = (
    "degraded: probes unanswered after end-of-campaign requeue"
)
ATLAS_DEGRADED_NOTE = "degraded: Atlas probes unanswered or unstable"


# -- the campaign plan -------------------------------------------------------


@dataclass(frozen=True)
class CampaignPlan:
    """Everything a worker needs to rebuild its world and find its shard.

    Plain values only: the plan crosses the spawn boundary as a dict.
    ``faults`` is the *network-weather* spec (kill tokens stripped);
    ``kill`` carries the extracted ProcessKill parameters.
    """

    role: str                 # "study" | "scan" | "survey"
    domains: int
    tlds: int
    resolvers: int
    seed: int
    workers: int
    state_dir: str
    concurrency: int = 1
    faults: str = None
    kill: tuple = None        # (rate, max_kills, hang_rate, seed)
    collect_metrics: bool = False
    discard_checkpoint: bool = False
    stall_timeout_s: float = 60.0
    max_restarts: int = 3
    restart_backoff_s: float = 0.25
    flush_every: int = 20
    poll_interval_s: float = 0.05

    @classmethod
    def from_args(cls, args, role):
        """Build a plan from the CLI namespace (clamping as the inline
        commands do — ``survey`` caps the domain build at 20)."""
        domains = args.domains
        if role == "survey":
            domains = min(domains, 20)
        network_spec, kills = split_fault_spec(
            getattr(args, "faults", None), seed=args.seed
        )
        kill = None
        if kills:
            model = kills[0]
            kill = (model.rate, model.max_kills, model.hang_rate, model.seed)
        return cls(
            role=role,
            domains=domains,
            tlds=args.tlds,
            resolvers=getattr(args, "resolvers", 0) or 0,
            seed=args.seed,
            workers=args.workers,
            state_dir=args.state_dir,
            concurrency=getattr(args, "concurrency", 1),
            faults=network_spec,
            kill=kill,
            collect_metrics=getattr(args, "metrics_out", None) is not None,
            discard_checkpoint=getattr(args, "discard_checkpoint", False),
            stall_timeout_s=getattr(args, "stall_timeout", 60.0),
            max_restarts=getattr(args, "max_restarts", 3),
        )

    def to_dict(self):
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }


def split_fault_spec(spec, seed=0):
    """Split ``--faults`` into (network spec or None, [ProcessKill...]).

    Workers receive only the network-weather tokens: a ``kill``-only
    spec must leave the simulated network bit-for-bit untouched, so the
    supervised run stays byte-identical to the clean single-process one.
    """
    if not spec:
        return None, []
    plan = parse_fault_spec(spec, seed=seed)
    kills = plan.process_faults()
    if not kills:
        return spec, []
    tokens = [
        token.strip()
        for token in spec.split(",")
        if token.strip() and token.strip().split(":")[0] != "kill"
    ]
    return (",".join(tokens) or None), kills


def deployment_counts(resolvers):
    """The resolver-survey deployment mix for ``--resolvers N``.

    Shared by the inline CLI path and every worker: both must deploy
    the identical population or global resolver indices drift.
    """
    return {
        "open_v4": resolvers,
        "open_v6": max(2, resolvers // 4),
        "closed_v4": max(2, resolvers // 5),
        "closed_v6": max(1, resolvers // 8),
    }


class UnitUniverse:
    """Index-addressed view of the campaign's global unit list.

    The canonical order is unchanged — domains, then TLD audits, then
    resolver probes — but unit *i* resolves on demand from the
    deterministic population stream instead of a materialised list.
    A worker walks its round-robin shard as the (start=shard,
    stride=workers) sub-stream, so its resident footprint is its own
    checkpoint, not the campaign: the supervisor process still holds
    the O(N) merge state, but workers stay flat however large the
    population gets.
    """

    def __init__(self, plan):
        from repro.testbed.population import (
            Population,
            generate_tlds,
            scaled_config,
        )

        config = scaled_config(plan.domains, plan.tlds)
        self.tld_specs = generate_tlds(config)
        self.population = Population(config, tlds=self.tld_specs)
        self.n_domain_units = (
            len(self.population) if plan.role in ("study", "scan") else 0
        )
        self.n_tld_units = len(self.tld_specs) if plan.role == "study" else 0
        if plan.role in ("study", "survey"):
            self.n_resolver_units = sum(
                deployment_counts(plan.resolvers).values()
            )
        else:
            self.n_resolver_units = 0

    def __len__(self):
        return self.n_domain_units + self.n_tld_units + self.n_resolver_units

    def unit_at(self, index):
        """The ``(kind, name)`` unit at global *index*."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index < self.n_domain_units:
            return ("d", self.population.spec_at(index).name)
        index -= self.n_domain_units
        if index < self.n_tld_units:
            return ("t", self.tld_specs[index].label)
        return ("r", str(index - self.n_tld_units))

    def iter_shard(self, start, stride=1):
        """Lazily yield the units at ``start, start+stride, ...``."""
        for index in range(start, len(self), stride):
            yield self.unit_at(index)

    def shard_size(self, shard, workers):
        """How many units the (shard, workers) sub-stream yields."""
        return max(0, (len(self) - shard + workers - 1) // workers)

    def __iter__(self):
        return self.iter_shard(0, 1)


def plan_units(plan):
    """The campaign's global unit list, in canonical order.

    Returns ``(units, domain_specs, tld_specs)`` where each unit is a
    ``(kind, name)`` pair — ``("d", domain)``, ``("t", tld label)``,
    ``("r", global resolver index)``. Derived purely from the plan, so
    the supervisor and every worker agree without building a testbed.
    This is the materialising front-end of :class:`UnitUniverse`, used
    by the supervisor (whose merge is O(N) anyway); workers walk the
    universe lazily instead.
    """
    universe = UnitUniverse(plan)
    return list(universe), list(universe.population), universe.tld_specs


def shard_units(units, shard, workers):
    """Round-robin deal: the units owned by *shard* of *workers*."""
    return [unit for index, unit in enumerate(units) if index % workers == shard]


def unit_key(unit):
    kind, name = unit
    return f"{kind}/{name}"


# -- shard-local file layout -------------------------------------------------


def _checkpoint_path(state_dir, shard):
    return os.path.join(state_dir, f"shard-{shard}.ckpt")


def _heartbeat_path(state_dir, shard):
    return os.path.join(state_dir, f"shard-{shard}.hb")


def _done_path(state_dir, shard):
    return os.path.join(state_dir, f"shard-{shard}.done.json")


def _error_path(state_dir, shard):
    return os.path.join(state_dir, f"shard-{shard}.err")


# -- unit record codecs ------------------------------------------------------


def observation_to_record(observation):
    """A :class:`Nsec3Observation` as a JSON-able checkpoint record."""
    return {
        "domain": observation.domain,
        "params": [
            [a, i, s.hex()] for a, i, s in observation.nsec3param_records
        ],
        "nsec3": [[a, i, s.hex()] for a, i, s in observation.nsec3_records],
        "optout": observation.opt_out_seen,
        "delegations": observation.delegation_count,
        "open": observation.zone_published_openly,
    }


def observation_from_record(record):
    try:
        return Nsec3Observation(
            domain=record["domain"],
            dnssec_enabled=True,
            nsec3param_records=tuple(
                (a, i, bytes.fromhex(s)) for a, i, s in record["params"]
            ),
            nsec3_records=tuple(
                (a, i, bytes.fromhex(s)) for a, i, s in record["nsec3"]
            ),
            opt_out_seen=record["optout"],
            delegation_count=record["delegations"],
            zone_published_openly=record["open"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignError(
            f"shard checkpoint record is not an NSEC3 observation "
            f"({exc!r}); the state directory is stale or foreign — "
            "re-run with --discard-checkpoint (or a fresh --state-dir)"
        ) from None


def _scan_result_to_record(result, enabled=True):
    record = {"enabled": bool(enabled)}
    if enabled:
        record["obs"] = observation_to_record(result.observation)
        record["ns"] = list(result.ns_targets)
        record["denial"] = result.denial
    return record


def _scan_result_from_record(domain, record):
    observation = observation_from_record(record["obs"])
    return DomainScanResult(
        domain=domain,
        observation=observation,
        report=check_zone_compliance(observation),
        ns_targets=tuple(record["ns"]),
        denial=record["denial"],
    )


# -- the worker --------------------------------------------------------------


class OperatorShutdown(Exception):
    """Raised at a unit boundary after a SIGTERM/SIGINT reached the worker.

    By the time this propagates, the checkpoint journal is flushed and a
    final ``phase="terminated"`` heartbeat is on disk — the supervisor
    reads that phase and treats the exit as an operator decision rather
    than a crash to restart.
    """

    def __init__(self, signum):
        super().__init__(f"operator shutdown (signal {signum})")
        self.signum = signum


class _ShutdownFlag:
    """Deferred SIGTERM/SIGINT handling for the worker's unit loop.

    The signal handler only records the signum — no journal writes from
    handler context, where a frame could be half-written. The unit loop
    calls :meth:`check` at unit boundaries: flush the journal, write the
    final heartbeat, and unwind via :class:`OperatorShutdown`, so an
    operator ``kill`` is indistinguishable from a clean finish as far as
    checkpoint integrity goes.
    """

    def __init__(self, checkpoint, heartbeat):
        self.checkpoint = checkpoint
        self.heartbeat = heartbeat
        self.signum = None

    def install(self):
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, self._handle)
            except ValueError:
                return  # not the main thread (in-process tests drive us)

    def _handle(self, signum, frame):
        self.signum = signum

    def check(self):
        if self.signum is None:
            return
        self.checkpoint.flush()
        self.heartbeat.advance(phase="terminated")
        self.heartbeat.stop()
        raise OperatorShutdown(self.signum)


class _KillSwitch:
    """Worker-side seeded fault: SIGKILL/hang after N completed units.

    On a kill it first appends half a frame header to its own journal —
    the torn write a real mid-``write()`` SIGKILL produces — so every
    restart exercises truncate-to-last-good-frame recovery for real.
    """

    def __init__(self, directive, checkpoint):
        self.directive = directive
        self.checkpoint = checkpoint

    def after_unit(self, units_done):
        if self.directive is None:
            return
        if units_done <= self.directive["after_units"]:
            return
        if self.directive["action"] == "hang":
            while True:  # heartbeats continue; progress does not
                time.sleep(3600)
        self.checkpoint.flush()
        with open(self.checkpoint.journal_path, "ab") as handle:
            handle.write(b"\x2a\x00\x00")  # torn frame header
            handle.flush()
            os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)


def _atomic_json(path, payload):
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def worker_main(spec):
    """Spawn entry point for one shard attempt. Never raises: campaign
    errors land in the shard's ``.err`` file and a nonzero exit."""
    try:
        _worker_run(spec)
    except OperatorShutdown as stop:
        # Clean operator-initiated exit: journal flushed and final
        # heartbeat written before the raise; no .err file, and the
        # conventional 128+signum exit code.
        os._exit(128 + stop.signum)
    except BaseException:
        try:
            with open(spec["error_path"], "w", encoding="utf-8") as handle:
                handle.write(traceback.format_exc())
        except OSError:
            pass
        os._exit(3)


def _worker_run(spec):
    from repro.net.procpool import HeartbeatWriter
    from repro.net.resilience import CircuitBreaker
    from repro.net.sim import CampaignExecutor
    from repro.resolver.policy import VENDOR_POLICIES
    from repro.scanner.engine import ScanEngine
    from repro.scanner.resolver_scan import (
        SurveyRetryPolicy,
        matrix_to_record,
        probe_resolver,
        probe_with_policy,
    )
    from repro.dns.rcode import Rcode
    from repro.dns.types import RdataType
    from repro.testbed.internet import BuildScope, build_internet
    from repro.testbed.resolvers import deploy_resolvers
    from repro.testbed.rfc9276_wild import (
        PROBE_ZONE_ITERATIONS,
        build_probe_zones,
    )

    plan = CampaignPlan(**spec["plan"])
    shard = spec["shard"]
    attempt = spec["attempt"]
    if spec.get("fastpath_disable"):
        fastpath.disable(spec["fastpath_disable"])
    # Every worker (and restart) shares one signed-zone build cache
    # under the campaign's state dir: the first process to need a zone
    # signs it, the rest load the artifacts. --disable-fastpath
    # build_cache makes active() return None, forcing cold rebuilds.
    from repro.zone import build_cache, signing

    build_cache.activate(os.path.join(plan.state_dir, "build-cache"))
    build_start = time.perf_counter()
    build_start_cpu = time.process_time()
    if plan.collect_metrics:
        obs.enable()

    heartbeat = HeartbeatWriter(spec["heartbeat_path"], attempt)
    heartbeat.start(phase="build")
    # Every completed sign_zone — eager infra, probe zones, lazy SLD
    # materialisations, warm-pass entries — ticks build progress so the
    # watchdog can tell a slow cold build from a hung one.
    signing.zone_signed_listener = lambda zone: heartbeat.tick_built()
    checkpoint = CampaignCheckpoint(
        spec["checkpoint_path"],
        flush_every=plan.flush_every,
        schema=WORKER_SCHEMA,
        discard=plan.discard_checkpoint,
    )
    killer = _KillSwitch(spec.get("directive"), checkpoint)
    shutdown = _ShutdownFlag(checkpoint, heartbeat)
    shutdown.install()

    universe = UnitUniverse(plan)
    tld_specs = universe.tld_specs
    my_total = universe.shard_size(shard, plan.workers)

    # Build the identical world every other worker (and the inline
    # single-process path) builds; allocation order mirrors cmd_study:
    # upstream resolver, engine source IP, resolver deployment, survey
    # source IP — in that order, regardless of which units this shard
    # happens to own. With the streamed pipeline enabled, SLD zones
    # materialise lazily on first query, so the worker never holds the
    # whole population's zones — only the bounded working set its
    # shard sub-stream touches.
    streamed = fastpath.enabled("streamed_pipeline")
    inet = build_internet(
        universe.population,
        tld_specs,
        seed=plan.seed,
        lazy_domains=streamed,
        # Scoped construction only makes sense with lazy SLD hosting:
        # TLD signing is deferred to first use (split across the fleet
        # via the cache) and this shard's own SLD artifacts are
        # pre-warmed into the cache during the build phase.
        build_scope=BuildScope(shard, plan.workers) if streamed else None,
        progress=heartbeat.tick_built,
    )
    inet.network.kernel.bind_obs()
    probes = (
        build_probe_zones(inet) if plan.role in ("study", "survey") else None
    )
    if plan.faults:
        inet.network.set_faults(parse_fault_spec(plan.faults, seed=plan.seed))
    chaos = bool(plan.faults)

    engine = None
    if plan.role in ("study", "scan"):
        upstream = inet.make_resolver(
            VENDOR_POLICIES["cloudflare"], name="cli-upstream"
        )
        engine = ScanEngine(
            inet.network,
            inet.allocator.next_v4(),
            upstream.ip,
            max_qps=14_700,
            retries=2 if chaos else 1,
            target_retries=3 if chaos else 0,
            concurrency=plan.concurrency,
            shards=min(max(1, plan.concurrency), 8),
        )

    deployment = survey_source = policy = breaker = executor = None
    atlas_allowed = frozenset()
    if plan.role in ("study", "survey"):
        deployment = deploy_resolvers(
            inet, seed=plan.seed, **deployment_counts(plan.resolvers)
        )
        survey_source = inet.allocator.next_v4()
        policy = SurveyRetryPolicy(require_stable=True) if chaos else None
        if policy is not None:
            recovery = min(1500.0, policy.requeue_delay_ms or 1500.0)
            breaker = CircuitBreaker(
                clock=lambda: inet.network.clock_ms, recovery_ms=recovery
            )
        executor = CampaignExecutor(inet.network.kernel, plan.concurrency)
        # The Atlas probe budget is global: closed resolvers (with a
        # probe vantage) are eligible until the budget fills, in
        # deployment order — computed from the full deployment so every
        # shard agrees with AtlasCampaign's own iteration.
        allowed, count = [], 0
        for index, deployed in enumerate(deployment):
            if deployed.access != "closed":
                continue
            if count >= ATLAS_MAX_PROBES:
                break
            if not deployed.probe_source_ip:
                continue
            allowed.append(index)
            count += 1
        atlas_allowed = frozenset(allowed)

    tld_by_label = {tld_spec.label: tld_spec for tld_spec in tld_specs}
    measure_start = time.perf_counter()
    measure_start_cpu = time.process_time()

    def run_domain_unit(name):
        # Stage 1 (dnskey_scan) + stage 2 (nsec3_scan) for one domain:
        # interleaving the stages per domain issues the same queries the
        # staged single-process pipeline does, and answers are
        # cache/clock/order-independent, so records are identical.
        answer = engine.query(
            name, RdataType.DNSKEY, want_dnssec=True, checking_disabled=True
        )
        enabled = answer.rcode == Rcode.NOERROR and any(
            int(rrset.rrtype) == int(RdataType.DNSKEY)
            for rrset in answer.answer
        )
        if not enabled:
            return {"enabled": False}
        return _scan_result_to_record(
            scan_domain(engine, name, domain_rng(1355, name))
        )

    def run_tld_unit(label):
        tld_spec = tld_by_label[label]
        return _scan_result_to_record(
            scan_domain(
                engine,
                label,
                domain_rng(31, label),
                delegation_count=10_000,
                open_zone=tld_spec.open_zone_data,
            )
        )

    def probe_open(index, unique):
        # Mirrors ResolverSurvey._probe_with_policy for one open resolver.
        if policy is None:
            matrix = probe_resolver(
                inet.network,
                deployment[index].ip,
                probes,
                survey_source,
                unique,
                iterations=PROBE_ZONE_ITERATIONS,
            )
            return matrix, True
        return probe_with_policy(
            inet.network,
            deployment[index].ip,
            probes,
            survey_source,
            unique,
            PROBE_ZONE_ITERATIONS,
            policy,
            breaker=breaker,
        )

    def probe_closed(index):
        # Mirrors AtlasCampaign._probe: probe-vantage source, no EDE, no
        # breaker, and no quarantine/requeue — unhealthy matrices are
        # admitted immediately with the Atlas degradation note.
        deployed = deployment[index]
        if policy is None:
            matrix = probe_resolver(
                inet.network,
                deployed.ip,
                probes,
                deployed.probe_source_ip,
                unique=f"atlas{index}",
                iterations=PROBE_ZONE_ITERATIONS,
                keep_ede=False,
            )
            return matrix, True
        return probe_with_policy(
            inet.network,
            deployed.ip,
            probes,
            deployed.probe_source_ip,
            f"atlas{index}",
            PROBE_ZONE_ITERATIONS,
            policy,
            keep_ede=False,
        )

    def survey_record(index, matrix, healthy, requeued=False, degraded=False):
        record = {
            "access": deployment[index].access,
            "ip": deployment[index].ip,
            "matrix": matrix_to_record(matrix),
            "healthy": bool(healthy),
        }
        if requeued:
            record["requeued"] = True
        if degraded:
            record["degraded"] = True
        return record

    phase_of = {"d": "scan", "t": "tlds", "r": "survey"}
    done = resumed = executed = 0
    deferred = []  # unhealthy *open* survey units awaiting the requeue pass
    for unit in universe.iter_shard(shard, plan.workers):
        key = unit_key(unit)
        if checkpoint.done(key):
            done += 1
            resumed += 1
            heartbeat.advance(units_done=done)
            shutdown.check()
            continue
        kind, name = unit
        heartbeat.advance(phase=phase_of[kind])
        if kind == "d":
            record = run_domain_unit(name)
        elif kind == "t":
            record = run_tld_unit(name)
        else:
            index = int(name)
            if deployment[index].access == "closed":
                if index not in atlas_allowed:
                    record = {"skip": True}
                else:
                    matrix, healthy = executor.submit(
                        lambda i=index: probe_closed(i)
                    )
                    record = survey_record(
                        index, matrix, healthy, degraded=not healthy
                    )
            else:
                matrix, healthy = executor.submit(
                    lambda i=index: probe_open(i, f"r{i}")
                )
                if not healthy and policy is not None:
                    if checkpoint.note(key, "quarantined") and obs.enabled:
                        obs.registry.counter(
                            "repro_campaign_quarantined_total",
                            "Targets set aside as unhealthy during the "
                            "main pass.",
                            labelnames=("campaign",),
                        ).labels(campaign="survey").inc()
                    deferred.append((index, key))
                    continue
                record = survey_record(index, matrix, healthy)
        checkpoint.record(key, record)
        done += 1
        executed += 1
        heartbeat.advance(units_done=done)
        killer.after_unit(done)
        shutdown.check()

    if engine is not None:
        engine.drain()
    if executor is not None:
        executor.drain()

    # End-of-shard requeue for quarantined open resolvers — the
    # worker-local analogue of ResolverSurvey._requeue, with requeue
    # entry counted idempotently by unit key across resume boundaries.
    if deferred and policy is not None:
        fresh = sum(1 for __, key in deferred if checkpoint.note(key))
        if obs.enabled and fresh:
            obs.registry.counter(
                "repro_campaign_requeued_total",
                "Targets quarantined for an end-of-campaign requeue pass "
                "(counted once per job key across resumes).",
                labelnames=("campaign",),
            ).labels(campaign="survey").inc(fresh)
        last = {}
        for requeue_round in range(policy.requeue_attempts):
            if not deferred:
                break
            executor.drain()
            if policy.requeue_delay_ms:
                inet.network.clock_ms += policy.requeue_delay_ms
            still_failing = []
            for index, key in deferred:
                matrix, healthy = executor.submit(
                    lambda i=index, r=requeue_round: probe_open(
                        i, f"r{i}-rq{r}"
                    )
                )
                if healthy:
                    checkpoint.record(
                        key, survey_record(index, matrix, True, requeued=True)
                    )
                    done += 1
                    executed += 1
                    heartbeat.advance(units_done=done)
                    killer.after_unit(done)
                    shutdown.check()
                else:
                    last[key] = matrix
                    still_failing.append((index, key))
            deferred = still_failing
        for index, key in deferred:
            checkpoint.record(
                key,
                survey_record(
                    index, last[key], False, requeued=True, degraded=True
                ),
            )
            done += 1
            executed += 1
            heartbeat.advance(units_done=done)
        executor.drain()

    checkpoint.flush()
    checkpoint.compact()
    heartbeat.advance(phase="finalize")

    report = {
        "shard": shard,
        "attempt": attempt,
        "units": my_total,
        "resumed": resumed,
        "executed": executed,
        "clock_ms": inet.network.kernel.now,
        "events": inet.network.kernel.events_run,
        "queries": engine.stats.queries if engine is not None else 0,
        "build_seconds": round(measure_start - build_start, 3),
        "measure_seconds": round(time.perf_counter() - measure_start, 3),
        # CPU time is immune to sibling-worker contention: the fleet's
        # wall-clock floor with one core per worker.
        "build_cpu_seconds": round(measure_start_cpu - build_start_cpu, 3),
        "measure_cpu_seconds": round(time.process_time() - measure_start_cpu, 3),
        "built": heartbeat.built,
        "build_cache": (
            dict(build_cache.handle().events)
            if build_cache.handle() is not None
            else None
        ),
        "metrics": obs.registry.to_json() if obs.enabled else None,
    }
    _atomic_json(spec["done_path"], report)
    heartbeat.advance(phase="done")
    heartbeat.stop()
    signing.zone_signed_listener = None


# -- the supervisor ----------------------------------------------------------


@dataclass
class Coverage:
    """What fraction of the campaign the merged report actually covers."""

    units_total: int
    units_merged: int = 0
    #: Unit keys no surviving shard delivered (quarantined shards).
    missing: list = field(default_factory=list)
    #: Shards that exceeded their restart budget.
    lame_shards: list = field(default_factory=list)
    #: Shards stopped cleanly by an operator signal (journal flushed).
    stopped_shards: list = field(default_factory=list)

    @property
    def complete(self):
        return not self.missing and not self.lame_shards


@dataclass
class _MergedResolver:
    """Stand-in for DeployedResolver in merged survey entries."""

    ip: str
    access: str


@dataclass
class SupervisedOutcome:
    """Deterministically merged shard outputs plus fleet accounting."""

    domain_results: list
    total_domains: int
    tld_results: list
    entries: list
    coverage: Coverage
    restarts: int = 0
    heartbeat_timeouts: int = 0
    shard_reports: list = field(default_factory=list)


class _ShardState:
    def __init__(self, shard, units_assigned):
        self.shard = shard
        self.units_assigned = units_assigned
        self.attempt = 0
        self.status = "pending"      # pending | running | done | lame | stopped
        self.handle = None
        self.next_start_t = 0.0
        self.watchdog = None


def _log(message):
    print(f"[supervisor] {message}", file=sys.stderr)


def _supervisor_counter(name, help_text, **labels):
    if not obs.enabled:
        return
    labelnames = tuple(sorted(labels))
    family = obs.registry.counter(name, help_text, labelnames=labelnames)
    (family.labels(**labels) if labelnames else family).inc()


def run_supervised(plan):
    """Run the campaign across a supervised worker fleet; returns a
    :class:`SupervisedOutcome` with deterministically merged results."""
    if plan.workers < 2:
        raise ValueError("run_supervised needs workers >= 2")
    os.makedirs(plan.state_dir, exist_ok=True)
    units, domain_specs, tld_specs = plan_units(plan)
    if plan.collect_metrics:
        obs.enable()

    kill_model = None
    if plan.kill is not None:
        from repro.net.faults import ProcessKill

        rate, max_kills, hang_rate, kill_seed = plan.kill
        kill_model = ProcessKill(
            rate=rate, max_kills=max_kills, hang_rate=hang_rate, seed=kill_seed
        )

    shards = [
        _ShardState(shard, len(shard_units(units, shard, plan.workers)))
        for shard in range(plan.workers)
    ]
    for state in shards:
        # Stale done/error files from an earlier run must not mask a
        # shard that still has work (its checkpoint holds the progress).
        for path in (
            _done_path(plan.state_dir, state.shard),
            _error_path(plan.state_dir, state.shard),
        ):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    restarts = heartbeat_timeouts = 0
    plan_dict = plan.to_dict()

    def launch(state):
        directive = None
        if kill_model is not None:
            action, after_units = kill_model.decide(
                state.shard, state.attempt, state.units_assigned
            )
            if action is not None:
                directive = {"action": action, "after_units": after_units}
        spec = {
            "plan": plan_dict,
            "shard": state.shard,
            "attempt": state.attempt,
            "checkpoint_path": _checkpoint_path(plan.state_dir, state.shard),
            "heartbeat_path": _heartbeat_path(plan.state_dir, state.shard),
            "done_path": _done_path(plan.state_dir, state.shard),
            "error_path": _error_path(plan.state_dir, state.shard),
            "directive": directive,
            # Spawned workers start a fresh interpreter whose fastpath
            # state comes from the environment alone — ship the
            # parent's programmatic disables so --disable-fastpath
            # governs the whole fleet.
            "fastpath_disable": ",".join(fastpath.disabled_names()),
        }
        state.handle = WorkerHandle(worker_main, spec, spec["heartbeat_path"])
        state.watchdog = Watchdog(plan.stall_timeout_s)
        state.status = "running"
        state.handle.start()
        _log(
            f"shard {state.shard} attempt {state.attempt} started "
            f"(pid {state.handle.pid}, {state.units_assigned} units"
            + (f", directive={directive['action']}" if directive else "")
            + ")"
        )

    def quarantine_or_restart(state, reason):
        nonlocal restarts
        if state.attempt + 1 > plan.max_restarts:
            state.status = "lame"
            _supervisor_counter(
                "repro_supervisor_lame_shards_total",
                "Shards quarantined after exhausting their restart budget.",
            )
            error_tail = ""
            try:
                with open(
                    _error_path(plan.state_dir, state.shard),
                    encoding="utf-8",
                ) as handle:
                    error_tail = handle.read().strip().splitlines()[-1]
            except (OSError, IndexError):
                pass
            _log(
                f"shard {state.shard} quarantined after "
                f"{state.attempt + 1} attempts ({reason})"
                + (f": {error_tail}" if error_tail else "")
            )
            return
        state.attempt += 1
        restarts += 1
        _supervisor_counter(
            "repro_supervisor_restarts_total",
            "Worker restarts performed by the campaign supervisor.",
            shard=str(state.shard),
        )
        delay = backoff_delay(state.attempt, plan.restart_backoff_s)
        state.next_start_t = time.time() + delay
        state.status = "pending"
        _log(
            f"shard {state.shard} died ({reason}); restart "
            f"attempt {state.attempt} in {delay:.2f}s "
            "(resuming from its journal)"
        )

    for state in shards:
        launch(state)
    if obs.enabled:
        obs.registry.gauge(
            "repro_supervisor_workers",
            "Worker shard count of the supervised campaign.",
        ).set(plan.workers)

    last_progress_line = (0, 0.0)
    while True:
        running = [s for s in shards if s.status == "running"]
        pending = [s for s in shards if s.status == "pending"]
        if not running and not pending:
            break
        now = time.time()
        for state in pending:
            if now >= state.next_start_t:
                launch(state)
        units_live = 0
        for state in running:
            handle = state.handle
            if not handle.is_alive():
                handle.join()
                exitcode = handle.exitcode
                if os.path.exists(_done_path(plan.state_dir, state.shard)):
                    state.status = "done"
                    _log(
                        f"shard {state.shard} done "
                        f"(attempt {state.attempt}, exit {exitcode})"
                    )
                else:
                    beat = handle.heartbeat()
                    if (
                        beat is not None
                        and beat.attempt == state.attempt
                        and beat.phase == "terminated"
                    ):
                        # Operator SIGTERM/SIGINT: the worker flushed its
                        # journal and said goodbye — an intentional stop,
                        # not a crash to restart.
                        state.status = "stopped"
                        _log(
                            f"shard {state.shard} stopped by operator "
                            f"signal (exit {exitcode}); journal flushed, "
                            "not restarting"
                        )
                    else:
                        quarantine_or_restart(state, f"exit {exitcode}")
                continue
            beat = handle.heartbeat()
            state.watchdog.observe(beat)
            if beat is not None and beat.attempt == state.attempt:
                units_live += beat.units_done
            if state.watchdog.stalled():
                heartbeat_timeouts += 1
                _supervisor_counter(
                    "repro_supervisor_heartbeat_timeouts_total",
                    "Workers killed by the supervisor's stall watchdog.",
                )
                handle.kill()
                handle.join()
                quarantine_or_restart(state, "heartbeat stalled")
        done_units = sum(
            s.units_assigned for s in shards if s.status == "done"
        )
        progress = done_units + units_live
        if (
            progress != last_progress_line[0]
            and now - last_progress_line[1] >= 1.0
        ):
            finished = sum(1 for s in shards if s.status == "done")
            _log(
                f"{finished}/{plan.workers} shards done, "
                f"units {min(progress, len(units))}/{len(units)}"
            )
            last_progress_line = (progress, now)
        time.sleep(plan.poll_interval_s)

    outcome = merge_shards(plan, units, domain_specs, shards)
    outcome.restarts = restarts
    outcome.heartbeat_timeouts = heartbeat_timeouts
    if not outcome.coverage.complete:
        coverage = outcome.coverage
        _log(
            f"WARNING: partial coverage {coverage.units_merged}/"
            f"{coverage.units_total} units; lame shards "
            f"{coverage.lame_shards}; first missing "
            f"{coverage.missing[:5]}"
        )
    _log(
        f"fleet finished: workers={plan.workers} restarts={restarts} "
        f"heartbeat_timeouts={heartbeat_timeouts} "
        f"coverage={outcome.coverage.units_merged}/"
        f"{outcome.coverage.units_total}"
    )
    return outcome


def merge_shards(plan, units, domain_specs, shards):
    """Deterministic merge of shard checkpoints, in global unit order.

    Reports only need the per-unit records; shards that died keep
    whatever their journal salvaged, so quarantined shards degrade the
    merge to a partial report with explicit coverage accounting instead
    of sinking the campaign.
    """
    records = {}
    for state in shards:
        try:
            checkpoint = CampaignCheckpoint(
                _checkpoint_path(plan.state_dir, state.shard),
                schema=WORKER_SCHEMA,
            )
        except CampaignError:
            continue  # nothing salvageable from this shard
        for key in checkpoint.keys():
            records[key] = checkpoint.get(key)

    coverage = Coverage(
        units_total=len(units),
        lame_shards=[s.shard for s in shards if s.status == "lame"],
        stopped_shards=[s.shard for s in shards if s.status == "stopped"],
    )
    domain_results = []
    tld_results = []
    open_entries = []
    closed_entries = []
    for unit in units:
        key = unit_key(unit)
        record = records.get(key)
        if record is None:
            coverage.missing.append(key)
            continue
        coverage.units_merged += 1
        kind, name = unit
        if kind == "d":
            if record.get("enabled"):
                domain_results.append(_scan_result_from_record(name, record))
        elif kind == "t":
            tld_results.append(_scan_result_from_record(name, record))
        elif not record.get("skip"):
            entry = _merged_entry(record)
            (open_entries if record["access"] == "open" else closed_entries
             ).append(entry)

    shard_reports = []
    for state in shards:
        try:
            with open(
                _done_path(plan.state_dir, state.shard), encoding="utf-8"
            ) as handle:
                shard_reports.append(json.load(handle))
        except (OSError, ValueError):
            continue
    if plan.collect_metrics:
        _merge_metrics(shard_reports)

    return SupervisedOutcome(
        domain_results=domain_results,
        total_domains=len(domain_specs),
        tld_results=tld_results,
        entries=open_entries + closed_entries,
        coverage=coverage,
        shard_reports=shard_reports,
    )


def _merged_entry(record):
    from repro.core.resolver_compliance import classify_resolver
    from repro.scanner.resolver_scan import SurveyEntry, matrix_from_record

    matrix = matrix_from_record(record["matrix"])
    classification = classify_resolver(matrix, resolver=record["ip"])
    if record.get("degraded"):
        classification.notes.append(
            ATLAS_DEGRADED_NOTE
            if record["access"] == "closed"
            else SURVEY_DEGRADED_NOTE
        )
    return SurveyEntry(
        _MergedResolver(ip=record["ip"], access=record["access"]),
        matrix,
        classification,
        requeued=bool(record.get("requeued")),
    )


def _merge_metrics(shard_reports):
    """Fold worker metric snapshots into the live registry.

    Uses the PR 6 aggregation contract: counters add, gauges take the
    max, histograms add per-bucket. Metrics from *killed* attempts died
    with their process — the merged snapshot is best-effort telemetry;
    the report itself is exact.
    """
    from repro.obs.metrics import MetricsRegistry

    for report in shard_reports:
        snapshot = report.get("metrics")
        if not snapshot:
            continue
        obs.registry.merge(MetricsRegistry.from_json(snapshot))
