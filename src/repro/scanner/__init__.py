"""Measurement tooling: the paper's §4 methodology as code.

- :mod:`repro.scanner.engine` — a zdns-style bulk query engine with rate
  limiting and retry bookkeeping;
- :mod:`repro.scanner.dnskey_scan` — stage 1: which domains are
  DNSSEC-enabled (DNSKEY present);
- :mod:`repro.scanner.nsec3_scan` — stage 2: NSEC3PARAM / NSEC3 / NS
  retrieval, RFC 5155 consistency filtering, RFC 9276 zone audits;
- :mod:`repro.scanner.resolver_scan` — the 49-probe resolver survey;
- :mod:`repro.scanner.openresolver` — open-resolver discovery;
- :mod:`repro.scanner.atlas` — RIPE-Atlas-style probing of closed
  resolvers (no EDE visibility, in-network vantage).
"""

from repro.scanner.campaign import CampaignCheckpoint, CampaignResult, job_key
from repro.scanner.engine import ScanEngine, ScanStats
from repro.scanner.dnskey_scan import dnskey_scan
from repro.scanner.nsec3_scan import DomainScanResult, nsec3_scan, scan_tlds
from repro.scanner.resolver_scan import (
    ResolverSurvey,
    SurveyRetryPolicy,
    probe_resolver,
)
from repro.scanner.openresolver import discover_open_resolvers
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.axfr import TransferRefused, ZoneTransfer, axfr
from repro.scanner.zonewalk import Nsec3Walker, walk_nsec_zone

__all__ = [
    "CampaignCheckpoint",
    "CampaignResult",
    "job_key",
    "ScanEngine",
    "ScanStats",
    "SurveyRetryPolicy",
    "dnskey_scan",
    "DomainScanResult",
    "nsec3_scan",
    "scan_tlds",
    "ResolverSurvey",
    "probe_resolver",
    "discover_open_resolvers",
    "AtlasCampaign",
    "TransferRefused",
    "ZoneTransfer",
    "axfr",
    "Nsec3Walker",
    "walk_nsec_zone",
]
