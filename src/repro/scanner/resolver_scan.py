"""The resolver survey (§4.2/§5.2): probe the 49 zones, classify Items 6–12.

Each resolver is asked, with a unique cache-busting label, for a name
under every probe zone. The response matrix — RCODE, AD bit, EDE codes —
feeds :func:`repro.core.resolver_compliance.classify_resolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.resolver_compliance import ProbeResult, classify_resolver
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.resolver.stub import StubClient
from repro.testbed.rfc9276_wild import PROBE_ZONE_ITERATIONS


def _to_probe_result(answer, keep_ede=True):
    return ProbeResult(
        rcode=answer.rcode,
        ad=answer.ad,
        ede_codes=tuple(answer.ede_codes) if keep_ede else (),
        ra=answer.ra,
        answered=answer.answered,
    )


def _ask_probe(client, resolver_ip, probe_set, key, unique):
    """One probe query, cost-profiled per probe zone when obs is enabled."""
    qname = probe_set.probe_name(key, unique)
    if not obs.enabled:
        return client.ask(resolver_ip, qname, RdataType.A)
    cost_start = meter.snapshot()
    answer = client.ask(resolver_ip, qname, RdataType.A)
    obs.profiler.record_probe(
        probe_set.zone_label(key),
        meter.snapshot() - cost_start,
        answer.rcode,
        answered=answer.answered,
    )
    return answer


def _confirmed_probe(client, resolver_ip, probe_set, key, unique, confirm):
    """One probe cell, re-queried until two consecutive answers agree.

    A resolver-side transient (an upstream query lost to network weather
    makes the resolver SERVFAIL once) is indistinguishable from policy in
    a single answer. The paper's §5.2 move — query again with a fresh
    label so the cache cannot echo the damage — generalises per cell:
    accept an answer only once two consecutive asks agree on
    (rcode, AD, answered). With *confirm* extra asks exhausted, the last
    answer stands and the matrix-level stability pass gets to object.
    """
    answer = _ask_probe(client, resolver_ip, probe_set, key, unique)
    for extra in range(confirm):
        again = _ask_probe(client, resolver_ip, probe_set, key, f"{unique}c{extra}")
        if (
            again.rcode == answer.rcode
            and again.ad == answer.ad
            and again.answered == answer.answered
        ):
            return again
        answer = again
    return answer


def probe_resolver(
    network,
    resolver_ip,
    probe_set,
    source_ip,
    unique,
    iterations=PROBE_ZONE_ITERATIONS,
    keep_ede=True,
    breaker=None,
    retries=1,
    confirm=0,
):
    """Probe one resolver; returns the matrix for classify_resolver().

    With a shared *breaker*, probes to a quarantined resolver fail fast
    (they come back as unanswered entries) instead of burning the full
    per-probe retry schedule on a host that is known dead. *retries* is
    the stub transport's per-query retry count; *confirm* > 0 turns on
    per-cell answer confirmation (see :func:`_confirmed_probe`).
    """
    client = StubClient(network, source_ip, retries=retries, breaker=breaker)
    matrix = {}
    matrix["valid"] = _to_probe_result(
        _confirmed_probe(client, resolver_ip, probe_set, "valid", unique, confirm),
        keep_ede,
    )
    matrix["expired"] = _to_probe_result(
        _confirmed_probe(client, resolver_ip, probe_set, "expired", unique, confirm),
        keep_ede,
    )
    for count in iterations:
        if count == 0:
            continue
        answer = _confirmed_probe(
            client, resolver_ip, probe_set, count, unique, confirm
        )
        matrix[count] = _to_probe_result(answer, keep_ede)
    matrix["it-2501-expired"] = _to_probe_result(
        _confirmed_probe(
            client, resolver_ip, probe_set, "it-2501-expired", unique, confirm
        ),
        keep_ede,
    )
    return matrix


def probe_stability(
    network,
    resolver_ip,
    probe_set,
    source_ip,
    unique,
    iterations=(1, 50, 100, 150, 151, 500),
    attempts=2,
):
    """Re-probe a resolver and report whether its answers are stable.

    The paper re-queried apparent Item 12 violators and found that
    "different response patterns" usually meant a broken resolver, not a
    real three-phase configuration. Returns ``(stable, matrices)``.
    """
    matrices = []
    for attempt in range(attempts):
        matrices.append(
            probe_resolver(
                network,
                resolver_ip,
                probe_set,
                source_ip,
                f"{unique}-a{attempt}",
                iterations=iterations,
            )
        )
    first = matrices[0]
    stable = all(
        all(
            matrix[key].rcode == first[key].rcode and matrix[key].ad == first[key].ad
            for key in first
        )
        for matrix in matrices[1:]
    )
    return stable, matrices


@dataclass
class SurveyEntry:
    """One resolver's probe matrix plus its classification."""

    resolver: object  # testbed.resolvers.DeployedResolver
    matrix: dict
    classification: object
    #: Satisfied from a checkpoint without re-querying.
    resumed: bool = False
    #: Entered the end-of-campaign requeue before producing this matrix.
    requeued: bool = False


@dataclass(frozen=True)
class SurveyRetryPolicy:
    """Graceful degradation knobs for :class:`ResolverSurvey`.

    *max_attempts* bounds the per-resolver probe attempts in the main
    pass; a matrix is *healthy* when every probe was answered. With
    *require_stable*, two consecutive healthy matrices must agree
    (rcode + AD per probe) before a resolver is admitted — the paper's
    §5.2 re-probe generalised to the whole matrix, which filters out
    fault-induced SERVFAILs that a single pass cannot distinguish from
    policy. *stub_retries* is the stub transport's per-query retry count
    and *confirm* the number of per-cell confirmation re-asks (each with
    a fresh cache-busting label) — both defend individual cells so the
    matrix-level check converges. Unhealthy resolvers are quarantined
    and requeued after the main pass, *requeue_attempts* times, with
    *requeue_delay_ms* of simulated time between passes so outages can
    clear.
    """

    max_attempts: int = 3
    require_stable: bool = False
    requeue_attempts: int = 2
    requeue_delay_ms: float = 2000.0
    stub_retries: int = 3
    confirm: int = 2


def _matrix_healthy(matrix):
    return all(result.answered for result in matrix.values())


def _matrices_agree(first, second):
    if first.keys() != second.keys():
        return False
    return all(
        first[key].rcode == second[key].rcode
        and first[key].ad == second[key].ad
        and first[key].answered == second[key].answered
        for key in first
    )


def probe_with_policy(
    network,
    resolver_ip,
    probe_set,
    source_ip,
    unique,
    iterations,
    policy,
    keep_ede=True,
    breaker=None,
):
    """Probe one resolver under a :class:`SurveyRetryPolicy`.

    Returns ``(matrix, healthy)``: *healthy* means every probe answered
    and, with ``require_stable``, two consecutive attempts agreed. The
    last matrix is returned either way so callers can keep the evidence.
    """
    previous = None
    matrix = None
    for attempt in range(policy.max_attempts):
        matrix = probe_resolver(
            network,
            resolver_ip,
            probe_set,
            source_ip,
            f"{unique}-t{attempt}",
            iterations=iterations,
            keep_ede=keep_ede,
            breaker=breaker,
            retries=policy.stub_retries,
            confirm=policy.confirm,
        )
        if not _matrix_healthy(matrix):
            previous = None
            continue
        if not policy.require_stable:
            return matrix, True
        if previous is not None and _matrices_agree(previous, matrix):
            return matrix, True
        previous = matrix
    return matrix, False


def matrix_to_record(matrix):
    """A probe matrix as a JSON-able checkpoint record (keys keep type)."""
    probes = []
    for key, result in matrix.items():
        tag = "i" if isinstance(key, int) else "s"
        probes.append(
            [
                tag,
                key,
                {
                    "rcode": int(result.rcode),
                    "ad": bool(result.ad),
                    "ede": list(result.ede_codes),
                    "ra": bool(result.ra),
                    "answered": bool(result.answered),
                },
            ]
        )
    return {"probes": probes}


def matrix_from_record(record):
    matrix = {}
    for tag, key, fields_ in record["probes"]:
        matrix[int(key) if tag == "i" else str(key)] = ProbeResult(
            rcode=fields_["rcode"],
            ad=fields_["ad"],
            ede_codes=tuple(fields_["ede"]),
            ra=fields_["ra"],
            answered=fields_["answered"],
        )
    return matrix


@dataclass
class ResolverSurvey:
    """Runs the full survey over a deployed resolver population.

    With a :class:`SurveyRetryPolicy` the survey degrades gracefully
    under network weather: unhealthy resolvers (unanswered probes —
    dead, flapping, or circuit-quarantined) are set aside during the
    main pass and requeued at the end of the campaign; what still fails
    is admitted with a ``degraded`` note rather than silently
    misclassified. With *checkpoint_path*, completed matrices persist to
    JSON and a resumed survey re-classifies them locally — zero
    duplicate queries.
    """

    network: object
    probe_set: object
    scanner_source_ip: str
    #: Restrict it-N probing to a subset for cheap smoke surveys.
    iterations: tuple = PROBE_ZONE_ITERATIONS
    #: Re-probe apparent Item 12 violators and discount unstable ones —
    #: the paper's §5.2 verification step ("querying these resolvers again
    #: often results in different response patterns").
    verify_item12_stability: bool = False
    #: Graceful-degradation knobs (None = legacy single-pass behaviour).
    retry_policy: object = None
    #: JSON checkpoint for resumable campaigns (None = not persisted).
    checkpoint_path: str = None
    #: Archive an unreadable/foreign checkpoint and start fresh instead
    #: of raising CampaignError (the CLI's --discard-checkpoint).
    checkpoint_discard: bool = False
    #: Shared per-destination circuit breaker (created lazily when a
    #: retry policy is set).
    breaker: object = None
    #: In-flight window on the simulation kernel: how many resolvers'
    #: probe sessions overlap on the simulated clock (1 = serial; the
    #: answers are identical at any width, only elapsed time changes).
    concurrency: int = 1
    entries: list = field(default_factory=list)

    def run(self, deployed_resolvers):
        """Probe every resolver (open from outside, closed from inside)."""
        from repro.net.resilience import CircuitBreaker
        from repro.net.sim import CampaignExecutor
        from repro.scanner.campaign import CampaignCheckpoint

        self._executor = CampaignExecutor(self.network.kernel, self.concurrency)
        policy = self.retry_policy
        if policy is not None and self.breaker is None:
            recovery = min(1500.0, policy.requeue_delay_ms or 1500.0)
            self.breaker = CircuitBreaker(
                clock=lambda: self.network.clock_ms, recovery_ms=recovery
            )
        checkpoint = (
            CampaignCheckpoint(
                self.checkpoint_path,
                schema="survey-matrix/1",
                discard=self.checkpoint_discard,
            )
            if self.checkpoint_path
            else None
        )
        self.entries = []
        deferred = []
        deployed_resolvers = list(deployed_resolvers)
        if obs.console is not None:
            obs.console.expect(len(deployed_resolvers))
        for index, deployed in enumerate(deployed_resolvers):
            if deployed.access == "closed":
                # Unreachable from the scanner; the Atlas campaign covers it.
                continue
            unique = f"r{index}"
            key = f"{deployed.ip}#{index}"
            if checkpoint is not None and checkpoint.done(key):
                matrix = matrix_from_record(checkpoint.get(key))
                # Classification is a pure function of the matrix, so a
                # resume recomputes it without touching the network (the
                # item-12 stability verdict is baked into the stored
                # matrix's provenance — no re-probing).
                classification = classify_resolver(matrix, resolver=deployed.ip)
                self.entries.append(
                    SurveyEntry(deployed, matrix, classification, resumed=True)
                )
                continue
            matrix, healthy = self._executor.submit(
                lambda d=deployed, u=unique: self._probe_with_policy(d, u)
            )
            if not healthy and policy is not None:
                deferred.append((index, deployed, matrix))
                # Like the requeue counter below, quarantines are counted
                # once per job key: the checkpointed note survives a
                # resume, so a resolver quarantined again after a crash
                # does not inflate the stats.
                fresh = checkpoint is None or checkpoint.note(key, "quarantined")
                if obs.enabled and fresh:
                    obs.registry.counter(
                        "repro_campaign_quarantined_total",
                        "Targets set aside as unhealthy during the main pass.",
                        labelnames=("campaign",),
                    ).labels(campaign="survey").inc()
                if obs.events:
                    obs.emit("campaign.quarantine", resolver=deployed.ip)
                continue
            self._admit(deployed, unique, matrix, checkpoint, key)

        self._executor.drain()
        self._requeue(deferred, checkpoint)
        self._executor.drain()
        if checkpoint is not None:
            checkpoint.flush()
        return self.entries

    def _requeue(self, deferred, checkpoint):
        """End-of-campaign second chance for quarantined resolvers."""
        policy = self.retry_policy
        if policy is None:
            return
        # Idempotent by job key: a resolver whose requeue straddles a
        # crash/resume boundary must not be double-counted in the stats
        # (the note is journaled with the checkpoint).
        if checkpoint is not None:
            fresh = sum(
                1
                for index, deployed, __ in deferred
                if checkpoint.note(f"{deployed.ip}#{index}", "requeued")
            )
        else:
            fresh = len(deferred)
        if obs.enabled and fresh:
            obs.registry.counter(
                "repro_campaign_requeued_total",
                "Targets quarantined for an end-of-campaign requeue pass "
                "(counted once per job key across resumes).",
                labelnames=("campaign",),
            ).labels(campaign="survey").inc(fresh)
        for attempt in range(policy.requeue_attempts):
            if not deferred:
                return
            self._executor.drain()
            if policy.requeue_delay_ms:
                self.network.clock_ms += policy.requeue_delay_ms
            still_failing = []
            for index, deployed, last_matrix in deferred:
                unique = f"r{index}-rq{attempt}"
                matrix, healthy = self._executor.submit(
                    lambda d=deployed, u=unique: self._probe_with_policy(d, u)
                )
                if healthy:
                    self._admit(
                        deployed, unique, matrix, checkpoint,
                        f"{deployed.ip}#{index}", requeued=True,
                    )
                else:
                    still_failing.append((index, deployed, matrix))
            deferred = still_failing
        for index, deployed, matrix in deferred:
            # Out of attempts: keep the evidence, but say it is damaged
            # rather than let a dead resolver masquerade as non-validating.
            classification = classify_resolver(matrix, resolver=deployed.ip)
            classification.notes.append(
                "degraded: probes unanswered after end-of-campaign requeue"
            )
            self.entries.append(
                SurveyEntry(deployed, matrix, classification, requeued=True)
            )
            if obs.enabled:
                obs.registry.counter(
                    "repro_campaign_completed_total",
                    "Campaign jobs settled (scan targets / surveyed resolvers).",
                    labelnames=("campaign",),
                ).labels(campaign="survey").inc()

    def _admit(self, deployed, unique, matrix, checkpoint, key, requeued=False):
        classification = classify_resolver(matrix, resolver=deployed.ip)
        if self.verify_item12_stability and classification.item12_gap:
            self._verify_gap(deployed, unique, classification)
        self.entries.append(
            SurveyEntry(deployed, matrix, classification, requeued=requeued)
        )
        if obs.enabled:
            obs.registry.counter(
                "repro_campaign_completed_total",
                "Campaign jobs settled (scan targets / surveyed resolvers).",
                labelnames=("campaign",),
            ).labels(campaign="survey").inc()
        if checkpoint is not None:
            checkpoint.record(key, matrix_to_record(matrix))

    def _probe_with_policy(self, deployed, unique):
        """Probe once (legacy) or until healthy/stable (with a policy)."""
        policy = self.retry_policy
        if policy is None:
            matrix = probe_resolver(
                self.network,
                deployed.ip,
                self.probe_set,
                self.scanner_source_ip,
                unique,
                iterations=self.iterations,
            )
            return matrix, True
        return probe_with_policy(
            self.network,
            deployed.ip,
            self.probe_set,
            self.scanner_source_ip,
            unique,
            self.iterations,
            policy,
            breaker=self.breaker,
        )

    def _verify_gap(self, deployed, unique, classification):
        stable, __ = probe_stability(
            self.network,
            deployed.ip,
            self.probe_set,
            self.scanner_source_ip,
            f"{unique}-verify",
            iterations=self.iterations,
        )
        if not stable:
            classification.item12_gap = False
            classification.notes.append(
                "Item 12 gap discounted: responses unstable across re-probes"
            )

    def classifications(self):
        return [entry.classification for entry in self.entries]
