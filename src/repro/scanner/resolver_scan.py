"""The resolver survey (§4.2/§5.2): probe the 49 zones, classify Items 6–12.

Each resolver is asked, with a unique cache-busting label, for a name
under every probe zone. The response matrix — RCODE, AD bit, EDE codes —
feeds :func:`repro.core.resolver_compliance.classify_resolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.resolver_compliance import ProbeResult, classify_resolver
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.resolver.stub import StubClient
from repro.testbed.rfc9276_wild import PROBE_ZONE_ITERATIONS


def _to_probe_result(answer, keep_ede=True):
    return ProbeResult(
        rcode=answer.rcode,
        ad=answer.ad,
        ede_codes=tuple(answer.ede_codes) if keep_ede else (),
        ra=answer.ra,
        answered=answer.answered,
    )


def _ask_probe(client, resolver_ip, probe_set, key, unique):
    """One probe query, cost-profiled per probe zone when obs is enabled."""
    qname = probe_set.probe_name(key, unique)
    if not obs.enabled:
        return client.ask(resolver_ip, qname, RdataType.A)
    cost_start = meter.snapshot()
    answer = client.ask(resolver_ip, qname, RdataType.A)
    obs.profiler.record_probe(
        probe_set.zone_label(key),
        meter.snapshot() - cost_start,
        answer.rcode,
        answered=answer.answered,
    )
    return answer


def probe_resolver(
    network,
    resolver_ip,
    probe_set,
    source_ip,
    unique,
    iterations=PROBE_ZONE_ITERATIONS,
    keep_ede=True,
):
    """Probe one resolver; returns the matrix for classify_resolver()."""
    client = StubClient(network, source_ip)
    matrix = {}
    matrix["valid"] = _to_probe_result(
        _ask_probe(client, resolver_ip, probe_set, "valid", unique), keep_ede
    )
    matrix["expired"] = _to_probe_result(
        _ask_probe(client, resolver_ip, probe_set, "expired", unique), keep_ede
    )
    for count in iterations:
        if count == 0:
            continue
        answer = _ask_probe(client, resolver_ip, probe_set, count, unique)
        matrix[count] = _to_probe_result(answer, keep_ede)
    matrix["it-2501-expired"] = _to_probe_result(
        _ask_probe(client, resolver_ip, probe_set, "it-2501-expired", unique),
        keep_ede,
    )
    return matrix


def probe_stability(
    network,
    resolver_ip,
    probe_set,
    source_ip,
    unique,
    iterations=(1, 50, 100, 150, 151, 500),
    attempts=2,
):
    """Re-probe a resolver and report whether its answers are stable.

    The paper re-queried apparent Item 12 violators and found that
    "different response patterns" usually meant a broken resolver, not a
    real three-phase configuration. Returns ``(stable, matrices)``.
    """
    matrices = []
    for attempt in range(attempts):
        matrices.append(
            probe_resolver(
                network,
                resolver_ip,
                probe_set,
                source_ip,
                f"{unique}-a{attempt}",
                iterations=iterations,
            )
        )
    first = matrices[0]
    stable = all(
        all(
            matrix[key].rcode == first[key].rcode and matrix[key].ad == first[key].ad
            for key in first
        )
        for matrix in matrices[1:]
    )
    return stable, matrices


@dataclass
class SurveyEntry:
    """One resolver's probe matrix plus its classification."""

    resolver: object  # testbed.resolvers.DeployedResolver
    matrix: dict
    classification: object


@dataclass
class ResolverSurvey:
    """Runs the full survey over a deployed resolver population."""

    network: object
    probe_set: object
    scanner_source_ip: str
    #: Restrict it-N probing to a subset for cheap smoke surveys.
    iterations: tuple = PROBE_ZONE_ITERATIONS
    #: Re-probe apparent Item 12 violators and discount unstable ones —
    #: the paper's §5.2 verification step ("querying these resolvers again
    #: often results in different response patterns").
    verify_item12_stability: bool = False
    entries: list = field(default_factory=list)

    def run(self, deployed_resolvers):
        """Probe every resolver (open from outside, closed from inside)."""
        self.entries = []
        for index, deployed in enumerate(deployed_resolvers):
            if deployed.access == "closed":
                # Unreachable from the scanner; the Atlas campaign covers it.
                continue
            unique = f"r{index}"
            matrix = probe_resolver(
                self.network,
                deployed.ip,
                self.probe_set,
                self.scanner_source_ip,
                unique,
                iterations=self.iterations,
            )
            classification = classify_resolver(matrix, resolver=deployed.ip)
            if self.verify_item12_stability and classification.item12_gap:
                self._verify_gap(deployed, unique, classification)
            self.entries.append(SurveyEntry(deployed, matrix, classification))
        return self.entries

    def _verify_gap(self, deployed, unique, classification):
        stable, __ = probe_stability(
            self.network,
            deployed.ip,
            self.probe_set,
            self.scanner_source_ip,
            f"{unique}-verify",
            iterations=self.iterations,
        )
        if not stable:
            classification.item12_gap = False
            classification.notes.append(
                "Item 12 gap discounted: responses unstable across re-probes"
            )

    def classifications(self):
        return [entry.classification for entry in self.entries]
