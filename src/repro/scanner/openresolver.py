"""Open resolver discovery (§4.2, step i-iv).

The paper sent A queries for unique subdomains of a scan domain to every
routable IPv4 address and kept the 1.4 M that answered NOERROR. Here the
candidate set is every address attached to the simulated network (plus
however many unattached addresses the caller wants, to exercise the
timeout path); a responder counts as an open resolver when it returns
NOERROR *with an answer* for a name only a recursive resolver could
resolve.
"""

from __future__ import annotations

import random

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.stub import StubClient


def discover_open_resolvers(
    network,
    scan_domain_fn,
    source_ip,
    candidates=None,
    ipv6=None,
    extra_unrouted=0,
    seed=18,
):
    """Scan candidate addresses; returns the list of open resolver IPs.

    *scan_domain_fn(unique)* must return a resolvable FQDN unique to this
    probe (the testbed's ``valid`` wildcard zone serves this purpose, like
    the paper's scan domain).
    """
    rng = random.Random(seed)
    client = StubClient(network, source_ip, retries=0)
    if candidates is None:
        candidates = network.addresses(ipv6=ipv6)
    candidates = list(candidates)
    for index in range(extra_unrouted):
        candidates.append(f"172.31.{rng.randrange(256)}.{rng.randrange(1, 255)}")
    rng.shuffle(candidates)

    open_resolvers = []
    for index, address in enumerate(candidates):
        if address == source_ip:
            continue
        answer = client.ask(
            address, scan_domain_fn(f"scan{index}"), RdataType.A, want_dnssec=False
        )
        if not answer.answered:
            continue
        if answer.rcode == Rcode.NOERROR and answer.answer:
            open_resolvers.append(address)
    return open_resolvers
