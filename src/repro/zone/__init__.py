"""Zone model: containers, parsing, NSEC/NSEC3 chains, whole-zone signing."""

from repro.zone.zone import Zone, LookupResult, LookupStatus
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Chain, Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone
from repro.zone.parser import parse_zone_text

__all__ = [
    "Zone",
    "LookupResult",
    "LookupStatus",
    "ZoneBuilder",
    "Nsec3Chain",
    "Nsec3Params",
    "SigningPolicy",
    "sign_zone",
    "parse_zone_text",
]
