"""The zone container and its lookup semantics (RFC 1034 §4.3.2).

A :class:`Zone` maps owner names to per-type RRsets and knows how to answer
the four questions an authoritative server asks: exact answer, NODATA,
delegation, or NXDOMAIN (with wildcard synthesis). DNSSEC material —
signatures and the NSEC/NSEC3 chain — is attached by
:mod:`repro.zone.signing`.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass

from repro.dns.name import Name
from repro.dns.rrset import RRset
from repro.dns.types import RdataType


class LookupStatus(enum.Enum):
    """Outcome category of a zone lookup."""

    ANSWER = "answer"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    DELEGATION = "delegation"
    CNAME = "cname"
    WILDCARD = "wildcard"
    NOT_IN_ZONE = "not-in-zone"


@dataclass
class LookupResult:
    """What the zone found for a (name, type) question."""

    status: LookupStatus
    rrset: RRset | None = None
    #: For DELEGATION: the delegation point's NS RRset.
    delegation: RRset | None = None
    #: For WILDCARD: the wildcard owner that was expanded.
    wildcard_owner: Name | None = None
    #: For CNAME: the alias RRset to chase.
    cname: RRset | None = None


class Zone:
    """An authoritative zone: origin plus a name → type → RRset map."""

    def __init__(self, origin):
        self.origin = Name.from_text(origin)
        self.nodes = {}
        #: Set by repro.zone.signing once the zone is DNSSEC-signed.
        self.signed = False
        self.nsec3_chain = None
        self.nsec_chain = None
        self.keys = []
        #: RRSIGs keyed like RRsets: (name, type) -> RRset of RRSIGs.
        self.rrsigs = {}
        #: Bumped on every mutation; derived caches key their freshness on
        #: it (the sorted existence index below, the authoritative
        #: server's packed-answer cache).
        self.generation = 0
        #: Zero-arg callbacks fired on :meth:`touch`.
        self._mutation_listeners = []
        self._existence_index = None
        self._existence_generation = -1

    # -- mutation tracking --------------------------------------------------

    def touch(self):
        """Record a mutation: bump the generation and notify listeners.

        :meth:`add_rrset` calls this; code that edits :attr:`nodes` or
        :attr:`rrsigs` directly (zone signing does) must call it once the
        edit is complete.
        """
        self.generation += 1
        for listener in self._mutation_listeners:
            listener()

    def add_mutation_listener(self, listener):
        """Register a zero-arg callback invoked after every mutation."""
        self._mutation_listeners.append(listener)

    # -- construction ------------------------------------------------------

    def add_rrset(self, rrset):
        """Insert (or merge) an RRset; owner must be inside the zone."""
        if not rrset.name.is_subdomain_of(self.origin):
            raise ValueError(f"{rrset.name} is outside zone {self.origin}")
        node = self.nodes.setdefault(rrset.name, {})
        existing = node.get(int(rrset.rrtype))
        if existing is None:
            node[int(rrset.rrtype)] = rrset.copy()
        else:
            for rdata in rrset:
                existing.add(rdata)
        self.touch()
        return self

    def replace_rrset(self, rrset):
        """Replace (not merge) the RRset at ``(name, type)``.

        SOA serial bumps come through here: the whole RRset is swapped so
        the old serial does not linger as a second rdata.
        """
        if not rrset.name.is_subdomain_of(self.origin):
            raise ValueError(f"{rrset.name} is outside zone {self.origin}")
        node = self.nodes.setdefault(rrset.name, {})
        node[int(rrset.rrtype)] = rrset.copy()
        self.touch()
        return self

    def add(self, name, rrtype, ttl, *rdatas):
        """Convenience: add rdatas under (name, type)."""
        rrset = RRset(name, rrtype, ttl, list(rdatas))
        return self.add_rrset(rrset)

    # -- introspection ------------------------------------------------------

    def get_rrset(self, name, rrtype):
        """The RRset at (name, type), or None."""
        node = self.nodes.get(Name.from_text(name))
        if node is None:
            return None
        return node.get(int(rrtype))

    def get_rrsigs(self, name, rrtype):
        """The RRSIG RRset covering (name, type), or None."""
        return self.rrsigs.get((Name.from_text(name), int(rrtype)))

    @property
    def soa(self):
        """The apex SOA RRset (None on un-built zones)."""
        rrset = self.get_rrset(self.origin, RdataType.SOA)
        return rrset

    def names(self):
        """All owner names, canonically sorted."""
        return sorted(self.nodes)

    def all_rrsets(self):
        """Every RRset, in canonical owner/type order."""
        for name in sorted(self.nodes):
            for rrtype in sorted(self.nodes[name]):
                yield self.nodes[name][rrtype]

    def record_count(self):
        """Total RR count (rdatas, not RRsets)."""
        return sum(len(rrset) for rrset in self.all_rrsets())

    def delegation_points(self):
        """Names (other than the apex) owning NS RRsets."""
        points = []
        for name, node in self.nodes.items():
            if name != self.origin and int(RdataType.NS) in node:
                points.append(name)
        return sorted(points)

    def is_delegation_point(self, name):
        """True when *name* owns a non-apex NS RRset (a zone cut)."""
        name = Name.from_text(name)
        return name != self.origin and int(RdataType.NS) in self.nodes.get(name, {})

    def delegation_for(self, name):
        """The deepest delegation point at or above *name*, if any."""
        name = Name.from_text(name)
        candidate = name
        while candidate.label_count > self.origin.label_count:
            if self.is_delegation_point(candidate):
                return candidate
            candidate = candidate.parent()
        return None

    def authoritative_names(self):
        """Names this zone is authoritative for: in-zone, not below a cut.

        Delegation points themselves are included (the parent side of the
        cut owns the NS and optional DS RRsets); glue below them is not.
        """
        result = []
        for name in self.nodes:
            cut = self.delegation_for(name)
            if cut is not None and cut != name:
                continue
            result.append(name)
        return sorted(result)

    def empty_nonterminals(self):
        """Names with no RRsets that sit between a node and the apex.

        NSEC3 chains must include these (RFC 5155 §7.1).
        """
        present = set(self.nodes)
        empties = set()
        for name in self.authoritative_names():
            candidate = name
            while candidate.label_count > self.origin.label_count + 1:
                candidate = candidate.parent()
                if candidate not in present:
                    empties.add(candidate)
        return sorted(empties)

    # -- lookup --------------------------------------------------------------

    def lookup(self, qname, qtype):
        """Authoritative lookup per RFC 1034 §4.3.2 (plus wildcard synthesis)."""
        qname = Name.from_text(qname)
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.NOT_IN_ZONE)

        # Delegation check first: anything at or below a zone cut is referred,
        # except queries for DS at the cut itself (answered by the parent).
        cut = self.delegation_for(qname)
        if cut is not None:
            at_cut_for_parent_types = qname == cut and int(qtype) in (
                int(RdataType.DS),
            )
            if not at_cut_for_parent_types:
                return LookupResult(
                    LookupStatus.DELEGATION,
                    delegation=self.nodes[cut][int(RdataType.NS)],
                )

        node = self.nodes.get(qname)
        if node is not None:
            rrset = node.get(int(qtype))
            if rrset is not None:
                return LookupResult(LookupStatus.ANSWER, rrset=rrset)
            cname = node.get(int(RdataType.CNAME))
            if cname is not None and int(qtype) != int(RdataType.CNAME):
                return LookupResult(LookupStatus.CNAME, cname=cname)
            return LookupResult(LookupStatus.NODATA)

        if self._name_exists(qname):
            # Empty non-terminal: the name "exists" but owns nothing.
            return LookupResult(LookupStatus.NODATA)

        wildcard_result = self._try_wildcard(qname, qtype)
        if wildcard_result is not None:
            return wildcard_result
        return LookupResult(LookupStatus.NXDOMAIN)

    def _name_exists(self, qname):
        """True if *qname* exists as a node or an empty non-terminal.

        An empty non-terminal exists iff some node sorts immediately
        after ``qname`` in canonical order within its subtree, so after
        the exact-match check one bisect over the sorted canonical keys
        answers it — the linear subtree scan this replaces dominated the
        NXDOMAIN, wildcard, and closest-encloser hot paths.
        """
        if qname in self.nodes:
            return True
        index = self._existence_index
        if index is None or self._existence_generation != self.generation:
            index = sorted(name._key() for name in self.nodes)
            self._existence_index = index
            self._existence_generation = self.generation
        qkey = qname._key()
        at = bisect_right(index, qkey)
        return at < len(index) and index[at][: len(qkey)] == qkey

    def _try_wildcard(self, qname, qtype):
        """RFC 4592 wildcard synthesis for the closest encloser."""
        candidate = qname
        while candidate.label_count > self.origin.label_count:
            candidate = candidate.parent()
            if not self._name_exists(candidate):
                continue
            wildcard = candidate.prepend(b"*")
            node = self.nodes.get(wildcard)
            if node is None:
                return None
            rrset = node.get(int(qtype))
            if rrset is not None:
                synthesized = RRset(qname, rrset.rrtype, rrset.ttl, list(rrset.rdatas))
                return LookupResult(
                    LookupStatus.WILDCARD,
                    rrset=synthesized,
                    wildcard_owner=wildcard,
                )
            cname = node.get(int(RdataType.CNAME))
            if cname is not None:
                synthesized = RRset(qname, cname.rrtype, cname.ttl, list(cname.rdatas))
                return LookupResult(
                    LookupStatus.WILDCARD,
                    cname=synthesized,
                    wildcard_owner=wildcard,
                )
            return LookupResult(LookupStatus.NODATA)
        return None

    def __repr__(self):
        return (
            f"<Zone {self.origin} nodes={len(self.nodes)} "
            f"signed={self.signed}>"
        )
