"""Cross-process signed-zone build cache.

At fleet scale every spawn worker used to rebuild and re-sign the
*identical* testbed before measuring a single unit (BENCH_7: ~4.6 s of
duplicated RSA work per worker).  This module turns signing into a
fleet-wide once-per-zone cost: a content-addressed on-disk cache under
``<state-dir>/build-cache/`` stores the DNSSEC artifacts a
:func:`repro.zone.signing.sign_zone` run produces (RRSIG wire forms,
NSEC3/NSEC chain order and rdata, NSEC3PARAM), keyed by a fingerprint of
the unsigned zone content, the signing policy, the key material, and the
cache schema version.  The first process to need a zone signs it and
stores the entry; every other process (and every post-crash restart)
loads the bytes instead of redoing the bignum work.

Integrity and concurrency reuse the PR 7 journal discipline:

* entries are CRC32-framed (magic | length | crc | payload) and written
  via a pid-suffixed temp file + ``os.replace`` so a torn write is
  detected and rebuilt, never trusted;
* racing processes serialise on a per-entry ``fcntl.flock`` file so the
  loser waits for the winner's store and then loads it, instead of
  duplicating the signing work.

The cache is *observably transparent*: loads must charge the
:class:`~repro.dnssec.costmodel.CostMeter` exactly as the cold chain
build would (see ``signing._install_entry``), so reports, guard trips,
and packed-answer caches stay byte-identical whether the cache hit,
missed, or was disabled via ``--disable-fastpath build_cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from contextlib import contextmanager

from repro import fastpath, obs
from repro.obs.metrics import ChildCache

try:  # pragma: no cover - absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Bump whenever the entry payload layout or the fingerprint recipe
#: changes; old entries become unreachable (different fingerprints) and
#: are simply never loaded again.
SCHEMA_VERSION = 1

#: Frame header: magic, payload length, CRC32 of the payload.
ENTRY_MAGIC = b"RPROBC1\n"
_FRAME_HEAD = struct.Struct("<II")

_EVENTS = ("hit", "miss", "load", "store", "corrupt", "wait")

_event_counter = ChildCache()


def _count_event(event):
    if not obs.enabled:
        return
    child = _event_counter.get(obs.registry, event)
    if child is None:
        child = _event_counter.put(
            event,
            obs.registry.counter(
                "repro_build_cache_events_total",
                "Signed-zone build cache events by outcome.",
                labelnames=("event",),
            ).labels(event=event),
        )
    child.inc()


class ZoneBuildCache:
    """Content-addressed store for signed-zone build artifacts.

    One instance per process, rooted at ``<state-dir>/build-cache/``.
    Entries are small JSON documents; *kind* namespaces the fingerprint
    space (``"zone"`` for signed-zone artifacts, ``"keypool"`` for the
    testbed's shared RSA key pool).
    """

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        #: Per-process event counts (also exported as
        #: ``repro_build_cache_events_total`` when metrics are enabled).
        self.events = {}

    # -- accounting ---------------------------------------------------

    def count(self, event):
        self.events[event] = self.events.get(event, 0) + 1
        _count_event(event)

    def summary(self):
        """``hit:3,miss:1,...`` fragment for the ``[sim]`` stderr line."""
        return ",".join(f"{k}:{self.events[k]}" for k in _EVENTS if k in self.events)

    # -- fingerprints -------------------------------------------------

    @staticmethod
    def fingerprint(kind, material):
        """Hex fingerprint of *material* (bytes) under the cache schema."""
        digest = hashlib.sha256()
        digest.update(b"repro-build-cache/%d/" % SCHEMA_VERSION)
        digest.update(kind.encode("ascii") + b"/")
        digest.update(material)
        return digest.hexdigest()

    def _path(self, kind, fp):
        return os.path.join(self.directory, f"{kind}-{fp}.entry")

    # -- entry IO -----------------------------------------------------

    def load(self, kind, fp):
        """The decoded payload for *fp*, or ``None`` on miss/corruption.

        A torn or bit-flipped entry (bad magic, short frame, CRC
        mismatch, undecodable JSON) counts as ``corrupt``, is unlinked
        best-effort, and reads as a miss — the caller rebuilds and
        rewrites it.
        """
        path = self._path(kind, fp)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        head = len(ENTRY_MAGIC) + _FRAME_HEAD.size
        if len(blob) >= head and blob[: len(ENTRY_MAGIC)] == ENTRY_MAGIC:
            length, crc = _FRAME_HEAD.unpack_from(blob, len(ENTRY_MAGIC))
            payload = blob[head : head + length]
            if len(payload) == length and zlib.crc32(payload) == crc:
                try:
                    doc = json.loads(payload.decode("utf-8"))
                except ValueError:
                    doc = None
                if doc is not None:
                    self.count("load")
                    return doc
        self.count("corrupt")
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    def store(self, kind, fp, payload):
        """Atomically persist *payload* (a JSON-serialisable dict)."""
        path = self._path(kind, fp)
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
        blob = ENTRY_MAGIC + _FRAME_HEAD.pack(len(body), zlib.crc32(body)) + body
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.count("store")

    # -- cross-process coordination -----------------------------------

    @contextmanager
    def lock(self, kind, fp):
        """Exclusive per-entry advisory lock (no-op without ``fcntl``).

        A blocked acquisition counts as ``wait`` — the usual sign that a
        sibling worker is signing this very zone and we are about to
        load its result instead of duplicating the work.
        """
        if fcntl is None:  # pragma: no cover
            yield
            return
        path = os.path.join(self.directory, f"{kind}-{fp}.lock")
        handle = open(path, "wb")
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.count("wait")
                fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            handle.close()


# -- process-global activation ----------------------------------------
#
# The cache is opt-in: it activates only when a run has a --state-dir
# (supervised fleets always do; single-process runs may pass one).  The
# ``build_cache`` fastpath switch gates *use*, not activation, so
# ``--disable-fastpath build_cache`` forces cold rebuilds while leaving
# the handle (and its counters) inspectable.

_active = None


def activate(directory):
    """Open (or create) the cache rooted at *directory* and make it the
    process-global instance. Returns the handle."""
    global _active
    _active = ZoneBuildCache(directory)
    return _active


def deactivate():
    global _active
    _active = None


def active():
    """The process-global cache, or ``None`` when inactive or killed via
    the ``build_cache`` fastpath switch."""
    if _active is not None and fastpath.enabled("build_cache"):
        return _active
    return None


def handle():
    """The activated cache regardless of the kill switch (for summaries)."""
    return _active
