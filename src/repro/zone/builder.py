"""Programmatic zone construction."""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.rdata import A, AAAA, CNAME, MX, NS, SOA, TXT
from repro.dns.types import RdataType
from repro.zone.zone import Zone

DEFAULT_TTL = 3600


class ZoneBuilder:
    """Fluent helper to assemble a :class:`~repro.zone.zone.Zone`.

    >>> zone = (ZoneBuilder("example.com")
    ...         .soa("ns1.example.com", "hostmaster.example.com")
    ...         .ns("ns1.example.com", "ns2.example.com")
    ...         .a("www", "192.0.2.1")
    ...         .build())
    """

    def __init__(self, origin, ttl=DEFAULT_TTL):
        self.zone = Zone(origin)
        self.ttl = ttl

    @property
    def origin(self):
        return self.zone.origin

    def _absolute(self, name):
        """Resolve a possibly-relative name against the origin."""
        if isinstance(name, Name):
            return name
        if name in ("@", ""):
            return self.origin
        if name.endswith("."):
            return Name.from_text(name)
        return Name.from_text(name).concatenate(self.origin)

    def soa(self, mname, rname, serial=1, refresh=7200, retry=3600, expire=1209600, minimum=3600):
        self.zone.add(
            self.origin,
            RdataType.SOA,
            self.ttl,
            SOA(mname, rname, serial, refresh, retry, expire, minimum),
        )
        return self

    def ns(self, *servers, owner="@"):
        name = self._absolute(owner)
        for server in servers:
            self.zone.add(name, RdataType.NS, self.ttl, NS(server))
        return self

    def a(self, owner, *addresses):
        name = self._absolute(owner)
        for address in addresses:
            self.zone.add(name, RdataType.A, self.ttl, A(address))
        return self

    def aaaa(self, owner, *addresses):
        name = self._absolute(owner)
        for address in addresses:
            self.zone.add(name, RdataType.AAAA, self.ttl, AAAA(address))
        return self

    def cname(self, owner, target):
        self.zone.add(self._absolute(owner), RdataType.CNAME, self.ttl, CNAME(target))
        return self

    def mx(self, owner, preference, exchange):
        self.zone.add(self._absolute(owner), RdataType.MX, self.ttl, MX(preference, exchange))
        return self

    def txt(self, owner, *strings):
        self.zone.add(self._absolute(owner), RdataType.TXT, self.ttl, TXT(list(strings)))
        return self

    def wildcard_a(self, address, under="@"):
        """Add ``*.under`` → A, the wildcard style the probe zones use."""
        parent = self._absolute(under)
        self.zone.add(parent.prepend(b"*"), RdataType.A, self.ttl, A(address))
        return self

    def delegate(self, child_label, *servers, ds=None):
        """Create a delegation: NS at the child cut, optional DS records.

        *servers* may be names or prebuilt :class:`NS` rdata; passing
        rdata lets a million-delegation parent share one immutable NS
        object per nameserver instead of re-parsing it per cut.
        """
        cut = self._absolute(child_label)
        for server in servers:
            rdata = server if isinstance(server, NS) else NS(server)
            self.zone.add(cut, RdataType.NS, self.ttl, rdata)
        if ds:
            for record in ds if isinstance(ds, (list, tuple)) else [ds]:
                self.zone.add(cut, RdataType.DS, self.ttl, record)
        return self

    def rrset(self, rrset):
        self.zone.add_rrset(rrset)
        return self

    def build(self):
        if self.zone.soa is None:
            raise ValueError(f"zone {self.origin} has no SOA record")
        if self.zone.get_rrset(self.origin, RdataType.NS) is None:
            raise ValueError(f"zone {self.origin} has no apex NS records")
        return self.zone
