"""Whole-zone DNSSEC signing (RFC 4035 §2).

:func:`sign_zone` generates keys (or uses supplied ones), builds the
denial-of-existence chain (NSEC or NSEC3 per the policy), inserts DNSKEY /
NSEC3PARAM / chain RRsets, and signs every authoritative RRset:

- the DNSKEY RRset with the KSK (and ZSK),
- everything else with the ZSK,
- delegation NS RRsets and glue are *not* signed (the parent is not
  authoritative for them); DS RRsets at cuts are.

The paper's control zones need broken signatures on purpose, so the
policy can mark the whole zone — or only the NSEC3 records — as expired.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro import fastpath, obs
from repro.crypto.keys import ALG_ECDSAP256SHA256, generate_keypair
from repro.dns.base32 import b32hex_encode
from repro.dns.rdata import parse_rdata
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dns.wire import Reader
from repro.dnssec.costmodel import meter
from repro.dnssec.signer import SIMULATION_NOW, canonical_rrset_wire, sign_rrset
from repro.zone import build_cache
from repro.zone.nsec3chain import Nsec3Chain, Nsec3Entry, Nsec3Params, build_nsec3_chain
from repro.zone.nsecchain import NsecChain, NsecEntry, build_nsec_chain

#: TTL given to generated DNSKEY / NSEC / NSEC3 / NSEC3PARAM RRsets.
DNSSEC_TTL = 3600

#: Optional hook fired with the zone after every completed
#: :func:`sign_zone` — cold sign or cache load alike. The supervised
#: worker installs one to tick build progress into its heartbeat so the
#: watchdog can tell a slow build from a hung one.
zone_signed_listener = None


@dataclass
class SigningPolicy:
    """How to sign a zone."""

    #: None → plain NSEC; an :class:`Nsec3Params` → NSEC3.
    nsec3: Nsec3Params | None = None
    algorithm: int = ALG_ECDSAP256SHA256
    #: Sign with signatures that are already expired (the ``expired`` zone).
    expired: bool = False
    #: Expire only the signatures covering NSEC3 records
    #: (the ``it-2501-expired`` zone of paper §4.2).
    expired_nsec3_only: bool = False
    now: int = SIMULATION_NOW
    rsa_bits: int = 1024

    def signature_window(self, rrtype):
        """(inception, expiration) for signatures over *rrtype* RRsets."""
        expire_this = self.expired or (
            self.expired_nsec3_only and int(rrtype) == int(RdataType.NSEC3)
        )
        if expire_this:
            return self.now - 60 * 86400, self.now - 30 * 86400
        return self.now - 3600, self.now + 30 * 86400


def sign_zone(zone, policy=None, ksk=None, zsk=None, rng=None):
    """Sign *zone* in place and return it.

    Generates an ECDSA KSK/ZSK pair when none is supplied (a seeded *rng*
    makes the zone reproducible). Repeat signing replaces previous DNSSEC
    material.

    When a :mod:`repro.zone.build_cache` is active, the signing work is
    content-addressed: the first process to sign a given (zone content,
    policy, keys) combination stores the resulting DNSSEC artifacts, and
    every later call — in this process, a sibling worker, or a restart
    after a crash — loads them instead of redoing the bignum work.
    Loads charge the cost model and mutate the zone exactly as a cold
    sign would, so downstream reports stay byte-identical.
    """
    policy = policy or SigningPolicy()
    rng = rng or random
    if ksk is None:
        ksk = generate_keypair(policy.algorithm, ksk=True, rsa_bits=policy.rsa_bits, rng=rng)
    if zsk is None:
        zsk = generate_keypair(policy.algorithm, ksk=False, rsa_bits=policy.rsa_bits, rng=rng)
    zone.keys = [ksk, zsk]
    zone.rrsigs = {}

    _strip_dnssec(zone)

    cache = build_cache.active()
    if cache is None:
        _sign_stripped(zone, policy, ksk, zsk)
    else:
        fingerprint = _zone_fingerprint(zone, policy, ksk, zsk)
        payload = cache.load("zone", fingerprint)
        if payload is not None:
            cache.count("hit")
            _install_entry(zone, policy, ksk, zsk, payload)
        else:
            with cache.lock("zone", fingerprint):
                # A sibling worker may have signed and stored this very
                # zone while we waited on the lock.
                payload = cache.load("zone", fingerprint)
                if payload is not None:
                    cache.count("hit")
                    _install_entry(zone, policy, ksk, zsk, payload)
                else:
                    cache.count("miss")
                    _sign_stripped(zone, policy, ksk, zsk)
                    cache.store("zone", fingerprint, _entry_payload(zone))
    if zone_signed_listener is not None:
        zone_signed_listener(zone)
    return zone


def _sign_stripped(zone, policy, ksk, zsk):
    """The cold signing pass over an already-stripped zone."""
    apex = zone.origin
    dnskey_rrset = RRset(apex, RdataType.DNSKEY, DNSSEC_TTL, [ksk.dnskey, zsk.dnskey])
    zone.add_rrset(dnskey_rrset)

    if policy.nsec3 is not None:
        nsec3param = RRset(
            apex, RdataType.NSEC3PARAM, DNSSEC_TTL, [policy.nsec3.to_nsec3param()]
        )
        zone.add_rrset(nsec3param)
        chain = build_nsec3_chain(zone, policy.nsec3)
        zone.nsec3_chain = chain
        zone.nsec_chain = None
        for rrset in chain.rrsets(DNSSEC_TTL):
            zone.add_rrset(rrset)
    else:
        chain = build_nsec_chain(zone)
        zone.nsec_chain = chain
        zone.nsec3_chain = None
        for rrset in chain.rrsets(DNSSEC_TTL):
            zone.add_rrset(rrset)

    _sign_all(zone, policy, ksk, zsk)
    zone.signed = True
    # _sign_all writes zone.rrsigs directly; let generation-keyed caches know.
    zone.touch()


def _zone_fingerprint(zone, policy, ksk, zsk):
    """Content-addressed cache key for signing *zone* under *policy*.

    Covers the cache schema version (via
    :meth:`ZoneBuildCache.fingerprint`), the stripped zone content (the
    seed and spec reach the key through the rng-drawn records and
    salts), the signing-policy digest, and the key material (DNSKEY wire
    forms — public halves determine the signatures for both RSA and the
    deterministic RFC 6979 ECDSA used here).
    """
    digest = hashlib.sha256()
    digest.update(zone.origin.canonical_wire())
    for rrset in zone.all_rrsets():
        digest.update(canonical_rrset_wire(rrset))
    if policy.nsec3 is not None:
        params = policy.nsec3
        denial = (
            f"nsec3/{params.hash_algorithm}/{params.iterations}"
            f"/{params.salt.hex()}/{int(params.opt_out)}"
        )
    else:
        denial = "nsec"
    digest.update(
        (
            f"|{denial}|alg={policy.algorithm}|expired={int(policy.expired)}"
            f"|expired_nsec3={int(policy.expired_nsec3_only)}|now={policy.now}|"
        ).encode("ascii")
    )
    for key in (ksk, zsk):
        digest.update(key.dnskey.to_wire())
        digest.update(b"|")
    return build_cache.ZoneBuildCache.fingerprint("zone", digest.digest())


def _entry_payload(zone):
    """Serialise a freshly signed zone's DNSSEC artifacts for the cache."""
    if zone.nsec3_chain is not None:
        denial = "nsec3"
        chain = [
            [
                entry.owner_hash.hex(),
                entry.source_name.to_wire().hex(),
                entry.rdata.to_wire().hex(),
            ]
            for entry in zone.nsec3_chain.entries
        ]
    else:
        denial = "nsec"
        chain = [
            [entry.owner_name.to_wire().hex(), entry.rdata.to_wire().hex()]
            for entry in zone.nsec_chain.entries
        ]
    rrsigs = [
        [name.to_wire().hex(), covered, rrset.ttl, [r.to_wire().hex() for r in rrset.rdatas]]
        for (name, covered), rrset in zone.rrsigs.items()
    ]
    return {"denial": denial, "chain": chain, "rrsigs": rrsigs}


def _wire_name(hex_string):
    return Reader(bytes.fromhex(hex_string)).read_name()


def _wire_rdata(rrtype, hex_string):
    wire = bytes.fromhex(hex_string)
    return parse_rdata(rrtype, Reader(wire), len(wire))


def _install_entry(zone, policy, ksk, zsk, payload):
    """Rebuild the DNSSEC state of *zone* from a cache entry.

    Must mirror :func:`_sign_stripped` observably: the same RRsets in
    the same insertion order (zone generation and node iteration order
    feed packed-answer cache keys), the same chain objects, the same
    ``zone.rrsigs`` contents — and the same CostMeter charges, because a
    load stands in for a rebuild that would have hashed every chain
    member. Signature bytes come from the entry; everything cheap is
    recomputed.
    """
    apex = zone.origin
    zone.add_rrset(RRset(apex, RdataType.DNSKEY, DNSSEC_TTL, [ksk.dnskey, zsk.dnskey]))
    if payload["denial"] == "nsec3":
        params = policy.nsec3
        zone.add_rrset(
            RRset(apex, RdataType.NSEC3PARAM, DNSSEC_TTL, [params.to_nsec3param()])
        )
        iterations = params.iterations
        salt_length = len(params.salt)
        observe = obs.profiler.observe_iterations if obs.enabled else None
        entries = []
        for owner_hex, source_hex, rdata_hex in payload["chain"]:
            owner_hash = bytes.fromhex(owner_hex)
            source = _wire_name(source_hex)
            owner = apex.prepend(b32hex_encode(owner_hash).encode("ascii"))
            entries.append(
                Nsec3Entry(
                    owner_hash, owner, source, _wire_rdata(RdataType.NSEC3, rdata_hex)
                )
            )
            # The cost model describes a signer that hashes every chain
            # member; charge the load like the rebuild it replaces.
            meter.charge_nsec3(iterations, len(source.canonical_wire()), salt_length)
            if observe is not None:
                observe(iterations)
        chain = Nsec3Chain(params, entries)
        zone.nsec3_chain = chain
        zone.nsec_chain = None
    else:
        entries = [
            NsecEntry(_wire_name(owner_hex), _wire_rdata(RdataType.NSEC, rdata_hex))
            for owner_hex, rdata_hex in payload["chain"]
        ]
        chain = NsecChain(entries)
        zone.nsec_chain = chain
        zone.nsec3_chain = None
    for rrset in chain.rrsets(DNSSEC_TTL):
        zone.add_rrset(rrset)
    for name_hex, covered, ttl, wires in payload["rrsigs"]:
        name = _wire_name(name_hex)
        zone.rrsigs[(name, int(covered))] = RRset(
            name,
            RdataType.RRSIG,
            ttl,
            [_wire_rdata(RdataType.RRSIG, wire) for wire in wires],
        )
    zone.signed = True
    zone.touch()


def _strip_dnssec(zone):
    """Remove any DNSSEC records from a previous signing pass."""
    dnssec_types = {
        int(RdataType.DNSKEY),
        int(RdataType.NSEC),
        int(RdataType.NSEC3),
        int(RdataType.NSEC3PARAM),
        int(RdataType.RRSIG),
    }
    for name in list(zone.nodes):
        node = zone.nodes[name]
        for rrtype in list(node):
            if rrtype in dnssec_types:
                del node[rrtype]
        if not node:
            del zone.nodes[name]
    zone.nsec3_chain = None
    zone.nsec_chain = None
    zone.signed = False
    zone.touch()


def _should_sign(zone, rrset):
    """Delegation NS RRsets and glue are unsigned; all else is signed."""
    cut = zone.delegation_for(rrset.name)
    if cut is None:
        return True
    if cut == rrset.name:
        # At the cut the parent signs only DS (and the NSEC/NSEC3 record,
        # which lives on a hashed/different owner for NSEC3).
        return int(rrset.rrtype) in (int(RdataType.DS), int(RdataType.NSEC), int(RdataType.NSEC3))
    return False  # glue below the cut


def _sign_all(zone, policy, ksk, zsk):
    if fastpath.enabled("build_cache"):
        # Hoist the per-key signing setup (EMSA prefix, CRT context for
        # RSA) out of the per-RRset loop; same signature bytes.
        sign_with = {id(ksk): ksk.bulk_signer(), id(zsk): zsk.bulk_signer()}
    else:
        sign_with = {}
    for rrset in list(zone.all_rrsets()):
        if int(rrset.rrtype) == int(RdataType.RRSIG):
            continue
        if not _should_sign(zone, rrset):
            continue
        inception, expiration = policy.signature_window(rrset.rrtype)
        signers = [zsk]
        if int(rrset.rrtype) == int(RdataType.DNSKEY):
            signers = [ksk]
        rrsigs = [
            sign_rrset(
                rrset,
                key,
                zone.origin,
                inception=inception,
                expiration=expiration,
                now=policy.now,
                sign=sign_with.get(id(key)),
            )
            for key in signers
        ]
        zone.rrsigs[(rrset.name, int(rrset.rrtype))] = RRset(
            rrset.name, RdataType.RRSIG, rrset.ttl, rrsigs
        )
