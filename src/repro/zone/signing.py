"""Whole-zone DNSSEC signing (RFC 4035 §2).

:func:`sign_zone` generates keys (or uses supplied ones), builds the
denial-of-existence chain (NSEC or NSEC3 per the policy), inserts DNSKEY /
NSEC3PARAM / chain RRsets, and signs every authoritative RRset:

- the DNSKEY RRset with the KSK (and ZSK),
- everything else with the ZSK,
- delegation NS RRsets and glue are *not* signed (the parent is not
  authoritative for them); DS RRsets at cuts are.

The paper's control zones need broken signatures on purpose, so the
policy can mark the whole zone — or only the NSEC3 records — as expired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.keys import ALG_ECDSAP256SHA256, generate_keypair
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec.signer import SIMULATION_NOW, sign_rrset
from repro.zone.nsec3chain import Nsec3Params, build_nsec3_chain
from repro.zone.nsecchain import build_nsec_chain

#: TTL given to generated DNSKEY / NSEC / NSEC3 / NSEC3PARAM RRsets.
DNSSEC_TTL = 3600


@dataclass
class SigningPolicy:
    """How to sign a zone."""

    #: None → plain NSEC; an :class:`Nsec3Params` → NSEC3.
    nsec3: Nsec3Params | None = None
    algorithm: int = ALG_ECDSAP256SHA256
    #: Sign with signatures that are already expired (the ``expired`` zone).
    expired: bool = False
    #: Expire only the signatures covering NSEC3 records
    #: (the ``it-2501-expired`` zone of paper §4.2).
    expired_nsec3_only: bool = False
    now: int = SIMULATION_NOW
    rsa_bits: int = 1024

    def signature_window(self, rrtype):
        """(inception, expiration) for signatures over *rrtype* RRsets."""
        expire_this = self.expired or (
            self.expired_nsec3_only and int(rrtype) == int(RdataType.NSEC3)
        )
        if expire_this:
            return self.now - 60 * 86400, self.now - 30 * 86400
        return self.now - 3600, self.now + 30 * 86400


def sign_zone(zone, policy=None, ksk=None, zsk=None, rng=None):
    """Sign *zone* in place and return it.

    Generates an ECDSA KSK/ZSK pair when none is supplied (a seeded *rng*
    makes the zone reproducible). Repeat signing replaces previous DNSSEC
    material.
    """
    policy = policy or SigningPolicy()
    rng = rng or random
    if ksk is None:
        ksk = generate_keypair(policy.algorithm, ksk=True, rsa_bits=policy.rsa_bits, rng=rng)
    if zsk is None:
        zsk = generate_keypair(policy.algorithm, ksk=False, rsa_bits=policy.rsa_bits, rng=rng)
    zone.keys = [ksk, zsk]
    zone.rrsigs = {}

    _strip_dnssec(zone)

    apex = zone.origin
    dnskey_rrset = RRset(apex, RdataType.DNSKEY, DNSSEC_TTL, [ksk.dnskey, zsk.dnskey])
    zone.add_rrset(dnskey_rrset)

    if policy.nsec3 is not None:
        nsec3param = RRset(
            apex, RdataType.NSEC3PARAM, DNSSEC_TTL, [policy.nsec3.to_nsec3param()]
        )
        zone.add_rrset(nsec3param)
        chain = build_nsec3_chain(zone, policy.nsec3)
        zone.nsec3_chain = chain
        zone.nsec_chain = None
        for rrset in chain.rrsets(DNSSEC_TTL):
            zone.add_rrset(rrset)
    else:
        chain = build_nsec_chain(zone)
        zone.nsec_chain = chain
        zone.nsec3_chain = None
        for rrset in chain.rrsets(DNSSEC_TTL):
            zone.add_rrset(rrset)

    _sign_all(zone, policy, ksk, zsk)
    zone.signed = True
    # _sign_all writes zone.rrsigs directly; let generation-keyed caches know.
    zone.touch()
    return zone


def _strip_dnssec(zone):
    """Remove any DNSSEC records from a previous signing pass."""
    dnssec_types = {
        int(RdataType.DNSKEY),
        int(RdataType.NSEC),
        int(RdataType.NSEC3),
        int(RdataType.NSEC3PARAM),
        int(RdataType.RRSIG),
    }
    for name in list(zone.nodes):
        node = zone.nodes[name]
        for rrtype in list(node):
            if rrtype in dnssec_types:
                del node[rrtype]
        if not node:
            del zone.nodes[name]
    zone.nsec3_chain = None
    zone.nsec_chain = None
    zone.signed = False
    zone.touch()


def _should_sign(zone, rrset):
    """Delegation NS RRsets and glue are unsigned; all else is signed."""
    cut = zone.delegation_for(rrset.name)
    if cut is None:
        return True
    if cut == rrset.name:
        # At the cut the parent signs only DS (and the NSEC/NSEC3 record,
        # which lives on a hashed/different owner for NSEC3).
        return int(rrset.rrtype) in (int(RdataType.DS), int(RdataType.NSEC), int(RdataType.NSEC3))
    return False  # glue below the cut


def _sign_all(zone, policy, ksk, zsk):
    for rrset in list(zone.all_rrsets()):
        if int(rrset.rrtype) == int(RdataType.RRSIG):
            continue
        if not _should_sign(zone, rrset):
            continue
        inception, expiration = policy.signature_window(rrset.rrtype)
        signers = [zsk]
        if int(rrset.rrtype) == int(RdataType.DNSKEY):
            signers = [ksk]
        rrsigs = [
            sign_rrset(
                rrset,
                key,
                zone.origin,
                inception=inception,
                expiration=expiration,
                now=policy.now,
            )
            for key in signers
        ]
        zone.rrsigs[(rrset.name, int(rrset.rrtype))] = RRset(
            rrset.name, RdataType.RRSIG, rrset.ttl, rrsigs
        )
