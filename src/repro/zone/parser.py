"""A master-file (zone file) parser — the RFC 1035 §5 subset real tools use.

Supports ``$ORIGIN`` and ``$TTL`` directives, ``@`` for the origin, owner
inheritance from the previous record, relative names, comments, and
parenthesised multi-line records (SOA in the common layout). Class defaults
to IN; TTL to the ``$TTL`` value.
"""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.dns.types import RdataClass, RdataType
from repro.zone.zone import Zone


class ZoneParseError(ValueError):
    """Raised with a line number when a zone file cannot be parsed."""


def _strip_comment(line):
    """Remove a ``;`` comment, respecting double-quoted strings."""
    out = []
    in_quotes = False
    for ch in line:
        if ch == '"':
            in_quotes = not in_quotes
        if ch == ";" and not in_quotes:
            break
        out.append(ch)
    return "".join(out)


def _logical_lines(text):
    """Yield (line_number, content) with parenthesised groups joined."""
    pending = []
    pending_start = 0
    depth = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ZoneParseError(f"line {number}: unbalanced ')'")
        if pending:
            pending.append(line)
        elif line.strip():
            pending = [line]
            pending_start = number
        if depth == 0 and pending:
            joined = " ".join(pending).replace("(", " ").replace(")", " ")
            if joined.strip():
                yield pending_start, pending[0], joined
            pending = []
    if depth != 0:
        raise ZoneParseError("unbalanced '(' at end of file")


_KNOWN_CLASSES = {"IN", "CH", "HS"}


def parse_zone_text(text, origin=None, default_ttl=3600):
    """Parse zone file *text* into a :class:`~repro.zone.zone.Zone`."""
    origin_name = Name.from_text(origin) if origin else None
    zone = None
    last_owner = None
    records = []

    def absolute(token):
        if token == "@":
            if origin_name is None:
                raise ZoneParseError("'@' used before $ORIGIN")
            return origin_name
        if token.endswith("."):
            return Name.from_text(token)
        if origin_name is None:
            raise ZoneParseError(f"relative name {token!r} before $ORIGIN")
        return Name.from_text(token).concatenate(origin_name)

    for number, first_line, line in _logical_lines(text):
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] == "$ORIGIN":
            origin_name = Name.from_text(tokens[1])
            continue
        if tokens[0] == "$TTL":
            default_ttl = int(tokens[1])
            continue
        if tokens[0].startswith("$"):
            raise ZoneParseError(f"line {number}: unsupported directive {tokens[0]}")

        owner_inherited = first_line[:1] in (" ", "\t")
        if owner_inherited:
            if last_owner is None:
                raise ZoneParseError(f"line {number}: no previous owner to inherit")
            owner = last_owner
        else:
            owner = absolute(tokens[0])
            tokens = tokens[1:]
        last_owner = owner

        ttl = default_ttl
        rdclass = RdataClass.IN
        # TTL and class may appear in either order before the type.
        while tokens:
            token = tokens[0].upper()
            if token.isdigit():
                ttl = int(token)
                tokens = tokens[1:]
            elif token in _KNOWN_CLASSES:
                rdclass = RdataClass[token]
                tokens = tokens[1:]
            else:
                break
        if not tokens:
            raise ZoneParseError(f"line {number}: record has no type")
        try:
            rrtype = RdataType.from_text(tokens[0])
        except ValueError as exc:
            raise ZoneParseError(f"line {number}: {exc}") from exc
        rdata_text = " ".join(tokens[1:])
        try:
            rdata = rdata_from_text(rrtype, rdata_text)
        except (ValueError, IndexError) as exc:
            raise ZoneParseError(f"line {number}: bad rdata: {exc}") from exc
        records.append((owner, ttl, rdclass, rrtype, rdata))

    if origin_name is None:
        # Infer the origin from the (unique) SOA owner.
        soa_owners = {o for o, __, __, t, __ in records if int(t) == int(RdataType.SOA)}
        if len(soa_owners) != 1:
            raise ZoneParseError("cannot infer origin: need exactly one SOA")
        origin_name = next(iter(soa_owners))

    zone = Zone(origin_name)
    for owner, ttl, rdclass, rrtype, rdata in records:
        zone.add(owner, rrtype, ttl, rdata)
    return zone
