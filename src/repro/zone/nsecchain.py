"""Plain NSEC chain construction (RFC 4034 §4).

The alternative RFC 9276 Item 1 prefers: owner names in canonical order,
each record naming the next owner — trivially zone-walkable, which is the
trade-off the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.name import Name
from repro.dns.rdata.nsec import NSEC
from repro.dns.rrset import RRset
from repro.dns.types import RdataType


@dataclass
class NsecEntry:
    """One link of the NSEC chain."""

    owner_name: Name
    rdata: NSEC


class NsecChain:
    """The complete NSEC chain of a zone, in canonical owner order."""

    def __init__(self, entries):
        self.entries = entries
        self._names = [entry.owner_name for entry in entries]

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def find_matching(self, name):
        for entry in self.entries:
            if entry.owner_name == name:
                return entry
        return None

    def find_covering(self, name):
        """The entry whose (owner, next) interval covers *name*."""
        if not self.entries:
            return None
        covering = None
        for entry in self.entries:
            if entry.owner_name < name:
                covering = entry
            else:
                break
        if covering is None:
            # Before the first owner in canonical order: wrap-around record.
            return self.entries[-1]
        return covering

    def rrsets(self, ttl):
        return [
            RRset(entry.owner_name, RdataType.NSEC, ttl, [entry.rdata])
            for entry in self.entries
        ]


def _types_at(zone, name, apex):
    node = zone.nodes.get(name, {})
    types = set(node)
    is_delegation = zone.is_delegation_point(name)
    if is_delegation:
        types = {
            t for t in types if t in (int(RdataType.NS), int(RdataType.DS))
        }
    if name == apex:
        types.add(int(RdataType.DNSKEY))
    types.add(int(RdataType.NSEC))
    if not is_delegation or int(RdataType.DS) in node:
        types.add(int(RdataType.RRSIG))
    return types


def build_nsec_chain(zone):
    """Build the NSEC chain over the zone's authoritative names."""
    apex = zone.origin
    names = set(zone.authoritative_names())
    names.add(apex)
    ordered = sorted(names)
    entries = []
    count = len(ordered)
    for index, name in enumerate(ordered):
        next_name = ordered[(index + 1) % count]
        rdata = NSEC(next_name, sorted(_types_at(zone, name, apex)))
        entries.append(NsecEntry(name, rdata))
    return NsecChain(entries)
