"""NSEC3 chain construction (RFC 5155 §7.1).

Given a zone and a parameter set, computes the hashed owner names of every
authoritative name (including empty non-terminals), sorts them by hash
value, and links each record to the next hash — wrapping the last record
to the first. With *opt-out* set, insecure delegations (no DS) receive no
NSEC3 record and the spanning record carries the opt-out flag.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro import fastpath, obs
from repro.dns.base32 import b32hex_encode
from repro.dns.name import Name
from repro.dns.rdata.nsec3 import NSEC3, NSEC3PARAM, NSEC3_FLAG_OPTOUT, NSEC3_HASH_SHA1
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec.nsec3hash import nsec3_hash, nsec3_hash_batch


@dataclass(frozen=True)
class Nsec3Params:
    """The per-zone NSEC3 parameter set the paper measures.

    ``iterations`` is the number of *additional* hash iterations (RFC 9276
    Item 2 requires 0) and ``salt`` the salt appended at each step (Item 3
    recommends none).
    """

    iterations: int = 0
    salt: bytes = b""
    opt_out: bool = False
    hash_algorithm: int = NSEC3_HASH_SHA1

    def to_nsec3param(self):
        """The apex NSEC3PARAM record (flags always zero, RFC 5155 §4.1.2)."""
        return NSEC3PARAM(self.hash_algorithm, 0, self.iterations, self.salt)


@dataclass
class Nsec3Entry:
    """One link of the chain."""

    owner_hash: bytes
    owner_name: Name
    source_name: Name
    rdata: NSEC3 = None


class Nsec3Chain:
    """The complete, sorted NSEC3 chain of a zone."""

    def __init__(self, params, entries):
        self.params = params
        #: Entries sorted by owner hash.
        self.entries = entries
        self._hashes = [entry.owner_hash for entry in entries]
        self._by_hash = {entry.owner_hash: entry for entry in entries}

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def find_matching(self, target_hash):
        """The entry whose owner hash equals *target_hash*, or None."""
        return self._by_hash.get(target_hash)

    def find_covering(self, target_hash):
        """The entry whose (owner, next) interval covers *target_hash*.

        Assumes *target_hash* does not match any entry; with a single-entry
        chain that entry covers everything else.
        """
        if not self.entries:
            return None
        index = bisect.bisect_right(self._hashes, target_hash) - 1
        if index < 0:
            # Below the first hash: covered by the wrap-around (last) record.
            return self.entries[-1]
        return self.entries[index]

    def rrsets(self, ttl):
        """Materialise the chain as one single-rdata RRset per entry."""
        return [
            RRset(entry.owner_name, RdataType.NSEC3, ttl, [entry.rdata])
            for entry in self.entries
        ]


def _types_at(zone, name, apex):
    """The type bitmap content for *name* (RFC 5155 §7.1 bullet 3)."""
    node = zone.nodes.get(name, {})
    types = set()
    is_delegation = zone.is_delegation_point(name)
    for rrtype in node:
        if is_delegation and rrtype not in (int(RdataType.NS), int(RdataType.DS)):
            continue  # only the cut-relevant types appear at a delegation
        types.add(rrtype)
    if name == apex:
        types.add(int(RdataType.NSEC3PARAM))
        types.add(int(RdataType.DNSKEY))
    if node and not is_delegation:
        types.add(int(RdataType.RRSIG))
    elif is_delegation and int(RdataType.DS) in node:
        types.add(int(RdataType.RRSIG))
    return types


def build_nsec3_chain(zone, params):
    """Build the chain for *zone* under *params*.

    Returns the :class:`Nsec3Chain`; the caller (usually
    :func:`repro.zone.signing.sign_zone`) is responsible for inserting the
    chain's RRsets and the apex NSEC3PARAM into the zone and signing them.
    """
    apex = zone.origin
    names = set(zone.authoritative_names())
    names.update(zone.empty_nonterminals())
    names.add(apex)

    if params.opt_out:
        secure = set()
        for name in names:
            if zone.is_delegation_point(name):
                has_ds = int(RdataType.DS) in zone.nodes.get(name, {})
                if not has_ds:
                    continue  # opted out: no NSEC3 record for this delegation
            secure.add(name)
        names = secure

    ordered = list(names)
    if fastpath.enabled("build_cache") and not obs.tracing:
        digests = nsec3_hash_batch(
            [name.canonical_wire() for name in ordered],
            params.salt,
            params.iterations,
            params.hash_algorithm,
        )
    else:
        digests = [
            nsec3_hash(
                name.canonical_wire(),
                params.salt,
                params.iterations,
                params.hash_algorithm,
            )
            for name in ordered
        ]
    entries = []
    for name, digest in zip(ordered, digests):
        owner = apex.prepend(b32hex_encode(digest).encode("ascii"))
        entries.append(Nsec3Entry(digest, owner, name))
    entries.sort(key=lambda entry: entry.owner_hash)

    flags = NSEC3_FLAG_OPTOUT if params.opt_out else 0
    count = len(entries)
    for index, entry in enumerate(entries):
        next_entry = entries[(index + 1) % count]
        entry.rdata = NSEC3(
            params.hash_algorithm,
            flags,
            params.iterations,
            params.salt,
            next_entry.owner_hash,
            sorted(_types_at(zone, entry.source_name, apex)),
        )
    return Nsec3Chain(params, entries)
