"""Wire-compatible asyncio UDP/TCP frontends over the service engine.

Each :class:`Binding` puts one simulated backend (an
``AuthoritativeServer`` or a ``ValidatingResolver``) on a real
``host:port``, answering anything that speaks RFC 1035 — ``dig``,
``kdig``, zdns, unbound as a forwarder. UDP answers come back truncated
to the client's EDNS payload size with TC set (the backend's encoder
does that); TCP uses 2-byte length framing and serves the fallback.

The hardening lives here:

- **per-socket backpressure** — every binding carries its own
  :class:`~repro.resolver.guard.ConcurrencyGate`; arrivals past its
  depth are shed at the socket before touching the engine's global gate;
- **TCP limits** — a global connection cap (over-cap connections are
  closed immediately), a handshake timeout on the first length-prefixed
  frame, an idle timeout between frames, and a periodic reaper that
  closes connections making no progress (slow-loris: a client dribbling
  one byte per ``tcp_idle_timeout_s`` would otherwise hold a slot
  forever — the reaper watches *frame completion*, not socket reads);
- **graceful drain** — SIGTERM/SIGINT stop the listeners, flush every
  queued query through the engine, answer late arrivals with the shed
  path, then emit a final metrics snapshot;
- **crash-only restart** — sockets bind with ``SO_REUSEPORT`` where the
  platform has it, so a replacement process binds while the dying one's
  sockets linger.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
import time
from dataclasses import dataclass, field

from repro.resolver.guard import ConcurrencyGate
from repro.service.engine import ServiceEngine

#: Largest TCP message frame we will read (RFC 1035 length field max).
MAX_TCP_FRAME = 65535
#: Largest UDP datagram worth handing to a backend.
MAX_UDP_DATAGRAM = 65535


@dataclass
class Binding:
    """One backend exposed on one real socket address."""

    name: str
    backend: object
    host: str = "127.0.0.1"
    port: int = 0
    #: Per-socket pending-query bound (the backpressure depth for this
    #: binding alone; None = only the engine's global gate applies).
    max_pending: int = 128
    bound_port: int = field(default=None, init=False)
    gate: ConcurrencyGate = field(default=None, init=False)

    def __post_init__(self):
        self.gate = ConcurrencyGate(self.max_pending)


class _UdpProtocol(asyncio.DatagramProtocol):
    """One UDP socket: admit → enqueue; replies hop back via the loop."""

    def __init__(self, service, binding):
        self.service = service
        self.binding = binding
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        if len(data) > MAX_UDP_DATAGRAM:
            return
        self.service._dispatch(
            self.binding,
            data,
            addr[0],
            via_tcp=False,
            send=lambda wire, addr=addr: self._send(wire, addr),
        )

    def _send(self, wire, addr):
        if wire is not None and self.transport is not None and not self.transport.is_closing():
            self.transport.sendto(wire, addr)

    def error_received(self, exc):
        # ICMP port-unreachable from clients that gave up: not our error.
        pass


class DnsService:
    """The bound service: one engine, one event loop, many sockets."""

    def __init__(
        self,
        bindings,
        engine=None,
        tcp_max_connections=64,
        tcp_handshake_timeout_s=5.0,
        tcp_idle_timeout_s=10.0,
        reaper_interval_s=1.0,
        reuse_port=True,
    ):
        self.bindings = list(bindings)
        self.engine = engine if engine is not None else ServiceEngine()
        self.tcp_max_connections = tcp_max_connections
        self.tcp_handshake_timeout_s = tcp_handshake_timeout_s
        self.tcp_idle_timeout_s = tcp_idle_timeout_s
        self.reaper_interval_s = reaper_interval_s
        self.reuse_port = reuse_port and hasattr(socket, "SO_REUSEPORT")
        self.tcp_rejected = 0
        self.tcp_reaped = 0
        self._loop = None
        self._udp_transports = []
        self._tcp_servers = []
        #: writer -> last frame-completion monotonic time (reaper state).
        self._tcp_progress = {}
        self._reaper_task = None
        self._stop_event = None
        self._started = False
        self._epoch = time.time()

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self):
        return self._started

    async def start(self):
        """Bind every binding's UDP+TCP sockets and start the engine."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.engine.start()
        for binding in self.bindings:
            await self._bind(binding)
            self._wire_wall_clock(binding.backend)
        self._reaper_task = self._loop.create_task(self._reap_loop())
        self._started = True
        return self

    async def _bind(self, binding):
        """Bind UDP then TCP on the same port (retrying ephemeral picks)."""
        last_error = None
        for __ in range(5):
            transport, __proto = await self._loop.create_datagram_endpoint(
                lambda b=binding: _UdpProtocol(self, b),
                local_addr=(binding.host, binding.port),
                reuse_port=self.reuse_port or None,
            )
            port = transport.get_extra_info("sockname")[1]
            try:
                server = await asyncio.start_server(
                    lambda r, w, b=binding: self._tcp_session(b, r, w),
                    binding.host,
                    port,
                    reuse_port=self.reuse_port or None,
                )
            except OSError as exc:
                # Ephemeral UDP port already taken on TCP: redraw.
                transport.close()
                last_error = exc
                if binding.port != 0:
                    raise
                continue
            binding.bound_port = port
            self._udp_transports.append(transport)
            self._tcp_servers.append(server)
            return
        raise last_error

    def _wire_wall_clock(self, backend):
        # Query-log timestamps on the sim clock are meaningless for a
        # live service; point backends that expose the hook at wall time.
        if hasattr(backend, "clock") and backend.clock is None:
            backend.clock = lambda: (time.time() - self._epoch) * 1000.0

    def install_signal_handlers(self):
        """SIGTERM/SIGINT → graceful drain (idempotent, loop-native)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                self._loop.add_signal_handler(signum, self._stop_event.set)

    async def serve_until_signal(self):
        """Block until SIGTERM/SIGINT (or :meth:`shutdown`), then drain."""
        self.install_signal_handlers()
        await self._stop_event.wait()
        return await self.drain_and_stop()

    def shutdown(self):
        """Request a graceful drain from any thread."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def drain_and_stop(self):
        """Stop accepting, flush in-flight queries, close, and snapshot.

        Order matters: listeners close first (no new TCP), the engine
        drains with UDP transports still open (every queued reply must
        reach its socket), then transports and connections close. The
        returned snapshot is the service's final word — callers persist
        or print it.
        """
        for server in self._tcp_servers:
            server.close()
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper_task
            self._reaper_task = None
        flushed = await self._loop.run_in_executor(None, self.engine.drain)
        for server in self._tcp_servers:
            await server.wait_closed()
        for writer in list(self._tcp_progress):
            writer.close()
        for transport in self._udp_transports:
            transport.close()
        self._udp_transports.clear()
        self._tcp_servers.clear()
        self._started = False
        snapshot = self.snapshot()
        snapshot["drain_flushed"] = flushed
        return snapshot

    def snapshot(self):
        """Engine counters plus the frontend's own (TCP caps, bindings)."""
        out = self.engine.snapshot()
        out["tcp_rejected"] = self.tcp_rejected
        out["tcp_reaped"] = self.tcp_reaped
        out["tcp_open"] = len(self._tcp_progress)
        out["bindings"] = {
            binding.name: {
                "port": binding.bound_port,
                "socket_shed": binding.gate.shed,
                "socket_peak_pending": binding.gate.peak,
            }
            for binding in self.bindings
        }
        return out

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, binding, wire, src_ip, via_tcp, send):
        """Admit at the socket gate, then the engine; shed where refused.

        *send* runs on the event loop; engine replies arrive on the
        worker thread and hop back with ``call_soon_threadsafe``.
        """
        if not binding.gate.admit():
            self.engine.stats.received += 1
            send(self.engine.shed_reply(binding.name, binding.backend, wire, via_tcp))
            return

        def reply(wire_out, _released=[False]):
            if not _released[0]:
                _released[0] = True
                binding.gate.release()
            self._loop.call_soon_threadsafe(send, wire_out)

        self.engine.submit(
            binding.name, binding.backend, wire, src_ip, reply, via_tcp=via_tcp
        )

    # -- TCP -----------------------------------------------------------------

    async def _tcp_session(self, binding, reader, writer):
        """One TCP connection: length-framed queries until EOF or timeout."""
        if len(self._tcp_progress) >= self.tcp_max_connections:
            self.tcp_rejected += 1
            writer.close()
            return
        self._tcp_progress[writer] = time.monotonic()
        peer = writer.get_extra_info("peername") or ("?", 0)
        try:
            timeout = self.tcp_handshake_timeout_s
            while True:
                try:
                    header = await asyncio.wait_for(
                        reader.readexactly(2), timeout=timeout
                    )
                    length = int.from_bytes(header, "big")
                    if length == 0:
                        break
                    wire = await asyncio.wait_for(
                        reader.readexactly(length), timeout=self.tcp_idle_timeout_s
                    )
                except asyncio.IncompleteReadError:
                    break
                except asyncio.TimeoutError:
                    # Idle or dribbling (slow-loris): same fate as a
                    # reaper close, counted with it.
                    self.tcp_reaped += 1
                    break
                self._tcp_progress[writer] = time.monotonic()
                answered = self._loop.create_future()
                self._dispatch(
                    binding,
                    wire,
                    peer[0],
                    via_tcp=True,
                    send=lambda out, fut=answered: fut.done() or fut.set_result(out),
                )
                out = await answered
                if out is None:
                    break  # backend dropped it: close, like a real server
                writer.write(len(out).to_bytes(2, "big") + out)
                await writer.drain()
                self._tcp_progress[writer] = time.monotonic()
                timeout = self.tcp_idle_timeout_s
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._tcp_progress.pop(writer, None)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _reap_loop(self):
        """Close TCP connections with no completed frame for too long."""
        while True:
            await asyncio.sleep(self.reaper_interval_s)
            now = time.monotonic()
            for writer, last in list(self._tcp_progress.items()):
                if now - last > self.tcp_idle_timeout_s:
                    self._tcp_progress.pop(writer, None)
                    self.tcp_reaped += 1
                    writer.close()
