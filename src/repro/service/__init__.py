"""Real-socket DNS service mode.

Puts the synthetic internet behind actual asyncio UDP/TCP listeners so
real clients (``dig``, unbound, zdns) can query the authoritative
servers and the validating resolver as a live service — the bridge from
"simulation" to "system serving heavy traffic". The stack:

- :mod:`repro.service.engine` — the single-threaded query core: a
  bounded pending queue feeding one worker thread that owns the
  simulated world, with real-time admission control and load shedding;
- :mod:`repro.service.frontend` — wire-compatible UDP and TCP
  frontends (EDNS, TC-bit truncation with TCP fallback, 2-byte length
  framing) with overload hardening: per-socket backpressure, connection
  limits, idle/handshake timeouts, slow-loris reaping, graceful drain
  on SIGTERM, and SO_REUSEPORT crash-only restart;
- :mod:`repro.service.loadgen` — a traffic-replay load generator mixing
  benign population queries with adversarial NSEC3/KeyTrap streams at
  configurable QPS;
- :mod:`repro.service.soak` — the chaos soak harness driving the
  service under sustained mixed load plus real-world stressors and
  asserting bounded RSS, bounded benign p99, and zero unhandled
  exceptions.
"""

from repro.service.engine import ServiceEngine, ServiceStats
from repro.service.frontend import Binding, DnsService

__all__ = ["Binding", "DnsService", "ServiceEngine", "ServiceStats"]
