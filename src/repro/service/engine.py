"""The service query core: one worker thread owning the simulated world.

Everything behind a frontend — the :class:`SimKernel` clock, the guard
budget stack in :mod:`repro.resolver.guard`, the process-global cost
meter — is single-threaded state designed for the deterministic sim
rail. Real sockets deliver datagrams concurrently, so the engine
serializes: the asyncio event loop only admits, sheds, and enqueues;
ONE worker thread drains the queue and calls ``handle_datagram``, which
keeps every sim-rail invariant intact while the frontends stay
responsive under flood.

Backpressure is explicit and real-time. The pending queue is bounded by
a :class:`~repro.resolver.guard.ConcurrencyGate`; an arrival that finds
no slot is shed *on the event loop* — RFC 8767 serve-stale through the
resolver's :meth:`shed_datagram` when possible, else a header-only
REFUSED built by :func:`wire_rcode_reply` (12 bytes of work per flood
packet, no parsing). Queued queries carry a deadline; ones that go
stale before the worker reaches them are answered REFUSED rather than
silently dropped. A backend exception becomes a SERVFAIL plus an error
record — the soak harness asserts that record stays empty.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro import obs
from repro.dns.rcode import Rcode
from repro.resolver.guard import ConcurrencyGate

#: QR bit plus the opcode field of the DNS header flags word.
_QR = 0x8000
_OPCODE_MASK = 0x7800
_RD = 0x0100


def wire_rcode_reply(query_wire, rcode):
    """A header-only reply to *query_wire* with *rcode* (None on garbage).

    Echoes the query id and opcode, sets QR, preserves RD, zeroes every
    section count. This is the cheapest legal DNS answer — the shed path
    under flood must not pay a parse per packet.
    """
    if len(query_wire) < 4:
        return None
    flags_in = int.from_bytes(query_wire[2:4], "big")
    if flags_in & _QR:
        return None  # a response: never answer answers (reflection hygiene)
    flags_out = _QR | (flags_in & _OPCODE_MASK) | (flags_in & _RD) | (int(rcode) & 0xF)
    return query_wire[:2] + flags_out.to_bytes(2, "big") + b"\x00" * 8


@dataclass
class ServiceStats:
    """Aggregate engine counters (monotonic; read without locking)."""

    received: int = 0
    answered: int = 0
    no_answer: int = 0  # backend returned None (garbage in, silence out)
    shed_refused: int = 0
    shed_stale: int = 0
    expired: int = 0  # queued past deadline before the worker reached it
    errors: int = 0  # backend raised; client got SERVFAIL
    error_samples: list = field(default_factory=list)

    def shed_total(self):
        return self.shed_refused + self.shed_stale

    def snapshot(self):
        return {
            "received": self.received,
            "answered": self.answered,
            "no_answer": self.no_answer,
            "shed_refused": self.shed_refused,
            "shed_stale": self.shed_stale,
            "expired": self.expired,
            "errors": self.errors,
        }


class _Reservoir:
    """Bounded latency sample (ms): overwrite-oldest, percentile reads."""

    __slots__ = ("_samples", "_capacity", "_head", "count")

    def __init__(self, capacity=8192):
        self._samples = []
        self._capacity = capacity
        self._head = 0
        self.count = 0

    def add(self, value):
        self.count += 1
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            self._samples[self._head] = value
            self._head = (self._head + 1) % self._capacity

    def percentile(self, q):
        """The q-th percentile (0-100) of retained samples, or None."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(len(ordered) * q / 100.0))
        return ordered[index]


@dataclass
class _Job:
    __slots__ = ("backend_name", "backend", "wire", "src_ip", "via_tcp", "reply", "deadline", "t_in")
    backend_name: str
    backend: object
    wire: bytes
    src_ip: str
    via_tcp: bool
    reply: object
    deadline: float
    t_in: float


class ServiceEngine:
    """Bounded-queue, single-worker execution core for the DNS service.

    *capacity* bounds pending + in-service queries (the backpressure
    depth); *pending_timeout_s* bounds how stale a queued query may go
    before it is answered REFUSED instead of resolved. ``submit`` is
    called from the event loop (or any thread); ``reply`` callbacks fire
    on the worker thread — frontends hop them back to the loop with
    ``call_soon_threadsafe``.
    """

    def __init__(self, capacity=64, pending_timeout_s=5.0):
        self.gate = ConcurrencyGate(capacity)
        self.pending_timeout_s = pending_timeout_s
        self.stats = ServiceStats()
        self.latency = _Reservoir()
        self._queue = queue.SimpleQueue()
        self._thread = None
        self._drained = threading.Event()
        self._accepting = False

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self._thread is None:
            self._accepting = True
            self._drained.clear()
            self._thread = threading.Thread(
                target=self._run, name="service-engine", daemon=True
            )
            self._thread.start()
        return self

    def drain(self, timeout=30.0):
        """Stop accepting, flush every queued query, stop the worker.

        The sentinel sits behind all previously queued jobs in FIFO
        order, so every admitted query is answered before the worker
        exits — the "no in-flight query lost" half of graceful drain.
        Returns True when the flush completed within *timeout*.
        """
        self._accepting = False
        if self._thread is None:
            return True
        self._queue.put(None)
        finished = self._drained.wait(timeout)
        self._thread.join(timeout=1.0)
        self._thread = None
        return finished

    @property
    def running(self):
        return self._thread is not None and self._thread.is_alive()

    # -- event-loop side -----------------------------------------------------

    def submit(self, backend_name, backend, wire, src_ip, reply, via_tcp=False):
        """Admit one datagram; sheds (answering via *reply*) when full.

        Returns True when the query was queued for the worker. *reply*
        is always eventually invoked with wire bytes or None.
        """
        self.stats.received += 1
        if not self._accepting or not self.gate.admit():
            reply(self.shed_reply(backend_name, backend, wire, via_tcp))
            return False
        now = time.monotonic()
        self._queue.put(
            _Job(
                backend_name,
                backend,
                wire,
                src_ip,
                via_tcp,
                reply,
                now + self.pending_timeout_s,
                now,
            )
        )
        return True

    def shed_reply(self, backend_name, backend, wire, via_tcp):
        """The overload answer, built without touching the worker's state.

        Also used directly by frontends shedding at their *per-socket*
        gate, before the query ever reaches the engine's global one.
        """
        shed = getattr(backend, "shed_datagram", None)
        if shed is not None:
            answer = shed(wire, via_tcp=via_tcp)
            if answer is not None:
                # shed_datagram already counted refused-vs-stale in the
                # guard metric; classify locally by the rcode for stats.
                if len(answer) >= 4 and (answer[3] & 0xF) == int(Rcode.REFUSED):
                    self.stats.shed_refused += 1
                else:
                    self.stats.shed_stale += 1
                self._count(backend_name, "shed")
                return answer
        self.stats.shed_refused += 1
        self._count(backend_name, "shed")
        return wire_rcode_reply(wire, Rcode.REFUSED)

    # -- worker side ---------------------------------------------------------

    def _run(self):
        while True:
            job = self._queue.get()
            if job is None:
                break
            try:
                self._serve(job)
            finally:
                self.gate.release()
        self._drained.set()

    def _serve(self, job):
        now = time.monotonic()
        if now > job.deadline:
            self.stats.expired += 1
            self._count(job.backend_name, "expired")
            job.reply(wire_rcode_reply(job.wire, Rcode.REFUSED))
            return
        try:
            answer = job.backend.handle_datagram(
                job.wire, job.src_ip, via_tcp=job.via_tcp
            )
        except Exception as exc:  # noqa: BLE001 — the service must not die
            self.stats.errors += 1
            if len(self.stats.error_samples) < 32:
                self.stats.error_samples.append(
                    "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                )
            self._count(job.backend_name, "error")
            job.reply(wire_rcode_reply(job.wire, Rcode.SERVFAIL))
            return
        self.latency.add((time.monotonic() - job.t_in) * 1000.0)
        if answer is None:
            self.stats.no_answer += 1
            self._count(job.backend_name, "no_answer")
        else:
            self.stats.answered += 1
            self._count(job.backend_name, "answered")
        job.reply(answer)

    # -- metrics -------------------------------------------------------------

    def _count(self, backend_name, outcome):
        if not obs.enabled:
            return
        obs.registry.counter(
            "repro_service_queries_total",
            "Queries through the socket service, by backend and outcome.",
            labelnames=("backend", "outcome"),
        ).labels(backend=backend_name, outcome=outcome).inc()

    def snapshot(self):
        """Engine state for the final metrics snapshot and the soak report."""
        out = self.stats.snapshot()
        out["inflight"] = self.gate.inflight
        out["peak_inflight"] = self.gate.peak
        out["gate_shed"] = self.gate.shed
        out["latency_p50_ms"] = self.latency.percentile(50)
        out["latency_p99_ms"] = self.latency.percentile(99)
        return out
