"""Traffic-replay load generator for the real-socket service mode.

Replays the testbed's two traffic populations against a live
:class:`~repro.service.frontend.DnsService` (or any DNS server) over
real UDP sockets at a configurable QPS:

- **benign** — population domains and RFC 9276 probe-zone names, a mix
  of repeated lookups (cache-warm, the common case) and cache-busting
  unique labels (the paper's probing methodology);
- **attack** — CVE-2023-50868 closest-encloser and KeyTrap streams
  built from :func:`repro.testbed.adversary.attack_qname`, every query
  unique so no cache absorbs the amplification.

Replies are accepted through the same
:func:`repro.net.transport.validate_reply` test the sim-rail transport
applies; truncated answers retry over TCP with 2-byte length framing.
The :class:`LoadReport` keeps per-class rcode histograms and latency
percentiles — the soak harness's "benign p99 stays bounded under
attack" assertion reads straight out of it.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.dns.edns import EDE_STALE_ANSWER
from repro.dns.flags import Flag
from repro.dns.message import make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.transport import validate_reply
from repro.testbed import adversary, rfc9276_wild


def benign_pool(n_domains=40, n_tlds=12, probes=True, limit=64):
    """Benign qnames a matching ``repro serve`` testbed can answer.

    Derives population domains from the same ``(n_domains, n_tlds)``
    scaling rule the serve command uses, so generator and service agree
    on which names exist without sharing state.
    """
    import itertools

    from repro.testbed.population import Population, generate_tlds, scaled_config

    config = scaled_config(n_domains, n_tlds)
    population = Population(config, tlds=generate_tlds(config))
    names = [spec.name for spec in itertools.islice(population, limit)]
    if probes:
        names.append(f"www.valid.{rfc9276_wild.PARENT_DOMAIN}")
        names.append(f"www.it-10.{rfc9276_wild.PARENT_DOMAIN}")
    return names


@dataclass
class ClassStats:
    """Outcome counters for one traffic class."""

    sent: int = 0
    answered: int = 0
    timeouts: int = 0
    send_errors: int = 0
    tcp_fallbacks: int = 0
    stale: int = 0
    rcodes: dict = field(default_factory=dict)
    latencies_ms: list = field(default_factory=list)

    def record(self, rcode_text, latency_ms, stale=False):
        self.answered += 1
        self.rcodes[rcode_text] = self.rcodes.get(rcode_text, 0) + 1
        self.latencies_ms.append(latency_ms)
        if stale:
            self.stale += 1

    def percentile(self, q):
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(len(ordered) * q / 100.0))]

    def to_json(self):
        return {
            "sent": self.sent,
            "answered": self.answered,
            "timeouts": self.timeouts,
            "send_errors": self.send_errors,
            "tcp_fallbacks": self.tcp_fallbacks,
            "stale": self.stale,
            "rcodes": dict(sorted(self.rcodes.items())),
            "latency_p50_ms": self.percentile(50),
            "latency_p99_ms": self.percentile(99),
        }


@dataclass
class LoadReport:
    """The generator's final word: per-class stats plus wall timing."""

    classes: dict
    duration_s: float = 0.0
    offered_qps: float = 0.0

    def stats(self, klass):
        return self.classes[klass]

    def to_json(self):
        return {
            "duration_s": round(self.duration_s, 3),
            "offered_qps": round(self.offered_qps, 1),
            "classes": {k: v.to_json() for k, v in self.classes.items()},
        }

    def render(self):
        lines = [
            f"loadgen: {self.offered_qps:.0f} qps offered for {self.duration_s:.1f}s"
        ]
        for klass, stats in sorted(self.classes.items()):
            p99 = stats.percentile(99)
            rcodes = ",".join(f"{k}={v}" for k, v in sorted(stats.rcodes.items()))
            lines.append(
                f"  {klass:7s} sent={stats.sent} answered={stats.answered} "
                f"timeouts={stats.timeouts} tcp={stats.tcp_fallbacks} "
                f"stale={stats.stale} "
                f"p99={'-' if p99 is None else f'{p99:.1f}ms'} [{rcodes}]"
            )
        return "\n".join(lines)


class _ClientProtocol(asyncio.DatagramProtocol):
    """Connected UDP socket demultiplexing replies by message id."""

    def __init__(self):
        self.pending = {}
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        if len(data) < 2:
            return
        future = self.pending.pop(int.from_bytes(data[:2], "big"), None)
        if future is not None and not future.done():
            future.set_result(data)

    def error_received(self, exc):
        pass


class LoadGenerator:
    """Paced mixed-class query replay against one ``host:port``."""

    def __init__(
        self,
        host,
        port,
        qps=200.0,
        duration_s=5.0,
        attack_ratio=0.0,
        benign_names=None,
        attack_kinds=None,
        unique_ratio=0.3,
        qtype=RdataType.A,
        want_dnssec=True,
        timeout_s=3.0,
        tcp_fallback=True,
        seed=0,
        max_inflight=512,
    ):
        self.host = host
        self.port = port
        self.qps = float(qps)
        self.duration_s = float(duration_s)
        self.attack_ratio = float(attack_ratio)
        self.benign_names = list(benign_names) if benign_names else benign_pool()
        self.attack_kinds = (
            list(attack_kinds) if attack_kinds else adversary.default_attack_kinds()
        )
        self.unique_ratio = float(unique_ratio)
        self.qtype = qtype
        self.want_dnssec = want_dnssec
        self.timeout_s = float(timeout_s)
        self.tcp_fallback = tcp_fallback
        self.rng = random.Random(seed)
        self.max_inflight = max_inflight
        self._sequence = 0

    # -- schedule ------------------------------------------------------------

    def next_query(self):
        """``(class, qname)`` for the next tick of the replay schedule."""
        self._sequence += 1
        if self.attack_kinds and self.rng.random() < self.attack_ratio:
            kind = self.rng.choice(self.attack_kinds)
            return "attack", adversary.attack_qname(kind, unique=f"lg{self._sequence}")
        name = self.rng.choice(self.benign_names)
        if self.rng.random() < self.unique_ratio:
            name = f"u{self._sequence}.{name}"
        return "benign", name

    # -- execution -----------------------------------------------------------

    async def run(self):
        """Replay the schedule; returns the :class:`LoadReport`."""
        loop = asyncio.get_running_loop()
        transport, protocol = await loop.create_datagram_endpoint(
            _ClientProtocol, remote_addr=(self.host, self.port)
        )
        classes = {"benign": ClassStats(), "attack": ClassStats()}
        tasks = []
        interval = 1.0 / self.qps if self.qps > 0 else 0.0
        total = max(1, int(self.qps * self.duration_s))
        started = time.monotonic()
        try:
            for index in range(total):
                due = started + index * interval
                delay = due - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                if len(protocol.pending) >= self.max_inflight:
                    # The service is shedding slower than we offer; hold
                    # the schedule rather than grow an unbounded id map.
                    klass, __ = self.next_query()
                    classes[klass].send_errors += 1
                    continue
                klass, qname = self.next_query()
                tasks.append(
                    loop.create_task(
                        self._one_query(protocol, classes[klass], qname)
                    )
                )
            if tasks:
                await asyncio.gather(*tasks)
        finally:
            transport.close()
        elapsed = time.monotonic() - started
        return LoadReport(
            classes=classes,
            duration_s=elapsed,
            offered_qps=total / elapsed if elapsed > 0 else 0.0,
        )

    def _free_id(self, protocol):
        for __ in range(8):
            msg_id = self.rng.randrange(65536)
            if msg_id not in protocol.pending:
                return msg_id
        return None

    async def _one_query(self, protocol, stats, qname):
        msg_id = self._free_id(protocol)
        if msg_id is None:
            stats.send_errors += 1
            return
        query = make_query(
            qname, self.qtype, want_dnssec=self.want_dnssec, msg_id=msg_id
        )
        wire = query.to_wire()
        future = asyncio.get_running_loop().create_future()
        protocol.pending[msg_id] = future
        stats.sent += 1
        t0 = time.monotonic()
        try:
            protocol.transport.sendto(wire)
            raw = await asyncio.wait_for(future, timeout=self.timeout_s)
        except asyncio.TimeoutError:
            protocol.pending.pop(msg_id, None)
            stats.timeouts += 1
            return
        except OSError:
            protocol.pending.pop(msg_id, None)
            stats.send_errors += 1
            return
        response = validate_reply(raw, msg_id)
        if response is None:
            stats.timeouts += 1
            return
        if response.has_flag(Flag.TC) and self.tcp_fallback:
            response = await self._tcp_retry(wire, msg_id, stats)
            if response is None:
                stats.timeouts += 1
                return
        latency_ms = (time.monotonic() - t0) * 1000.0
        stale = any(
            ede.info_code == EDE_STALE_ANSWER for ede in response.extended_errors()
        )
        stats.record(Rcode.to_text(response.rcode), latency_ms, stale=stale)

    async def _tcp_retry(self, wire, msg_id, stats):
        """The RFC 1035 fallback: same query, 2-byte length framing."""
        stats.tcp_fallbacks += 1
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(len(wire).to_bytes(2, "big") + wire)
            await writer.drain()
            header = await asyncio.wait_for(
                reader.readexactly(2), timeout=self.timeout_s
            )
            raw = await asyncio.wait_for(
                reader.readexactly(int.from_bytes(header, "big")),
                timeout=self.timeout_s,
            )
        except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
        return validate_reply(raw, msg_id)


def run_loadgen(**kwargs):
    """Synchronous driver: build a generator, run it, return the report."""
    return asyncio.run(LoadGenerator(**kwargs).run())
