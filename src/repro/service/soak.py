"""Chaos soak harness: sustained mixed load plus real-world stressors.

Drives a live :class:`~repro.service.frontend.DnsService` through the
failure modes a production frontend meets, in phases:

1. **benign** — warm the resolver cache at a comfortable QPS; every
   answer must be correct (NOERROR/NXDOMAIN, never SERVFAIL);
2. **attack burst** — benign traffic continues while CVE-2023-50868 and
   KeyTrap streams run at a paced QPS, then an unpaced flood slams the
   engine far past its drain rate; the guard budgets bound per-query
   cost and the admission gates shed — ``repro_guard_shed_total`` must
   rise while the paced benign p99 stays bounded;
3. **malformed datagrams** — a seeded wire-fuzz corpus (truncated
   headers, absurd section counts, random bytes) over UDP and TCP; the
   service must stay silent or answer FORMERR, never crash;
4. **connection churn + slow-loris** — rapid TCP connect/close cycles
   plus connections that dribble partial frames; the reaper must close
   the stragglers and the connection cap must hold;
5. **recovery + graceful drain** — benign traffic must still be
   answered correctly after the chaos, then SIGTERM-style drain must
   flush every in-flight query.

The :class:`SoakReport` turns the run into explicit pass/fail
violations: zero unhandled engine exceptions, bounded RSS growth,
bounded benign p99 under attack, shed counters rising, clean drain.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs.timeseries import family_sum
from repro.obs.wallclock import WallClockScraper, rss_bytes
from repro.service.engine import ServiceEngine
from repro.service.frontend import Binding, DnsService
from repro.service.loadgen import LoadGenerator, benign_pool
from repro.service.world import build_service_world


@dataclass
class SoakConfig:
    """Knobs for one soak run (defaults suit a ~30 s CI smoke)."""

    domains: int = 40
    tlds: int = 12
    seed: int = 7
    guard: str = "guarded"
    phase_s: float = 5.0
    benign_qps: float = 120.0
    attack_qps: float = 250.0
    attack_ratio: float = 0.4
    #: The overload flood: this many queries offered essentially at once
    #: (far past any worker's drain rate), forcing the admission gates
    #: to shed deterministically on every machine speed.
    burst_queries: int = 800
    burst_qps: float = 4_000.0
    engine_capacity: int = 48
    max_pending: int = 64
    pending_timeout_s: float = 8.0
    tcp_idle_timeout_s: float = 1.5
    query_timeout_s: float = 10.0
    fuzz_datagrams: int = 300
    churn_connections: int = 40
    loris_connections: int = 8
    drain_queries: int = 20
    rss_growth_limit_mb: float = 400.0
    benign_p99_limit_ms: float = 5_000.0


@dataclass
class SoakReport:
    """Phase reports, final snapshot, and the explicit violation list."""

    phases: dict = field(default_factory=dict)
    snapshot: dict = field(default_factory=dict)
    rss_start_mb: float = 0.0
    rss_end_mb: float = 0.0
    shed_before_attack: float = 0.0
    shed_after_attack: float = 0.0
    violations: list = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def passed(self):
        return not self.violations

    def to_json(self):
        return {
            "passed": self.passed,
            "violations": self.violations,
            "duration_s": round(self.duration_s, 1),
            "rss_start_mb": round(self.rss_start_mb, 1),
            "rss_end_mb": round(self.rss_end_mb, 1),
            "shed_before_attack": self.shed_before_attack,
            "shed_after_attack": self.shed_after_attack,
            "snapshot": self.snapshot,
            "phases": {
                name: report.to_json() if hasattr(report, "to_json") else report
                for name, report in self.phases.items()
            },
        }

    def render(self):
        lines = [f"soak: {'PASS' if self.passed else 'FAIL'} "
                 f"({self.duration_s:.1f}s, rss {self.rss_start_mb:.0f}→"
                 f"{self.rss_end_mb:.0f} MB, "
                 f"shed {self.shed_before_attack:.0f}→{self.shed_after_attack:.0f})"]
        for name, report in self.phases.items():
            if hasattr(report, "render"):
                lines.append(f"[{name}]")
                lines.append(report.render())
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


def _fuzz_corpus(rng, count):
    """Seeded malformed-wire corpus (the wire-fuzz test's shapes, live)."""
    corpus = [b"", b"\x00", b"\x12\x34"]
    while len(corpus) < count:
        shape = rng.randrange(4)
        if shape == 0:  # pure noise
            corpus.append(bytes(rng.randrange(256) for __ in range(rng.randrange(1, 64))))
        elif shape == 1:  # plausible header, absurd section counts
            corpus.append(
                bytes(rng.randrange(256) for __ in range(4))
                + b"\xff\xff" * 4
                + bytes(rng.randrange(256) for __ in range(rng.randrange(0, 16)))
            )
        elif shape == 2:  # truncated mid-header
            corpus.append(bytes(rng.randrange(256) for __ in range(rng.randrange(3, 12))))
        else:  # valid-looking query cut mid-name
            corpus.append(
                rng.randrange(65536).to_bytes(2, "big")
                + b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                + b"\x3fpartial"
            )
    return corpus[:count]


class _SoakRun:
    def __init__(self, config):
        self.config = config
        self.report = SoakReport()

    async def run(self):
        config = self.config
        if not obs.enabled:
            obs.enable()
        started = time.monotonic()
        self.report.rss_start_mb = rss_bytes() / 1e6

        world = build_service_world(
            domains=config.domains,
            tlds=config.tlds,
            seed=config.seed,
            guard=config.guard,
        )
        engine = ServiceEngine(
            capacity=config.engine_capacity,
            pending_timeout_s=config.pending_timeout_s,
        )
        service = DnsService(
            [
                Binding(
                    "resolver",
                    world.resolver,
                    port=0,
                    max_pending=config.max_pending,
                )
            ],
            engine=engine,
            tcp_idle_timeout_s=config.tcp_idle_timeout_s,
            tcp_handshake_timeout_s=config.tcp_idle_timeout_s,
            reaper_interval_s=0.25,
        )
        await service.start()
        scraper = WallClockScraper(obs.registry, interval_s=1.0).start()
        host = service.bindings[0].host
        port = service.bindings[0].bound_port
        benign = benign_pool(config.domains, config.tlds)
        try:
            await self._phase_benign(host, port, benign)
            await self._phase_attack(host, port, benign)
            await self._phase_fuzz(host, port)
            await self._phase_churn(host, port)
            await self._phase_recovery(host, port, benign)
            await self._phase_drain(service, host, port, benign)
        finally:
            scraper.stop()
            if service.started:
                await service.drain_and_stop()
        self.report.rss_end_mb = rss_bytes() / 1e6
        self.report.duration_s = time.monotonic() - started
        self._judge(engine, service)
        return self.report

    # -- phases --------------------------------------------------------------

    async def _phase_benign(self, host, port, benign):
        config = self.config
        report = await LoadGenerator(
            host,
            port,
            qps=config.benign_qps,
            duration_s=config.phase_s,
            attack_ratio=0.0,
            benign_names=benign,
            timeout_s=config.query_timeout_s,
            seed=config.seed + 1,
        ).run()
        self.report.phases["benign"] = report

    async def _phase_attack(self, host, port, benign):
        config = self.config
        self.report.shed_before_attack = self._shed_total()
        report = await LoadGenerator(
            host,
            port,
            qps=config.attack_qps,
            duration_s=config.phase_s,
            attack_ratio=config.attack_ratio,
            benign_names=benign,
            timeout_s=config.query_timeout_s,
            seed=config.seed + 2,
        ).run()
        self.report.phases["attack"] = report
        # The overload flood: unpaced, cache-busting, half adversarial.
        # Arrival outruns the single worker by construction, so the
        # engine gate fills and sheds well-formed queries through the
        # guard-counted REFUSED/serve-stale path.
        burst = await LoadGenerator(
            host,
            port,
            qps=config.burst_qps,
            duration_s=config.burst_queries / config.burst_qps,
            attack_ratio=0.5,
            benign_names=benign,
            unique_ratio=1.0,
            # Kernel-level UDP drops are expected at this offered rate;
            # don't let them stretch the phase to the full query timeout.
            timeout_s=min(2.0, config.query_timeout_s),
            seed=config.seed + 20,
        ).run()
        self.report.shed_after_attack = self._shed_total()
        self.report.phases["burst"] = burst

    async def _phase_fuzz(self, host, port):
        config = self.config
        rng = random.Random(config.seed + 3)
        corpus = _fuzz_corpus(rng, config.fuzz_datagrams)
        loop = asyncio.get_running_loop()
        transport, __ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=(host, port)
        )
        try:
            for chunk in corpus:
                transport.sendto(chunk)
                await asyncio.sleep(0)
        finally:
            transport.close()
        # The same corpus over TCP: garbage length prefixes included.
        tcp_fuzzed = 0
        for chunk in corpus[:32]:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                continue
            try:
                writer.write(len(chunk).to_bytes(2, "big") + chunk)
                await writer.drain()
                tcp_fuzzed += 1
            except OSError:
                pass
            finally:
                writer.close()
        await asyncio.sleep(0.2)
        self.report.phases["fuzz"] = {
            "udp_datagrams": len(corpus),
            "tcp_frames": tcp_fuzzed,
        }

    async def _phase_churn(self, host, port):
        config = self.config
        churned = 0
        for __ in range(config.churn_connections):
            try:
                __reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                continue
            writer.close()
            churned += 1
        # Slow-loris: dribble half a length header and stall.
        loris = []
        for __ in range(config.loris_connections):
            try:
                __reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                continue
            writer.write(b"\x00")
            loris.append(writer)
        with_timeout = config.tcp_idle_timeout_s + 1.0
        await asyncio.sleep(with_timeout)
        for writer in loris:
            writer.close()
        self.report.phases["churn"] = {
            "churned": churned,
            "loris_opened": len(loris),
        }

    async def _phase_recovery(self, host, port, benign):
        config = self.config
        report = await LoadGenerator(
            host,
            port,
            qps=config.benign_qps / 2,
            duration_s=max(2.0, config.phase_s / 2),
            attack_ratio=0.0,
            benign_names=benign,
            unique_ratio=0.0,
            timeout_s=config.query_timeout_s,
            seed=config.seed + 4,
        ).run()
        self.report.phases["recovery"] = report

    async def _phase_drain(self, service, host, port, benign):
        """Queries in flight when SIGTERM lands must all be answered."""
        config = self.config
        send_window_s = config.drain_queries / 200.0
        generator = LoadGenerator(
            host,
            port,
            qps=200.0,
            duration_s=send_window_s,
            attack_ratio=0.0,
            benign_names=benign,
            # Unique labels force cache misses, so replies trail the
            # sends and the drain genuinely flushes in-flight work.
            unique_ratio=1.0,
            timeout_s=config.query_timeout_s,
            seed=config.seed + 5,
        )
        task = asyncio.get_running_loop().create_task(generator.run())
        # Drain after the last datagram leaves but (likely) before the
        # worker has answered them all.
        await asyncio.sleep(send_window_s + 0.05)
        snapshot = await service.drain_and_stop()
        report = await task
        self.report.phases["drain"] = report
        self.report.snapshot = snapshot

    # -- verdicts ------------------------------------------------------------

    def _shed_total(self):
        return family_sum(obs.registry, "repro_guard_shed_total")

    def _judge(self, engine, service):
        config = self.config
        report = self.report
        fail = report.violations.append

        if engine.stats.errors:
            fail(
                f"{engine.stats.errors} unhandled backend exceptions: "
                f"{engine.stats.error_samples[:3]}"
            )
        growth_mb = report.rss_end_mb - report.rss_start_mb
        if growth_mb > config.rss_growth_limit_mb:
            fail(
                f"RSS grew {growth_mb:.0f} MB > {config.rss_growth_limit_mb:.0f} MB limit"
            )

        benign_phase = report.phases.get("benign")
        if benign_phase is not None:
            stats = benign_phase.stats("benign")
            if stats.answered == 0:
                fail("benign phase: no queries answered")
            bad = stats.rcodes.get("SERVFAIL", 0)
            if bad:
                fail(f"benign phase: {bad} SERVFAILs on benign traffic")

        attack_phase = report.phases.get("attack")
        if attack_phase is not None:
            stats = attack_phase.stats("benign")
            p99 = stats.percentile(99)
            if p99 is not None and p99 > config.benign_p99_limit_ms:
                fail(
                    f"benign p99 under attack {p99:.0f} ms > "
                    f"{config.benign_p99_limit_ms:.0f} ms limit"
                )
            answered = stats.answered + stats.timeouts
            if answered and stats.timeouts > answered * 0.5:
                fail(
                    f"benign traffic starved under attack: "
                    f"{stats.timeouts}/{answered} timeouts"
                )
            shed_rise = report.shed_after_attack - report.shed_before_attack
            if shed_rise <= 0:
                fail(
                    "attack burst shed nothing: repro_guard_shed_total "
                    "never rose, admission control never engaged"
                )

        recovery = report.phases.get("recovery")
        if recovery is not None:
            stats = recovery.stats("benign")
            if stats.answered == 0:
                fail("service did not recover after chaos phases")

        drain = report.phases.get("drain")
        if drain is not None:
            stats = drain.stats("benign")
            if stats.timeouts:
                fail(f"graceful drain lost {stats.timeouts} in-flight queries")
            if not report.snapshot.get("drain_flushed", False):
                fail("engine drain did not flush within its timeout")


def run_soak(config=None):
    """Run one soak (sync driver); returns the :class:`SoakReport`."""
    return asyncio.run(_SoakRun(config or SoakConfig()).run())
