"""Build the simulated world a service instance puts on real sockets.

One construction path shared by ``repro serve``, the soak harness, and
the service tests, mirroring the CLI's ``_build``: the scaled
population internet (lazy zones, bounded memory), the RFC 9276 probe
zones, the adversarial NSEC3/KeyTrap lab, and a guarded validating
resolver in front of it all. Loadgen processes derive the same benign
names from the same ``(domains, tlds)`` pair without ever seeing these
objects — the scaling rule is the contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resolver.guard import GUARD_PROFILES
from repro.resolver.policy import VENDOR_POLICIES
from repro.testbed.adversary import build_attack_zones
from repro.testbed.internet import build_internet
from repro.testbed.population import Population, generate_tlds, scaled_config
from repro.testbed.rfc9276_wild import build_probe_zones


@dataclass
class ServiceWorld:
    """Handles to everything a served testbed is made of."""

    inet: object
    probes: object
    attack: object
    resolver: object

    @property
    def auth_server(self):
        """The probe-zone authoritative server (direct-auth binding)."""
        return self.probes.server


def build_service_world(
    domains=40,
    tlds=12,
    seed=7,
    guard="guarded",
    policy="legacy",
    with_attack=True,
):
    """The served testbed: internet + probes + attack lab + resolver.

    *guard* names a :data:`~repro.resolver.guard.GUARD_PROFILES` entry
    (or None for an unguarded resolver — soak comparisons only; a live
    frontend without per-query budgets is exactly the pre-2024 posture
    the paper warns about).
    """
    config = scaled_config(domains, tlds)
    tld_specs = generate_tlds(config)
    population = Population(config, tlds=tld_specs)
    inet = build_internet(population, tld_specs, seed=seed, lazy_domains=True)
    inet.network.kernel.bind_obs()
    probes = build_probe_zones(inet)
    attack = build_attack_zones(inet, seed=seed + 50_861) if with_attack else None
    resolver = inet.make_resolver(
        VENDOR_POLICIES[policy],
        name="service-resolver",
        guard=GUARD_PROFILES[guard] if guard else None,
    )
    return ServiceWorld(inet=inet, probes=probes, attack=attack, resolver=resolver)
