"""Resolver cache: positive RRsets, negative answers, infrastructure data.

TTL expiry runs on the simulated network clock so long scans age entries
realistically. The cache also memoises per-zone DNSKEY validation results,
which is where the bulk of a scan's work would otherwise go — the effect
the paper leans on when routing 302 M queries through one resolver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dns.name import Name

#: Resolved (cache role, result) lookup counters for the get() hot path.
_LOOKUP_CHILDREN = obs.ChildCache()


@dataclass
class CacheEntry:
    value: object
    expires_ms: float
    secure: bool = False


class Cache:
    """A TTL cache keyed by arbitrary tuples.

    *name* labels this cache's lookups in the metrics registry — use a
    role ("resolver", "infra"), not a per-instance identity, to keep
    label cardinality bounded.
    """

    def __init__(self, clock=lambda: 0.0, max_entries=500_000, name="cache"):
        self._store = {}
        self._clock = clock
        self.max_entries = max_entries
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _now(self):
        return self._clock()

    def _count_lookup(self, result):
        key = (self.name, result)
        child = _LOOKUP_CHILDREN.get(obs.registry, key)
        if child is None:
            child = _LOOKUP_CHILDREN.put(
                key,
                obs.registry.counter(
                    "repro_cache_lookups_total",
                    "Cache lookups, by cache role and result.",
                    labelnames=("cache", "result"),
                ).labels(cache=self.name, result=result),
            )
        child.inc()

    def _count_evictions(self, reason, amount):
        self.evictions += amount
        if amount and obs.enabled:
            obs.registry.counter(
                "repro_cache_evictions_total",
                "Capacity evictions, by cache role and reason.",
                labelnames=("cache", "reason"),
            ).labels(cache=self.name, reason=reason).inc(amount)
        if amount and obs.events:
            obs.emit("cache.evict", cache=self.name, reason=reason, n=amount)

    def get(self, key):
        """The live entry for *key*, or None (expired entries are dropped)."""
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            if obs.enabled:
                self._count_lookup("miss")
            return None
        if entry.expires_ms <= self._now():
            del self._store[key]
            self.misses += 1
            if obs.enabled:
                self._count_lookup("expired")
            return None
        self.hits += 1
        if obs.enabled:
            self._count_lookup("hit")
        return entry

    def peek(self, key):
        """The entry for *key* even when expired (RFC 8767 serve-stale reads).

        Does not drop expired entries and does not count toward the
        hit/miss statistics — the caller decides whether stale is usable.
        """
        return self._store.get(key)

    def put(self, key, value, ttl_seconds, secure=False):
        """Store *value* for *ttl_seconds* of simulated time."""
        if len(self._store) >= self.max_entries:
            self._evict_expired()
            if len(self._store) >= self.max_entries:
                self._evict_oldest_batch()
        self._store[key] = CacheEntry(
            value, self._now() + ttl_seconds * 1000.0, secure
        )

    def _evict_expired(self):
        now = self._now()
        dead = [key for key, entry in self._store.items() if entry.expires_ms <= now]
        for key in dead:
            del self._store[key]
        self._count_evictions("expired", len(dead))

    def _evict_oldest_batch(self):
        """Evict the ~5% of entries expiring soonest, restoring headroom.

        A full cache used to pay an O(n) single-``min`` scan on *every*
        subsequent put; batching drops that to one sort amortised over
        the next 5% of inserts. Deterministic: ties resolve to the
        earliest-inserted entry (``sorted`` is stable over insertion
        order).
        """
        target = self.max_entries - max(1, self.max_entries // 20)
        excess = len(self._store) - target
        oldest = sorted(self._store, key=lambda key: self._store[key].expires_ms)
        for key in oldest[:excess]:
            del self._store[key]
        self._count_evictions("overflow", excess)

    def drop(self, key):
        """Remove *key* if present; returns True when something was dropped."""
        return self._store.pop(key, None) is not None

    def __len__(self):
        return len(self._store)

    def clear(self):
        self._store.clear()

    @property
    def hit_rate(self):
        """Fraction of lookups served from cache since creation."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def rrset_key(name, rrtype):
    return ("rrset", Name.from_text(name), int(rrtype))


def negative_key(name, rrtype):
    return ("neg", Name.from_text(name), int(rrtype))


def zone_keys_key(zone):
    return ("dnskey", Name.from_text(zone))


def delegation_key(zone):
    return ("delegation", Name.from_text(zone))
