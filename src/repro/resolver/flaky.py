"""A flaky resolver: intermittent SERVFAILs on top of a real resolver.

Paper §5.2, on the apparent Item 12 violators: "querying these resolvers
again often results in different response patterns, rather indicating a
problem with the resolvers than an actual violation". This wrapper
reproduces that phenomenon so the survey's stability check has something
real to detect.
"""

from __future__ import annotations

import random

from repro.dns.message import Message, make_response
from repro.dns.rcode import Rcode
from repro.dns.wire import WireError
from repro.net.network import Host


class FlakyResolver(Host):
    """Wraps another resolver host; randomly SERVFAILs or drops queries."""

    def __init__(self, inner, servfail_rate=0.25, drop_rate=0.05, seed=0):
        self.inner = inner
        self.servfail_rate = servfail_rate
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)

    @property
    def ip(self):
        return self.inner.ip

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        roll = self._rng.random()
        if roll < self.drop_rate:
            return None
        if roll < self.drop_rate + self.servfail_rate:
            try:
                query = Message.from_wire(wire)
            except WireError:
                return None
            response = make_response(query, recursion_available=True)
            response.rcode = Rcode.SERVFAIL
            return response.to_wire()
        return self.inner.handle_datagram(wire, src_ip, via_tcp=via_tcp)
