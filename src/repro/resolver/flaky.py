"""A flaky resolver: intermittent SERVFAILs on top of a real resolver.

Paper §5.2, on the apparent Item 12 violators: "querying these resolvers
again often results in different response patterns, rather indicating a
problem with the resolvers than an actual violation". This wrapper
reproduces that phenomenon so the survey's stability check has something
real to detect.

Two fault flavours, because the paper's noise had two shapes: a
``servfail_rate`` (a degraded resolver failing internally) and a
``refused_rate`` (an access-controlled or rate-limiting resolver pushing
back). The survey can tell them apart through the RCODE, as the paper
did. Every decision is counted in :attr:`FlakyResolver.decisions` and,
when telemetry is on, in ``repro_flaky_decisions_total{kind=...}``.
"""

from __future__ import annotations

import random
from collections import Counter

from repro import obs
from repro.dns.message import Message, make_response
from repro.dns.rcode import Rcode
from repro.dns.wire import WireError
from repro.net.network import Host


class FlakyResolver(Host):
    """Wraps another resolver host; randomly fails, refuses, or drops."""

    def __init__(
        self, inner, servfail_rate=0.25, drop_rate=0.05, refused_rate=0.0, seed=0
    ):
        self.inner = inner
        self.servfail_rate = servfail_rate
        self.drop_rate = drop_rate
        self.refused_rate = refused_rate
        self._rng = random.Random(seed)
        #: Outcome counts by kind: pass / drop / servfail / refused.
        self.decisions = Counter()

    @property
    def ip(self):
        return self.inner.ip

    def _decide(self, kind):
        self.decisions[kind] += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_flaky_decisions_total",
                "FlakyResolver outcomes, by kind.",
                labelnames=("kind",),
            ).labels(kind=kind).inc()
        return kind

    def _fail_with(self, wire, rcode):
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        response = make_response(query, recursion_available=True)
        response.rcode = rcode
        return response.to_wire()

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        roll = self._rng.random()
        if roll < self.drop_rate:
            self._decide("drop")
            return None
        roll -= self.drop_rate
        if roll < self.servfail_rate:
            self._decide("servfail")
            return self._fail_with(wire, Rcode.SERVFAIL)
        roll -= self.servfail_rate
        if roll < self.refused_rate:
            self._decide("refused")
            return self._fail_with(wire, Rcode.REFUSED)
        self._decide("pass")
        return self.inner.handle_datagram(wire, src_ip, via_tcp=via_tcp)
