"""Forwarding resolvers.

Two kinds appear in the paper's measurements:

- :class:`ForwardingResolver` — a proper forwarder: relays client queries
  to an upstream recursive resolver (e.g. a CPE box pointing at
  Cloudflare) and relays answers back, re-stamping the message id. The
  paper identified these from server-side logs: the source contacting the
  authoritative zone differs from the probed address.
- :class:`QueryCopyingForwarder` — the broken middlebox behaviour behind
  most ``SERVFAIL at it-1`` observations: it builds responses by copying
  the query's flags, so RA is set only when the client set it.
"""

from __future__ import annotations

from repro.dns.flags import Flag
from repro.dns.message import Message, make_response
from repro.dns.rcode import Rcode
from repro.dns.wire import WireError
from repro.net.network import Host
from repro.net.transport import QueryFailure, Transport


class ForwardingResolver(Host):
    """Relays queries to an upstream resolver address."""

    def __init__(self, network, ip, upstream_ip, name="forwarder"):
        self.network = network
        self.ip = ip
        self.upstream_ip = upstream_ip
        self.name = name
        self.transport = Transport(network, ip)

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        try:
            upstream_response = self.transport.query(self.upstream_ip, query)
        except QueryFailure:
            response = make_response(query, recursion_available=True)
            response.rcode = Rcode.SERVFAIL
            return response.to_wire()
        upstream_response.id = query.id
        return upstream_response.to_wire()


class QueryCopyingForwarder(Host):
    """A broken device that answers SERVFAIL by echoing the query envelope.

    Matches the paper's observation for resolvers SERVFAILing from
    ``it-1``: "Most resolvers returning the SERVFAIL starting from it-1
    only set the Recursion Available (RA) bit in responses if also set in
    queries. This indicates that they simply copy the query content to
    the response." For compliant (zero-iteration) zones it forwards
    normally, which is what makes it look like a strict RFC 9276 resolver.
    """

    def __init__(self, network, ip, upstream_ip, name="query-copier"):
        self.network = network
        self.ip = ip
        self.upstream_ip = upstream_ip
        self.name = name
        self.transport = Transport(network, ip)

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        try:
            upstream_response = self.transport.query(self.upstream_ip, query)
        except QueryFailure:
            upstream_response = None
        if upstream_response is not None and upstream_response.rcode == Rcode.NOERROR:
            upstream_response.id = query.id
            return upstream_response.to_wire()
        # Broken path: echo the query with QR and SERVFAIL — flags (and
        # notably the absent RA bit) come straight from the client query.
        echoed = Message(query.id)
        echoed.flags = query.flags | Flag.QR
        echoed.opcode = query.opcode
        echoed.question = list(query.question)
        echoed.rcode = Rcode.SERVFAIL
        if query.edns is not None:
            echoed.use_edns(dnssec_ok=query.edns.dnssec_ok)
        return echoed.to_wire()
