"""The validating recursive resolver.

Composes the iterative engine, the DNSSEC validation primitives, and an
:class:`~repro.resolver.policy.Nsec3Policy`. This is the system under
measurement in the paper's §5.2: depending on the policy thresholds it
answers the ``it-N`` probes with NXDOMAIN+AD, NXDOMAIN (insecure), or
SERVFAIL — optionally with Extended DNS Error 27.

Chain of trust is established per zone and memoised: the root DNSKEY RRset
is checked against the configured trust anchor (a DS-style digest), each
child zone via the parent's DS RRset. Negative answers from signed zones
are accepted only with a verified NSEC/NSEC3 proof — and verifying an
NSEC3 proof is exactly where high iteration counts burn CPU
(CVE-2023-50868); the work is charged to :data:`repro.dnssec.costmodel.meter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dns.edns import (
    EDE_DNSSEC_BOGUS,
    EDE_SIGNATURE_EXPIRED,
    EDE_STALE_ANSWER,
)
from repro.dns.flags import Flag
from repro.dns.message import Message, make_response
from repro.dns.name import Name, root
from repro.dns.rcode import Rcode
from repro.dns.types import Opcode, RdataType
from repro.dns.wire import WireError
from repro.dnssec.denial import (
    DenialError,
    collect_proof_records,
    verify_nodata,
    verify_nxdomain,
)
from repro.dnssec.costmodel import meter
from repro.dnssec.signer import SIMULATION_NOW
from repro.dnssec.validator import (
    SecurityStatus,
    validate_dnskey_with_ds,
    validate_rrset,
)
from repro.net.network import Host
from repro.resolver import guard as resource_guard
from repro.resolver.cache import Cache, delegation_key, negative_key
from repro.resolver.iterative import IterativeResolver
from repro.resolver.policy import Nsec3Policy

#: Fallback cache TTL for client-facing verdicts (seconds); actual TTLs
#: follow the records (RFC 2308: negative entries use the SOA minimum).
VERDICT_TTL = 300
VERDICT_TTL_CAP = 86_400

#: Ceiling on :meth:`ValidatingResolver.zone_security` recursion — a
#: pathological delegation chain (or a loop the memo misses) turns into
#: BOGUS + EDE instead of unbounded recursion.
MAX_CHAIN_DEPTH = 32
#: Ceiling on the parent walk in :meth:`ValidatingResolver._flush_chain`
#: (names cap at 127 labels; the explicit bound documents the invariant).
MAX_FLUSH_WALK = 128


@dataclass
class Verdict:
    """The resolver's conclusion for one client question."""

    rcode: int
    answer: list
    authority: list
    ad: bool = False
    ede: tuple = ()

    def apply(self, response):
        """Copy this verdict's sections, flags, and EDE into *response*."""
        response.rcode = self.rcode
        response.answer = [rrset.copy() for rrset in self.answer]
        response.authority = [rrset.copy() for rrset in self.authority]
        response.set_flag(Flag.AD, self.ad)
        if response.edns is not None:
            for code, text in self.ede:
                response.edns.add_extended_error(code, text)
        return response


def _verdict_ttl(verdict):
    """Cache lifetime for a verdict (RFC 2308 semantics).

    Positive answers live as long as their shortest RRset TTL; negative
    answers as long as the SOA ``minimum`` field (the negative-caching
    TTL), capped; SERVFAILs only briefly.
    """
    if verdict.rcode == Rcode.SERVFAIL:
        return 30
    if verdict.answer:
        return min(
            min(rrset.ttl for rrset in verdict.answer), VERDICT_TTL_CAP
        )
    for rrset in verdict.authority:
        if int(rrset.rrtype) == int(RdataType.SOA) and rrset.rdatas:
            return min(rrset.rdatas[0].minimum, rrset.ttl, VERDICT_TTL_CAP)
    return VERDICT_TTL


class ValidatingResolver(Host):
    """A recursive resolver with DNSSEC validation and an NSEC3 policy."""

    def __init__(
        self,
        network,
        ip,
        root_addresses,
        trust_anchor_ds,
        policy=None,
        validate=True,
        name="resolver",
        now=SIMULATION_NOW,
        guard=None,
    ):
        self.network = network
        self.ip = ip
        self.name = name
        self.policy = policy or Nsec3Policy()
        self.validate = validate
        self.now = now
        self.trust_anchor_ds = trust_anchor_ds
        self.cache = Cache(clock=lambda: network.clock_ms, name="resolver")
        self.engine = IterativeResolver(network, ip, root_addresses, cache=self.cache)
        #: zone Name -> (SecurityStatus, dnskey_rrset or None)
        self._zone_security = {}
        #: Optional :class:`repro.resolver.guard.GuardConfig`; None (the
        #: default everywhere) keeps the legacy unbounded behaviour, so
        #: survey classifications are untouched by the guard subsystem.
        self.guard = guard
        self.admission = (
            resource_guard.AdmissionController(guard.max_inflight)
            if guard is not None and guard.max_inflight is not None
            else None
        )
        #: Per-ceiling abort counts (kind -> n), kept even with obs off.
        self.guard_events = {}

    # -- datagram entry point ---------------------------------------------------

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        """Serve one client query arriving as wire bytes."""
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        if query.is_response or query.opcode != Opcode.QUERY or not query.question:
            return None
        response = make_response(query, recursion_available=True)
        if not query.has_flag(Flag.RD):
            response.rcode = Rcode.REFUSED
            return response.to_wire()
        question = query.question[0]
        verdict = self._admission_shed(question)
        if verdict is None:
            start_ms = self.network.clock_ms
            try:
                verdict = self.resolve_and_validate(
                    question.name,
                    question.rrtype,
                    checking_disabled=query.has_flag(Flag.CD),
                )
            finally:
                if self.admission is not None:
                    self.admission.complete(start_ms, self.network.clock_ms)
        return self._finish_response(query, response, verdict, via_tcp)

    def _finish_response(self, query, response, verdict, via_tcp):
        """Apply *verdict* and encode, honouring DO filtering and EDNS size."""
        verdict.apply(response)
        if not query.dnssec_ok:
            response.answer = [
                r for r in response.answer if int(r.rrtype) != int(RdataType.RRSIG)
            ]
            response.authority = [
                r
                for r in response.authority
                if int(r.rrtype)
                not in (int(RdataType.RRSIG), int(RdataType.NSEC), int(RdataType.NSEC3))
            ]
        max_size = query.edns.payload_size if query.edns else 512
        return response.to_wire(max_size=None if via_tcp else max_size)

    def shed_datagram(self, wire, via_tcp=False):
        """A complete wire reply for one shed arrival, without resolving.

        The socket service calls this from its event loop when the
        real-time :class:`~repro.resolver.guard.ConcurrencyGate` refuses
        an arrival: it parses the query and answers from
        :meth:`shed_verdict` — a cache peek at most, never the iterative
        engine — so it is safe to run concurrently with the worker
        thread that owns the resolution state. Returns None on garbage
        (the frontend stays silent, like the sim fabric does).
        """
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        if query.is_response or query.opcode != Opcode.QUERY or not query.question:
            return None
        response = make_response(query, recursion_available=True)
        question = query.question[0]
        verdict = self.shed_verdict(question.name, question.rrtype)
        return self._finish_response(query, response, verdict, via_tcp)

    # -- load shedding ----------------------------------------------------------

    def _admission_shed(self, question):
        """Shed this arrival when too much work is in flight; None = admit.

        Overload answers follow RFC 8767 where possible: an expired cached
        verdict for the same question is served with EDE 3 (Stale Answer);
        otherwise the query is REFUSED outright.
        """
        if self.admission is None:
            return None
        if self.admission.admit(self.network.clock_ms):
            return None
        return self.shed_verdict(question.name, question.rrtype)

    def stale_verdict(self, qname, qtype):
        """An RFC 8767 stale answer for ``(qname, qtype)``, or None.

        Shared by the sim-clock admission path and the socket service's
        real-time overload path: reads the verdict cache without
        mutating it, so the service event loop may call it while the
        worker thread is resolving.
        """
        stale = self.cache.peek(negative_key(Name.from_text(qname), int(qtype)))
        if stale is None:
            return None
        cached = stale.value
        return Verdict(
            cached.rcode,
            cached.answer,
            cached.authority,
            ad=cached.ad,
            ede=cached.ede + ((EDE_STALE_ANSWER, "served stale under load"),),
        )

    def shed_verdict(self, qname, qtype):
        """The overload answer for one shed arrival (RFC 8767 where possible).

        An expired cached verdict for the same question is served with
        EDE 3 (Stale Answer); otherwise the query is REFUSED outright.
        Also counts the shed in ``repro_guard_shed_total``.
        """
        if self.guard is not None and self.guard.serve_stale:
            verdict = self.stale_verdict(qname, qtype)
            if verdict is not None:
                resource_guard.count_shed(self.name, "stale")
                if obs.events:
                    obs.emit(
                        "guard.shed",
                        resolver=self.name,
                        action="stale",
                        qname=str(qname),
                    )
                return verdict
        resource_guard.count_shed(self.name, "refused")
        if obs.events:
            obs.emit(
                "guard.shed",
                resolver=self.name,
                action="refused",
                qname=str(qname),
            )
        return Verdict(Rcode.REFUSED, [], [])

    # -- main resolution path ------------------------------------------------------

    def resolve_and_validate(self, qname, qtype, checking_disabled=False):
        """Resolve one question and return the validated :class:`Verdict`.

        With a :class:`~repro.resolver.guard.GuardConfig` attached, all
        metered work this query causes (NSEC3 hashing, signature
        verification — including work performed by upstream servers during
        nested exchanges — plus upstream fan-out and elapsed simulated
        time) is charged to a per-query budget; breaching any ceiling
        aborts the query with SERVFAIL and an Extended DNS Error.
        """
        if self.guard is None:
            return self._resolve_observed(qname, qtype, checking_disabled)
        budget = resource_guard.WorkBudget(
            self.guard, clock=lambda: self.network.clock_ms
        )
        try:
            with resource_guard.activate(budget):
                return self._resolve_observed(qname, qtype, checking_disabled)
        except resource_guard.ResourceGuardError as exc:
            self.guard_events[exc.kind] = self.guard_events.get(exc.kind, 0) + 1
            resource_guard.count_budget_exceeded(self.name, exc.kind)
            if obs.events:
                # guard.trip is in the journal's dump_on set: this also
                # flushes the flight-recorder ring for the post-mortem.
                obs.emit(
                    "guard.trip",
                    resolver=self.name,
                    ceiling=exc.kind,
                    qname=str(qname),
                )
            return Verdict(
                Rcode.SERVFAIL, [], [], ede=((exc.ede_code, exc.detail[:80]),)
            )

    def _resolve_observed(self, qname, qtype, checking_disabled=False):
        if not obs.enabled:
            return self._resolve_and_validate(qname, qtype, checking_disabled)
        cost_start = meter.snapshot()
        if obs.tracing:
            with obs.span(
                "resolver.validate",
                resolver=self.name,
                policy=self.policy.name,
                qname=str(qname),
            ) as span:
                verdict = self._resolve_and_validate(
                    qname, qtype, checking_disabled
                )
                span.set(rcode=Rcode.to_text(verdict.rcode), ad=verdict.ad)
        else:
            verdict = self._resolve_and_validate(qname, qtype, checking_disabled)
        obs.profiler.record_validation(
            self.policy.name, meter.snapshot() - cost_start, verdict.rcode
        )
        return verdict

    def _resolve_and_validate(self, qname, qtype, checking_disabled):
        qname = Name.from_text(qname)
        qtype = int(qtype)
        cached = self.cache.get(negative_key(qname, qtype))
        if cached is not None:
            return cached.value

        outcome = self.engine.resolve(qname, qtype, want_dnssec=True)
        if not outcome.ok:
            verdict = Verdict(Rcode.SERVFAIL, [], [])
            return verdict
        response = outcome.response
        if response.rcode not in (Rcode.NOERROR, Rcode.NXDOMAIN):
            verdict = Verdict(response.rcode, [], list(response.authority))
            return verdict

        if not self.validate or checking_disabled:
            verdict = Verdict(
                response.rcode, list(response.answer), list(response.authority)
            )
            self._cache_verdict(qname, qtype, verdict)
            return verdict

        verdict = self._validated_verdict(qname, qtype, outcome)
        if verdict.rcode == Rcode.SERVFAIL:
            # Second chance before concluding bogus (RFC 4035 §4.7 spirit):
            # flush the delegation chain so a damaged cached DS or glue
            # record cannot keep failing validation, then re-fetch. A zone
            # that is genuinely broken fails again — deterministically.
            self._flush_chain(qname)
            retry = self.engine.resolve(qname, qtype, want_dnssec=True)
            if retry.ok and retry.response.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN):
                verdict = self._validated_verdict(qname, qtype, retry)
        self._cache_verdict(qname, qtype, verdict)
        return verdict

    def _flush_chain(self, qname):
        """Drop cached delegation evidence on the path to *qname*.

        The walk is explicitly bounded by :data:`MAX_FLUSH_WALK`: a name
        can never carry more labels than that, so hitting the bound means
        a broken ``parent()`` chain — stop rather than loop forever.
        """
        name = Name.from_text(qname)
        for __ in range(MAX_FLUSH_WALK):
            self.cache.drop(delegation_key(name))
            if name.is_root():
                return
            name = name.parent()

    def _cache_verdict(self, qname, qtype, verdict):
        self.cache.put(negative_key(qname, qtype), verdict, _verdict_ttl(verdict))

    # -- chain of trust --------------------------------------------------------------

    def zone_security(self, zone, _depth=0):
        """Security status of *zone*: (SecurityStatus, validated DNSKEY RRset).

        Memoised. INSECURE propagates downward from the first unsigned
        delegation; BOGUS from the first broken link.
        """
        zone = Name.from_text(zone)
        if zone in self._zone_security:
            return self._zone_security[zone]
        budget = resource_guard.current()
        if budget is not None:
            budget.charge_depth(_depth)
        if _depth > MAX_CHAIN_DEPTH:
            # The BOGUS propagates into a SERVFAIL verdict carrying
            # EDE 6 (DNSSEC Bogus) via _validated_verdict.
            return SecurityStatus.BOGUS, None
        if zone == root:
            result = self._root_security()
        else:
            result = self._child_security(zone, _depth)
        # Memoise only verdicts backed by cryptographic evidence (a chain
        # that verified, or a validated proof of no DS). BOGUS and
        # INDETERMINATE can be transient — one lost or damaged upstream
        # exchange — and latching them would poison every later answer.
        if result[0] in (SecurityStatus.SECURE, SecurityStatus.INSECURE):
            self._zone_security[zone] = result
        return result

    def _root_security(self):
        keys, rrsigs = self._fetch_dnskey(root)
        if keys is None:
            return SecurityStatus.BOGUS, None
        result = validate_dnskey_with_ds(
            root, keys, rrsigs, self.trust_anchor_ds, now=self.now
        )
        if result.secure:
            return SecurityStatus.SECURE, keys
        return SecurityStatus.BOGUS, None

    def _child_security(self, zone, _depth):
        ds_outcome = self.engine.resolve(zone, RdataType.DS, want_dnssec=True)
        if not ds_outcome.ok:
            return SecurityStatus.INDETERMINATE, None
        response = ds_outcome.response

        ds_rrset = response.find_rrset(response.answer, zone, RdataType.DS)
        if ds_rrset is not None:
            ds_sigs = self._covering_sigs(response.answer, zone, RdataType.DS)
            parent = ds_sigs[0].signer if ds_sigs else ds_outcome.auth_zone
            parent_status, parent_keys = self.zone_security(parent, _depth + 1)
            if parent_status is not SecurityStatus.SECURE:
                return parent_status, None
            ds_valid = validate_rrset(
                ds_rrset,
                self._sig_rrset(response.answer, zone, RdataType.DS),
                parent_keys,
                now=self.now,
            )
            if not ds_valid.secure:
                return SecurityStatus.BOGUS, None
            keys, rrsigs = self._fetch_dnskey(zone)
            if keys is None:
                return SecurityStatus.BOGUS, None
            result = validate_dnskey_with_ds(zone, keys, rrsigs, ds_rrset, now=self.now)
            if result.secure:
                return SecurityStatus.SECURE, keys
            return SecurityStatus.BOGUS, None

        # No DS in the answer: the delegation may be insecure, but a signed
        # parent must prove it (otherwise an attacker could strip DS records).
        parent = ds_outcome.auth_zone or zone.parent()
        parent_status, parent_keys = self.zone_security(parent, _depth + 1)
        if parent_status is not SecurityStatus.SECURE:
            return parent_status, None
        proof_status = self._check_no_ds_proof(zone, parent, response, parent_keys)
        return proof_status, None

    def _check_no_ds_proof(self, zone, parent, response, parent_keys):
        """Verify the parent's proof that no DS exists (insecure delegation)."""
        try:
            records, params = collect_proof_records(response.authority, parent)
        except DenialError:
            return SecurityStatus.BOGUS
        if params is not None:
            iterations = params[1]
            if self.policy.exceeds_servfail(iterations) or self.policy.exceeds_insecure(iterations):
                # Parent proof unusable under the policy: treat the child as
                # insecure (the RFC 9276 Item 6 downgrade).
                return SecurityStatus.INSECURE
            if not self._nsec3_sigs_valid(response.authority, parent, parent_keys):
                return SecurityStatus.BOGUS
            proof = verify_nodata(zone, RdataType.DS, parent, records, params)
            if proof.valid:
                if not proof.opt_out and not self._matching_nsec3_has_ns_bit(
                    zone, records, params
                ):
                    # A no-DS proof must describe a real delegation (NS bit
                    # set); otherwise stripping signatures from ordinary
                    # names would downgrade them to insecure.
                    return SecurityStatus.BOGUS
                return SecurityStatus.INSECURE
            return SecurityStatus.BOGUS
        # Plain NSEC parent (or no proof at all).
        nsec = [
            rrset
            for rrset in response.authority
            if int(rrset.rrtype) == int(RdataType.NSEC)
        ]
        for rrset in nsec:
            sigs = self._sig_rrset(response.authority, rrset.name, RdataType.NSEC)
            result = validate_rrset(rrset, sigs, parent_keys, now=self.now)
            if not result.secure:
                return SecurityStatus.BOGUS
            if rrset.name == zone and not rrset[0].covers_type(RdataType.DS):
                return SecurityStatus.INSECURE
            if rrset.name != zone:
                return SecurityStatus.INSECURE  # covering NSEC (opt-out style)
        return SecurityStatus.BOGUS

    def _fetch_dnskey(self, zone):
        outcome = self.engine.resolve(zone, RdataType.DNSKEY, want_dnssec=True)
        if not outcome.ok or outcome.response.rcode != Rcode.NOERROR:
            return None, None
        keys = outcome.response.find_rrset(
            outcome.response.answer, zone, RdataType.DNSKEY
        )
        sigs = self._sig_rrset(outcome.response.answer, zone, RdataType.DNSKEY)
        if keys is None:
            return None, None
        return keys, sigs

    # -- helpers over message sections ---------------------------------------------

    @staticmethod
    def _sig_rrset(section, name, covered):
        for rrset in section:
            if rrset.name == name and int(rrset.rrtype) == int(RdataType.RRSIG):
                matching = [r for r in rrset if r.type_covered == int(covered)]
                if matching:
                    clone = rrset.copy()
                    clone.rdatas = matching
                    return clone
        return None

    @staticmethod
    def _covering_sigs(section, name, covered):
        sigs = []
        for rrset in section:
            if rrset.name == name and int(rrset.rrtype) == int(RdataType.RRSIG):
                sigs.extend(r for r in rrset if r.type_covered == int(covered))
        return sigs

    @staticmethod
    def _matching_nsec3_has_ns_bit(zone, records, params):
        """True if the NSEC3 matching *zone* asserts a delegation (NS set)."""
        from repro.dnssec.nsec3hash import nsec3_hash

        hash_algorithm, iterations, salt = params
        digest = nsec3_hash(
            Name.from_text(zone).canonical_wire(), salt, iterations, hash_algorithm
        )
        for record in records:
            if record.matches(digest):
                return record.rdata.covers_type(RdataType.NS)
        return False

    def _nsec3_sigs_valid(self, section, zone, keys):
        """Validate the RRSIGs over every NSEC3 RRset in *section* (Item 7)."""
        for rrset in section:
            if int(rrset.rrtype) != int(RdataType.NSEC3):
                continue
            sigs = self._sig_rrset(section, rrset.name, RdataType.NSEC3)
            result = validate_rrset(rrset, sigs, keys, now=self.now)
            if not result.secure:
                return False
        return True

    # -- answer validation --------------------------------------------------------------

    def _validated_verdict(self, qname, qtype, outcome):
        response = outcome.response
        zone = outcome.auth_zone or root
        status, keys = self.zone_security(zone)

        if status is SecurityStatus.INDETERMINATE:
            return Verdict(Rcode.SERVFAIL, [], [])
        if status is SecurityStatus.BOGUS:
            return Verdict(
                Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),)
            )
        if status is SecurityStatus.INSECURE:
            return Verdict(
                response.rcode, list(response.answer), list(response.authority)
            )

        # SECURE zone: every assertion must verify.
        if response.rcode == Rcode.NXDOMAIN:
            return self._validate_negative(
                qname, qtype, zone, keys, response, nxdomain=True
            )
        if not response.answer:
            return self._validate_negative(
                qname, qtype, zone, keys, response, nxdomain=False
            )
        return self._validate_positive(qname, qtype, zone, keys, response)

    def _validate_positive(self, qname, qtype, zone, keys, response):
        wildcard_expanded = False
        any_insecure = False
        for rrset in response.answer:
            if int(rrset.rrtype) == int(RdataType.RRSIG):
                continue
            sigs = self._sig_rrset(response.answer, rrset.name, rrset.rrtype)
            if sigs is None:
                # Unsigned data (e.g. a CNAME target in an unsigned zone):
                # acceptable only if the name provably sits below an
                # insecure delegation.
                status, __ = self.zone_security(rrset.name)
                if status is SecurityStatus.INSECURE:
                    any_insecure = True
                    continue
                return Verdict(
                    Rcode.SERVFAIL, [], [],
                    ede=((EDE_DNSSEC_BOGUS, "unsigned RRset in a secure zone"),),
                )
            signer_keys = keys
            if sigs[0].signer != zone:
                signer_status, signer_keys = self.zone_security(sigs[0].signer)
                if signer_status is not SecurityStatus.SECURE:
                    return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
            result = validate_rrset(rrset, sigs, signer_keys, now=self.now)
            if not result.secure:
                ede = (
                    (EDE_SIGNATURE_EXPIRED, "")
                    if "validity window" in result.reason
                    else (EDE_DNSSEC_BOGUS, result.reason[:80])
                )
                return Verdict(Rcode.SERVFAIL, [], [], ede=(ede,))
            if result.rrsig is not None and result.rrsig.labels < rrset.name.label_count:
                wildcard_expanded = True

        if wildcard_expanded:
            # Must prove the concrete name does not exist (RFC 5155 §8.8).
            verdict = self._check_wildcard_proof(qname, zone, keys, response)
            if verdict is not None:
                return verdict
        return Verdict(
            Rcode.NOERROR,
            list(response.answer),
            list(response.authority),
            ad=not any_insecure,
        )

    def _check_wildcard_proof(self, qname, zone, keys, response):
        """Returns a failure/downgrade Verdict, or None when the proof holds."""
        try:
            records, params = collect_proof_records(response.authority, zone)
        except DenialError:
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
        if params is None:
            if any(int(r.rrtype) == int(RdataType.NSEC) for r in response.authority):
                return None  # NSEC wildcard proof accepted structurally
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
        iterations = params[1]
        policy_verdict = self._policy_gate(
            iterations, zone, keys, response, Rcode.NOERROR,
            list(response.answer), list(response.authority),
        )
        if policy_verdict is not None:
            return policy_verdict
        if not self._nsec3_sigs_valid(response.authority, zone, keys):
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
        return None

    def _policy_gate(self, iterations, zone, keys, response, rcode, answer, authority):
        """Apply the NSEC3 iteration policy. None → proceed with validation."""
        if self.policy.exceeds_servfail(iterations):
            if self.policy.verify_before_limit and not self._nsec3_sigs_valid(
                response.authority, zone, keys
            ):
                return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
            return Verdict(
                Rcode.SERVFAIL, [], [], ede=self.policy.limit_ede_options()
            )
        if self.policy.exceeds_insecure(iterations):
            if self.policy.verify_before_limit and not self._nsec3_sigs_valid(
                response.authority, zone, keys
            ):
                return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
            return Verdict(
                rcode, answer, authority, ad=False, ede=self.policy.limit_ede_options()
            )
        return None

    def _validate_negative(self, qname, qtype, zone, keys, response, nxdomain):
        rcode = Rcode.NXDOMAIN if nxdomain else Rcode.NOERROR
        soa = None
        for rrset in response.authority:
            if int(rrset.rrtype) == int(RdataType.SOA):
                soa = rrset
                break
        try:
            records, params = collect_proof_records(response.authority, zone)
        except DenialError:
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))

        if params is not None:
            iterations = params[1]
            gated = self._policy_gate(
                iterations, zone, keys, response, rcode, [], list(response.authority)
            )
            if gated is not None:
                return gated
            if not self._nsec3_sigs_valid(response.authority, zone, keys):
                return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
            if soa is not None:
                soa_result = validate_rrset(
                    soa,
                    self._sig_rrset(response.authority, soa.name, RdataType.SOA),
                    keys,
                    now=self.now,
                )
                if not soa_result.secure:
                    return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
            if nxdomain:
                proof = verify_nxdomain(qname, zone, records, params)
            else:
                proof = verify_nodata(qname, qtype, zone, records, params)
            if not proof.valid:
                return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, proof.reason[:80]),))
            ad = not proof.opt_out  # opt-out proofs are insecure by definition
            return Verdict(rcode, [], list(response.authority), ad=ad)

        # NSEC-based denial.
        nsec_rrsets = [
            r for r in response.authority if int(r.rrtype) == int(RdataType.NSEC)
        ]
        if not nsec_rrsets:
            # A signed zone answering negatively without proof is bogus.
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, "no denial proof"),))
        for rrset in nsec_rrsets:
            sigs = self._sig_rrset(response.authority, rrset.name, RdataType.NSEC)
            result = validate_rrset(rrset, sigs, keys, now=self.now)
            if not result.secure:
                return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, ""),))
        if not self._nsec_denies(qname, qtype, nsec_rrsets, nxdomain):
            return Verdict(Rcode.SERVFAIL, [], [], ede=((EDE_DNSSEC_BOGUS, "NSEC proof mismatch"),))
        return Verdict(rcode, [], list(response.authority), ad=True)

    @staticmethod
    def _nsec_denies(qname, qtype, nsec_rrsets, nxdomain):
        """Structural NSEC denial check (RFC 4035 §5.4)."""
        qname = Name.from_text(qname)
        for rrset in nsec_rrsets:
            nsec = rrset[0]
            if rrset.name == qname:
                if nxdomain:
                    return False  # name exists, cannot be NXDOMAIN
                return not nsec.covers_type(qtype)
        if not nxdomain:
            # NODATA via covering NSEC only valid for opt-out-like cases.
            return False
        for rrset in nsec_rrsets:
            nsec = rrset[0]
            owner, nxt = rrset.name, nsec.next_name
            if (owner < qname < nxt) or (nxt <= owner and (qname > owner or qname < nxt)):
                return True
        return False
