"""Recursive resolvers: iterative resolution, caching, DNSSEC validation.

The validating resolver composes :mod:`repro.dnssec` primitives with the
per-vendor NSEC3 iteration policies of :mod:`repro.resolver.policy` — the
behavioural axis the paper's §5.2 measures.
"""

from repro.resolver.policy import Nsec3Policy, VENDOR_POLICIES
from repro.resolver.cache import Cache
from repro.resolver.iterative import IterativeResolver
from repro.resolver.validating import ValidatingResolver
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.stub import StubClient

__all__ = [
    "Nsec3Policy",
    "VENDOR_POLICIES",
    "Cache",
    "IterativeResolver",
    "ValidatingResolver",
    "ForwardingResolver",
    "StubClient",
]
