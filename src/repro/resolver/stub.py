"""Stub client: what the scanners and Atlas-style probes use to ask resolvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.message import make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dns.flags import Flag
from repro.net.transport import DEFAULT_BACKOFF, QueryFailure, Transport


@dataclass
class StubAnswer:
    """A client-side view of one resolver response."""

    rcode: int
    ad: bool
    ra: bool
    answer: list
    ede_codes: tuple
    answered: bool = True
    authority: list = field(default_factory=list)

    @classmethod
    def timeout(cls):
        """The answer used when every retry went unanswered."""
        return cls(Rcode.SERVFAIL, False, False, [], (), answered=False)


class StubClient:
    """Sends recursive queries to a resolver and summarises the replies.

    The resilience knobs (*backoff*, *timeout_budget_ms*, *breaker*) pass
    straight through to :class:`~repro.net.transport.Transport`; a shared
    breaker lets a scan campaign quarantine dead resolvers across all its
    clients.
    """

    #: Query-template cache bound: campaign re-asks (target retries,
    #: requeue passes) reuse the built+encoded message instead of
    #: re-running make_query; survey probes use unique cache-busting
    #: qnames, so the table is cleared rather than grown when full.
    TEMPLATE_CACHE_LIMIT = 512

    def __init__(
        self,
        network,
        source_ip,
        retries=1,
        backoff=DEFAULT_BACKOFF,
        timeout_budget_ms=None,
        breaker=None,
    ):
        self.transport = Transport(
            network,
            source_ip,
            retries=retries,
            backoff=backoff,
            timeout_budget_ms=timeout_budget_ms,
            breaker=breaker,
        )
        self.source_ip = source_ip
        self._templates = {}

    def _query_for(self, qname, qtype, want_dnssec, set_rd, checking_disabled):
        """The (cached) query message; its id is fresh on every call."""
        key = (
            str(qname),
            int(qtype),
            bool(want_dnssec),
            bool(set_rd),
            bool(checking_disabled),
        )
        query = self._templates.get(key)
        if query is None:
            query = make_query(
                qname, qtype, want_dnssec=want_dnssec, recursion_desired=set_rd
            )
            if checking_disabled:
                query.set_flag(Flag.CD)
            query.encode()  # warm the wire memo before the hot path
            if len(self._templates) >= self.TEMPLATE_CACHE_LIMIT:
                self._templates.clear()
            self._templates[key] = query
            return query
        return query.refresh_id()

    def ask(
        self,
        resolver_ip,
        qname,
        qtype=RdataType.A,
        want_dnssec=True,
        set_rd=True,
        checking_disabled=False,
    ):
        """Send one recursive query to *resolver_ip* and summarise the reply."""
        query = self._query_for(qname, qtype, want_dnssec, set_rd, checking_disabled)
        try:
            response = self.transport.query(resolver_ip, query)
        except QueryFailure:
            return StubAnswer.timeout()
        ede = tuple(err.info_code for err in response.extended_errors())
        return StubAnswer(
            rcode=int(response.rcode),
            ad=response.has_flag(Flag.AD),
            ra=response.has_flag(Flag.RA),
            answer=response.answer,
            ede_codes=ede,
            authority=response.authority,
        )
