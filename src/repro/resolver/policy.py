"""NSEC3 iteration-limit policies, modelled on real resolver software.

RFC 9276 leaves resolvers two levers (paper Table 1):

- *Item 6*: treat responses whose NSEC3 records exceed an iteration limit
  as **insecure** — answer without the AD bit;
- *Item 8*: return **SERVFAIL** above a limit.

Vendors differ only in the two thresholds, the EDE signalling (Items
10/11), and whether they verify NSEC3 RRSIGs before honouring the limit
(Item 7). The same :class:`ValidatingResolver` core runs every vendor
behaviour by injecting one of these policy objects — mirroring how the
patched implementations differ from the unpatched ones by a constant.

Threshold provenance (paper §4.2):

- BIND9, Knot Resolver, PowerDNS Recursor, Unbound moved to
  insecure-above-150 in 2021; all but Unbound lowered to 50 by end 2023
  (CVE-2023-50868 patches);
- Google Public DNS: insecure above 100;
- Quad9: insecure above 150;
- Cloudflare 1.1.1.1 and Cisco OpenDNS: SERVFAIL above 150;
- Technitium: SERVFAIL above 100 with EDE 27 and EXTRA-TEXT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.edns import (
    EDE_DNSSEC_INDETERMINATE,
    EDE_NSEC_MISSING,
    EDE_UNSUPPORTED_NSEC3_ITERATIONS,
)

#: RFC 5155 §10.3 cap for the largest key size; iterations above this are
#: treated as insecure even by pre-RFC 9276 resolvers.
RFC5155_MAX_ITERATIONS = 2500


@dataclass(frozen=True)
class Nsec3Policy:
    """How a resolver reacts to NSEC3 records with many iterations."""

    name: str = "legacy"
    #: Item 6: treat responses as insecure when iterations exceed this.
    insecure_above: int | None = None
    #: Item 8: SERVFAIL when iterations exceed this.
    servfail_above: int | None = None
    #: Item 10: attach EDE 27 to limiting responses.
    ede27: bool = False
    #: Some vendors attach a different EDE code instead (Google: 5 and 12).
    substitute_ede: tuple = ()
    #: EXTRA-TEXT accompanying EDE 27 (Technitium style).
    ede_extra_text: str = ""
    #: Item 7: verify NSEC3 RRSIGs before acting on the iteration count.
    #: Violators skip validation once the limit is exceeded.
    verify_before_limit: bool = True

    def exceeds_insecure(self, iterations):
        """True when *iterations* triggers the Item 6 insecure downgrade."""
        if iterations > RFC5155_MAX_ITERATIONS:
            return True
        return self.insecure_above is not None and iterations > self.insecure_above

    def exceeds_servfail(self, iterations):
        """True when *iterations* triggers the Item 8 SERVFAIL."""
        return self.servfail_above is not None and iterations > self.servfail_above

    def limit_ede_options(self):
        """The EDE (code, text) pairs to attach to a limiting response."""
        if self.ede27:
            return ((EDE_UNSUPPORTED_NSEC3_ITERATIONS, self.ede_extra_text),)
        return tuple((code, "") for code in self.substitute_ede)


#: Named policies covering the software landscape the paper observed.
VENDOR_POLICIES = {
    # Pre-2021 software, no RFC 9276 handling (only the RFC 5155 ceiling).
    "legacy": Nsec3Policy(name="legacy"),
    # The 2021 coordinated change: insecure above 150.
    "bind9-2021": Nsec3Policy(name="bind9-2021", insecure_above=150, ede27=True),
    "unbound": Nsec3Policy(name="unbound", insecure_above=150, ede27=False),
    "knot-2021": Nsec3Policy(name="knot-2021", insecure_above=150, ede27=True),
    "powerdns-2021": Nsec3Policy(name="powerdns-2021", insecure_above=150, ede27=False),
    # CVE-2023-50868 patches: limit lowered to 50.
    "bind9-2023": Nsec3Policy(name="bind9-2023", insecure_above=50, ede27=True),
    "knot-2023": Nsec3Policy(name="knot-2023", insecure_above=50, ede27=True),
    "powerdns-2023": Nsec3Policy(name="powerdns-2023", insecure_above=50, ede27=False),
    # Public resolver behaviours measured by the paper.
    "google": Nsec3Policy(
        name="google",
        insecure_above=100,
        ede27=False,
        substitute_ede=(EDE_DNSSEC_INDETERMINATE, EDE_NSEC_MISSING),
    ),
    "quad9": Nsec3Policy(name="quad9", insecure_above=150, ede27=False),
    "cloudflare": Nsec3Policy(name="cloudflare", servfail_above=150, ede27=True),
    "opendns": Nsec3Policy(name="opendns", servfail_above=150, ede27=False),
    "technitium": Nsec3Policy(
        name="technitium",
        servfail_above=100,
        ede27=True,
        ede_extra_text="NSEC3 iterations count higher than 100",
    ),
    # Strict reading of RFC 9276: any non-zero iteration count fails.
    "strict-rfc9276": Nsec3Policy(
        name="strict-rfc9276", servfail_above=0, ede27=True
    ),
    # An Item 7 violator: honours the 150 limit without checking RRSIGs.
    "sloppy-150": Nsec3Policy(
        name="sloppy-150", insecure_above=150, verify_before_limit=False
    ),
    # An Item 12 violator: insecure band (>50) below the SERVFAIL band (>150).
    "gapped": Nsec3Policy(
        name="gapped", insecure_above=50, servfail_above=150, ede27=False
    ),
}
