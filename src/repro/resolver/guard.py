"""Resolver-side resource guards: work budgets, watchdogs, load shedding.

The paper's premise is that NSEC3 parameters are a resource-exhaustion
vector: CVE-2023-50868 burns resolver CPU through closest-encloser proofs
with high iteration counts, and KeyTrap (Heftrig et al. 2024) does the
same through signature validation against colliding key tags. Patched
resolvers defend with *per-query work limits* — BIND's limit on NSEC3
iterations-per-fetch, Unbound's suspicion counters, the validation caps
every vendor shipped in February 2024. This module models that defence
layer so the reproduction can measure resolver availability (not just
classification verdicts) under the adversarial zones in
:mod:`repro.testbed.adversary`.

Three cooperating mechanisms:

- :class:`WorkBudget` — a per-query ledger charged with NSEC3 hash cost
  and signature verifications (piggybacking on the process-global
  :data:`repro.dnssec.costmodel.meter` via its listener hook) plus
  upstream fetch fan-out and delegation-chain depth. Any ceiling breach
  raises :class:`BudgetExceeded` and the resolver answers SERVFAIL with
  an Extended DNS Error.
- a **watchdog deadline** on the simulated clock: sessions that burn
  wall-clock (retries, timeouts, slow upstreams) past ``deadline_ms``
  are aborted with :class:`DeadlineExceeded`.
- :class:`AdmissionController` — bounds *concurrent* in-flight work on
  the resolver. Arrival times come from the sim-kernel session frames
  (PR 3's ``CampaignExecutor``), so at concurrency 1 queries never
  overlap and nothing is shed; at higher widths the controller
  deterministically REFUSEs (or serves stale from cache, RFC 8767
  style) once ``max_inflight`` sessions overlap.

Queries execute synchronously in Python even when the campaign executor
overlaps them on the simulated clock, so one module-level budget stack is
race-free at any concurrency — and nested upstream work (including the
authoritative server's own NSEC3 hashing during an exchange) is charged
to the client query that caused it, matching ``bench_cve_cost``'s
definition of per-query cost.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from repro import obs
from repro.dns.edns import EDE_OTHER, EDE_UNSUPPORTED_NSEC3_ITERATIONS
from repro.dnssec.costmodel import meter


class ResourceGuardError(Exception):
    """A per-query resource ceiling was breached; abort with SERVFAIL."""

    def __init__(self, kind, detail, ede_code=EDE_OTHER):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail
        self.ede_code = ede_code


class BudgetExceeded(ResourceGuardError):
    """A work ceiling (hash cost, verifications, fan-out, depth) was hit."""


class DeadlineExceeded(ResourceGuardError):
    """The watchdog deadline on the simulated clock expired mid-query."""

    def __init__(self, detail):
        super().__init__("deadline", detail, ede_code=EDE_OTHER)


@dataclass(frozen=True)
class GuardConfig:
    """Ceilings for one resolver profile; ``None`` disables a dimension.

    ``max_hash_cost`` is in SHA-1 compressions (the unit
    :data:`~repro.dnssec.costmodel.meter` charges), so one NSEC3 hash at
    N iterations with an S-byte salt costs roughly
    ``(N + 1) * blocks(20 + S)`` toward the ceiling.
    """

    name: str = "guarded"
    max_hash_cost: int = 8_000
    max_signature_verifications: int = 32
    max_upstream_queries: int = 64
    max_chain_depth: int = 16
    deadline_ms: float = 4_000.0
    max_inflight: int = 16
    serve_stale: bool = True


#: Named profiles for the CLI and tests. "guarded" mirrors the posture of
#: a post-February-2024 resolver (per-fetch NSEC3/validation caps);
#: "strict" is an aggressive small-budget profile that trips even on the
#: mid-range it-N probe zones; "deadline-only" bounds nothing but time.
GUARD_PROFILES = {
    "guarded": GuardConfig(name="guarded"),
    "strict": GuardConfig(
        name="strict",
        max_hash_cost=2_000,
        max_signature_verifications=16,
        max_upstream_queries=40,
        max_chain_depth=12,
        deadline_ms=2_000.0,
        max_inflight=8,
    ),
    "deadline-only": GuardConfig(
        name="deadline-only",
        max_hash_cost=None,
        max_signature_verifications=None,
        max_upstream_queries=None,
        max_chain_depth=None,
        deadline_ms=4_000.0,
        max_inflight=None,
    ),
}


class WorkBudget:
    """The work ledger for one client query against a :class:`GuardConfig`.

    Hash and verification charges are read as deltas of the global meter
    (captured at construction); upstream fan-out is counted explicitly by
    the iterative engine. :meth:`check` runs after every charge — the
    overshoot past a ceiling is therefore bounded by a single operation
    (one NSEC3 hash, one verification, one upstream exchange).
    """

    __slots__ = (
        "config",
        "clock",
        "started_ms",
        "_base_sha1",
        "_base_verify",
        "upstream_queries",
    )

    def __init__(self, config, clock):
        self.config = config
        self.clock = clock
        self.started_ms = clock()
        self._base_sha1 = meter.sha1_compressions
        self._base_verify = meter.signature_verifications
        self.upstream_queries = 0

    @property
    def hash_cost(self):
        """SHA-1 compressions charged since this query started."""
        return meter.sha1_compressions - self._base_sha1

    @property
    def verifications(self):
        return meter.signature_verifications - self._base_verify

    @property
    def elapsed_ms(self):
        return self.clock() - self.started_ms

    def check(self):
        """Raise when any ceiling is breached (called after every charge)."""
        config = self.config
        if config.max_hash_cost is not None and self.hash_cost > config.max_hash_cost:
            raise BudgetExceeded(
                "hash_cost",
                f"{self.hash_cost} SHA-1 compressions > {config.max_hash_cost}",
                ede_code=EDE_UNSUPPORTED_NSEC3_ITERATIONS,
            )
        if (
            config.max_signature_verifications is not None
            and self.verifications > config.max_signature_verifications
        ):
            raise BudgetExceeded(
                "verifications",
                f"{self.verifications} signature verifications "
                f"> {config.max_signature_verifications}",
            )
        if config.deadline_ms is not None and self.elapsed_ms > config.deadline_ms:
            raise DeadlineExceeded(
                f"{self.elapsed_ms:.0f}ms elapsed > {config.deadline_ms:.0f}ms"
            )

    def charge_upstream(self):
        """Count one upstream exchange; enforce the fan-out ceiling."""
        self.upstream_queries += 1
        config = self.config
        if (
            config.max_upstream_queries is not None
            and self.upstream_queries > config.max_upstream_queries
        ):
            raise BudgetExceeded(
                "upstream_fanout",
                f"{self.upstream_queries} upstream queries "
                f"> {config.max_upstream_queries}",
            )
        self.check()

    def charge_depth(self, depth):
        """Enforce the delegation-chain depth ceiling at *depth*."""
        if self.config.max_chain_depth is not None and depth > self.config.max_chain_depth:
            raise BudgetExceeded(
                "chain_depth",
                f"chain depth {depth} > {self.config.max_chain_depth}",
            )


#: The active-budget stack. Client queries nest (a guarded resolver could
#: in principle sit upstream of another), so this is a stack, not a slot;
#: the *top* budget is the one charged — it owns the innermost query.
_active = []


def current():
    """The innermost active :class:`WorkBudget`, or None."""
    return _active[-1] if _active else None


def _on_meter_charge():
    _active[-1].check()


class _BudgetScope:
    """Context manager pushing a budget and wiring the meter listener."""

    __slots__ = ("budget",)

    def __init__(self, budget):
        self.budget = budget

    def __enter__(self):
        _active.append(self.budget)
        meter.listener = _on_meter_charge
        return self.budget

    def __exit__(self, *exc):
        _active.pop()
        if not _active:
            meter.listener = None
        return False


def activate(budget):
    """``with activate(budget):`` — charge all metered work to *budget*."""
    return _BudgetScope(budget)


class AdmissionController:
    """Deterministic in-flight bound on the simulated clock.

    Completed queries report their busy interval ``[start, end]``; an
    arrival at time *t* first retires intervals ending at or before *t*,
    then is shed when ``capacity`` intervals are still open. Because the
    campaign executor runs sessions synchronously in submission order,
    the controller sees arrivals in a deterministic order for a given
    seed and concurrency — shedding decisions are reproducible.
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self._busy = []  # min-heap of interval end times (ms)
        self.admitted = 0
        self.shed = 0

    def in_flight(self, now):
        while self._busy and self._busy[0] <= now:
            heapq.heappop(self._busy)
        return len(self._busy)

    def admit(self, now):
        """True when a query arriving at *now* may start work."""
        if self.capacity is not None and self.in_flight(now) >= self.capacity:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    def complete(self, start_ms, end_ms):
        """Record the busy interval of an admitted query."""
        heapq.heappush(self._busy, max(end_ms, start_ms))


class ConcurrencyGate:
    """Real-time admission control for the socket-service frontends.

    :class:`AdmissionController` infers in-flight work from *completed*
    busy intervals — sound on the simulated clock, where the campaign
    executor records every completion before the next arrival, but
    meaningless under wall-clock concurrency, where admitted queries are
    still running when the next datagram lands. The gate counts
    explicitly instead: :meth:`admit` reserves a slot, :meth:`release`
    returns it, and an arrival finding no free slot is shed. Thread-safe
    (the service's event loop admits while its worker thread releases).
    """

    __slots__ = ("capacity", "inflight", "admitted", "shed", "peak", "_lock")

    def __init__(self, capacity):
        self.capacity = capacity
        self.inflight = 0
        self.admitted = 0
        self.shed = 0
        self.peak = 0
        self._lock = threading.Lock()

    def admit(self):
        """Reserve a work slot; False means the arrival must be shed."""
        with self._lock:
            if self.capacity is not None and self.inflight >= self.capacity:
                self.shed += 1
                return False
            self.inflight += 1
            self.admitted += 1
            if self.inflight > self.peak:
                self.peak = self.inflight
            return True

    def release(self):
        """Return a previously admitted slot."""
        with self._lock:
            self.inflight -= 1


# -- metrics ------------------------------------------------------------------


def count_budget_exceeded(resolver, kind):
    if not obs.enabled:
        return
    obs.registry.counter(
        "repro_guard_budget_exceeded_total",
        "Queries aborted by the resource guard, by resolver and ceiling.",
        labelnames=("resolver", "kind"),
    ).labels(resolver=resolver, kind=kind).inc()


def count_shed(resolver, action):
    if not obs.enabled:
        return
    obs.registry.counter(
        "repro_guard_shed_total",
        "Queries shed by the admission controller ('refused' or 'stale').",
        labelnames=("resolver", "action"),
    ).labels(resolver=resolver, action=action).inc()
