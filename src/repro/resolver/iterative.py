"""Iterative (recursive-resolver-side) resolution: walking delegations.

Starting from root hints, follows referrals down the tree, collecting the
zone-cut evidence (NS, DS, glue) that DNSSEC chain validation needs. The
validating layer (:mod:`repro.resolver.validating`) wraps this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.flags import Flag
from repro.dns.message import make_query
from repro.dns.name import Name, root
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.net.transport import QueryFailure, Transport
from repro.resolver import guard as resource_guard
from repro.resolver.cache import Cache, delegation_key

#: Maximum delegations followed for one query (sanity bound).
MAX_REFERRALS = 24
#: Maximum nested resolutions (glueless NS, CNAME restarts).
MAX_RECURSION = 8


@dataclass
class ZoneCut:
    """Evidence about one delegation on the path to the answer."""

    zone: Name
    parent: Name
    ns_rrset: object = None
    ds_rrset: object = None
    ds_rrsigs: object = None
    #: NSEC3/NSEC records from a referral without DS (absence proof).
    ds_denial: list = field(default_factory=list)
    addresses: list = field(default_factory=list)


@dataclass
class ResolutionOutcome:
    """Everything learned while resolving one question."""

    qname: Name
    qtype: int
    response: object = None
    #: The zone the final (authoritative) response came from.
    auth_zone: Name = None
    #: Zone cuts crossed, in root-to-leaf order (excluding the root itself).
    cuts: list = field(default_factory=list)
    failure: str = ""

    @property
    def ok(self):
        """True when some authoritative response was obtained."""
        return self.response is not None


class IterativeResolver:
    """A non-validating iterative resolution engine with an infra cache."""

    def __init__(self, network, source_ip, root_addresses, cache=None, retries=1):
        self.network = network
        self.transport = Transport(network, source_ip, retries=retries)
        self.root_addresses = list(root_addresses)
        self.cache = cache if cache is not None else Cache(clock=lambda: network.clock_ms)
        self.queries_sent = 0

    # -- public API ------------------------------------------------------------

    def resolve(self, qname, qtype, want_dnssec=True, _depth=0):
        """Iteratively resolve (qname, qtype) from the root hints down."""
        qname = Name.from_text(qname)
        outcome = ResolutionOutcome(qname=qname, qtype=int(qtype))
        if _depth > MAX_RECURSION:
            outcome.failure = "recursion depth exceeded"
            return outcome

        current_zone = root
        servers = list(self.root_addresses)
        cuts, start_zone = self._cached_start(qname, qtype)
        if cuts is not None:
            outcome.cuts = list(cuts)
            current_zone = start_zone
            servers = list(outcome.cuts[-1].addresses) if outcome.cuts else servers

        for __ in range(MAX_REFERRALS):
            response = self._query_any(servers, qname, qtype, want_dnssec)
            if response is None:
                outcome.failure = f"no servers for {current_zone} answered"
                return outcome
            if response.rcode not in (Rcode.NOERROR, Rcode.NXDOMAIN):
                outcome.failure = f"upstream rcode {Rcode.to_text(response.rcode)}"
                outcome.response = response
                outcome.auth_zone = current_zone
                return outcome

            if self._is_referral(response):
                cut = self._extract_cut(response, current_zone, want_dnssec, _depth)
                if cut is None:
                    outcome.failure = "referral without usable name servers"
                    return outcome
                outcome.cuts.append(cut)
                self._cache_cut(cut)
                current_zone = cut.zone
                servers = cut.addresses
                continue

            outcome.response = response
            outcome.auth_zone = self._zone_of_answer(response, current_zone)
            return outcome

        outcome.failure = "referral loop"
        return outcome

    # -- internals ---------------------------------------------------------------

    def _cached_start(self, qname, qtype):
        """Find the deepest cached delegation that is an ancestor of qname.

        DS records live in the *parent* zone, so a DS query must not start
        at (or below) the queried name's own zone cut.
        """
        best = None
        chain = []
        candidate = qname
        ancestors = []
        while True:
            ancestors.append(candidate)
            if candidate.is_root():
                break
            candidate = candidate.parent()
        # ancestors: qname ... root; walk from root downward.
        for name in reversed(ancestors):
            if name.is_root():
                continue
            if int(qtype) == int(RdataType.DS) and name == qname:
                break
            entry = self.cache.get(delegation_key(name))
            if entry is None:
                break
            chain.append(entry.value)
            best = name
        if not chain:
            return None, root
        return chain, best

    def _cache_cut(self, cut):
        self.cache.put(delegation_key(cut.zone), cut, ttl_seconds=3600)

    def _query_any(self, servers, qname, qtype, want_dnssec):
        budget = resource_guard.current()
        for server in servers:
            if budget is not None:
                # Fan-out ceiling plus a watchdog check before each
                # exchange (transport retries advance the sim clock);
                # ResourceGuardError unwinds to the validating layer.
                budget.charge_upstream()
            self.queries_sent += 1
            try:
                message = make_query(
                    qname, qtype, want_dnssec=want_dnssec, recursion_desired=False
                )
                return self.transport.query(server, message)
            except QueryFailure:
                continue
        return None

    @staticmethod
    def _is_referral(response):
        if response.has_flag(Flag.AA):
            return False
        if response.answer:
            return False
        return any(
            int(rrset.rrtype) == int(RdataType.NS) for rrset in response.authority
        )

    def _extract_cut(self, response, parent_zone, want_dnssec, depth):
        ns_rrset = None
        for rrset in response.authority:
            if int(rrset.rrtype) == int(RdataType.NS):
                ns_rrset = rrset
                break
        if ns_rrset is None:
            return None
        cut = ZoneCut(zone=ns_rrset.name, parent=parent_zone, ns_rrset=ns_rrset)
        for rrset in response.authority:
            if rrset.name == cut.zone and int(rrset.rrtype) == int(RdataType.DS):
                cut.ds_rrset = rrset
            elif int(rrset.rrtype) == int(RdataType.RRSIG) and rrset.name == cut.zone:
                if any(r.type_covered == int(RdataType.DS) for r in rrset):
                    cut.ds_rrsigs = rrset
            elif int(rrset.rrtype) in (int(RdataType.NSEC3), int(RdataType.NSEC)):
                cut.ds_denial.append(rrset)
            elif int(rrset.rrtype) == int(RdataType.RRSIG):
                cut.ds_denial.append(rrset)
        addresses = []
        for rrset in response.additional:
            if int(rrset.rrtype) in (int(RdataType.A), int(RdataType.AAAA)):
                addresses.extend(str(r.address) for r in rrset)
        if not addresses:
            addresses = self._resolve_glueless(ns_rrset, depth)
        cut.addresses = addresses
        return cut

    def _resolve_glueless(self, ns_rrset, depth):
        """Resolve NS target addresses when the referral carried no glue."""
        addresses = []
        for ns in list(ns_rrset)[:3]:
            for rrtype in (RdataType.A, RdataType.AAAA):
                sub = self.resolve(ns.target, rrtype, want_dnssec=False, _depth=depth + 1)
                if sub.ok and sub.response.rcode == Rcode.NOERROR:
                    for rrset in sub.response.answer:
                        if int(rrset.rrtype) == int(rrtype):
                            addresses.extend(str(r.address) for r in rrset)
            if addresses:
                break
        return addresses

    @staticmethod
    def _zone_of_answer(response, current_zone):
        """Infer the answering zone: SOA owner, else the RRSIG signer.

        A server hosting both sides of a cut answers child data without a
        referral, so the walk's notion of the current zone can be an
        ancestor of the zone that actually signed the answer.
        """
        for rrset in response.authority:
            if int(rrset.rrtype) == int(RdataType.SOA):
                return rrset.name
        for rrset in response.answer:
            if int(rrset.rrtype) == int(RdataType.RRSIG) and rrset.rdatas:
                return rrset.rdatas[0].signer
        return current_zone
