"""CPU cost accounting for DNSSEC operations.

CVE-2023-50868 exploits the fact that validating one negative answer can
require hashing several names with thousands of SHA-1 iterations each.
Gruza et al. measured up to a 72× increase in resolver CPU instructions;
our reproduction counts the primitive operations directly and the
``bench_cve_cost`` benchmark reports the same amplification shape.

A single process-global :data:`meter` is used; benchmarks snapshot and
reset it around measured regions. Counters:

- ``sha1_compressions`` — SHA-1 block-compression invocations, the unit
  that actually scales with NSEC3 iterations (one hash call over a short
  input costs one compression);
- ``nsec3_hashes`` — complete NSEC3 hash computations (name → digest);
- ``signature_verifications`` — public-key verifications performed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class CostSnapshot:
    """An immutable view of the meter at one point in time."""

    sha1_compressions: int = 0
    nsec3_hashes: int = 0
    signature_verifications: int = 0

    def __sub__(self, other):
        return CostSnapshot(
            self.sha1_compressions - other.sha1_compressions,
            self.nsec3_hashes - other.nsec3_hashes,
            self.signature_verifications - other.signature_verifications,
        )


@dataclass
class CostMeter:
    """Accumulates DNSSEC operation counts."""

    sha1_compressions: int = 0
    nsec3_hashes: int = 0
    signature_verifications: int = 0
    #: Optional zero-arg callback fired after every charge. The resolver
    #: resource guard (:mod:`repro.resolver.guard`) installs its per-query
    #: budget check here while a budget is active; it stays None otherwise
    #: so the uninstrumented hot path pays one attribute test per charge.
    listener: object = None
    #: Optional list capturing each charge as a ``(sha1, nsec3, verify)``
    #: delta tuple. The authoritative answer cache records the charge
    #: sequence of a response build here and :meth:`replay`\ s it on a
    #: cache hit, so budgets trip at exactly the same points whether the
    #: response was computed or served from cache.
    recorder: object = None

    def charge_nsec3(self, iterations, input_length, salt_length):
        """Account one full NSEC3 hash of a name.

        Each of the ``iterations + 1`` SHA-1 invocations hashes at most
        ``name + salt`` (≤ 255 + 255) bytes; we charge one compression per
        64-byte block including padding, mirroring real CPU cost.
        """
        first_blocks = _sha1_blocks(input_length + salt_length)
        later_blocks = _sha1_blocks(20 + salt_length)
        blocks = first_blocks + iterations * later_blocks
        self.sha1_compressions += blocks
        self.nsec3_hashes += 1
        if self.recorder is not None:
            self.recorder.append((blocks, 1, 0))
        if self.listener is not None:
            self.listener()

    def charge_verification(self):
        self.signature_verifications += 1
        if self.recorder is not None:
            self.recorder.append((0, 0, 1))
        if self.listener is not None:
            self.listener()

    def replay(self, charges):
        """Re-apply a recorded charge sequence, op by op.

        A cache hit charges the model exactly as the original computation
        did — same per-operation deltas, same order, listener fired after
        each — so guard overshoot bounds and trip points are preserved.
        Replayed charges are themselves recorded when a recorder is
        active (a cached answer nested inside another recorded build).
        """
        recorder = self.recorder
        listener_active = self.listener is not None
        for sha1, nsec3, verify in charges:
            self.sha1_compressions += sha1
            self.nsec3_hashes += nsec3
            self.signature_verifications += verify
            if recorder is not None:
                recorder.append((sha1, nsec3, verify))
            if listener_active:
                self.listener()

    def snapshot(self):
        return CostSnapshot(
            self.sha1_compressions, self.nsec3_hashes, self.signature_verifications
        )

    @contextmanager
    def suspended(self):
        """Charges inside the block leave no trace on the meter.

        Used by the build-cache warm pass: it pre-computes signing work
        the campaign will charge at query time (cold materialisation or
        cache load — identical either way), so charging it at build time
        too would double-count. Listener and recorder are detached for
        the duration and the counters are restored on exit.
        """
        saved = (
            self.sha1_compressions,
            self.nsec3_hashes,
            self.signature_verifications,
            self.listener,
            self.recorder,
        )
        self.listener = None
        self.recorder = None
        try:
            yield self
        finally:
            (
                self.sha1_compressions,
                self.nsec3_hashes,
                self.signature_verifications,
                self.listener,
                self.recorder,
            ) = saved

    def reset(self):
        self.sha1_compressions = 0
        self.nsec3_hashes = 0
        self.signature_verifications = 0


def _sha1_blocks(message_length):
    """Number of 64-byte compression blocks to hash *message_length* bytes."""
    # Padding adds 1 byte of 0x80 plus an 8-byte length field.
    return (message_length + 1 + 8 + 63) // 64


#: The process-global meter charged by nsec3hash and the validator.
meter = CostMeter()
