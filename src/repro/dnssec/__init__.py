"""DNSSEC engine: NSEC3 hashing, RRset signing, validation, denial proofs.

The modules here implement the mechanisms whose *parameters* the paper
measures:

- :mod:`repro.dnssec.nsec3hash` — the iterated, salted SHA-1 of RFC 5155,
  instrumented by :mod:`repro.dnssec.costmodel` so the CVE-2023-50868
  amplification benchmark can count real work;
- :mod:`repro.dnssec.signer` / :mod:`repro.dnssec.validator` — RRSIG
  computation and verification over canonical RRsets (RFC 4034 §6);
- :mod:`repro.dnssec.denial` — closest-encloser proofs: what an
  authoritative server must assemble for a negative answer and what a
  validating resolver must hash to check it.
"""

from repro.dnssec.nsec3hash import nsec3_hash, nsec3_hash_name, nsec3_owner_name
from repro.dnssec.signer import sign_rrset, rrsig_signed_data
from repro.dnssec.validator import (
    ValidationContext,
    ValidationResult,
    SecurityStatus,
    validate_rrset,
)
from repro.dnssec.costmodel import CostMeter, meter

__all__ = [
    "nsec3_hash",
    "nsec3_hash_name",
    "nsec3_owner_name",
    "sign_rrset",
    "rrsig_signed_data",
    "ValidationContext",
    "ValidationResult",
    "SecurityStatus",
    "validate_rrset",
    "CostMeter",
    "meter",
]
