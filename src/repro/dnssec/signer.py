"""RRSIG generation over canonical RRsets (RFC 4034 §3.1.8).

The signed data is::

    RRSIG_RDATA (sans signature) | RR(1) | RR(2) | ...

where each RR is ``owner | type | class | original-TTL | RDLENGTH | RDATA``
in canonical form (names lowercased, rdata in canonical order, no
compression).
"""

from __future__ import annotations

import struct

from repro.dns.name import Name
from repro.dns.rdata.dnssec import RRSIG
from repro.dns.rrset import RRset
from repro.dns.types import RdataType

#: Default validity window for freshly produced signatures (30 days).
DEFAULT_LIFETIME = 30 * 24 * 3600

#: A stable epoch used as "now" across the simulation so that signatures
#: remain comparable between runs. Benchmarks and zones may override it.
SIMULATION_NOW = 1_700_000_000


def canonical_rrset_wire(rrset, original_ttl=None, owner=None):
    """The canonical ``RR(1)..RR(n)`` concatenation for signing.

    Memoized on the RRset: a campaign validates the same RRset object
    against many signatures (and many resolvers validate shared zone
    data), so the sort-and-concatenate work is paid once per
    ``(owner, TTL, rdata count)``. :meth:`RRset.add` invalidates; the
    rdata count in the key covers direct ``rdatas`` edits.
    """
    owner_wire = (owner or rrset.name).canonical_wire()
    ttl = rrset.ttl if original_ttl is None else original_ttl
    memo_key = (owner_wire, ttl, len(rrset.rdatas))
    cached = rrset.canonical_memo_get(memo_key)
    if cached is not None:
        return cached
    header_fixed = struct.pack(
        "!HHI", int(rrset.rrtype), int(rrset.rdclass), ttl
    )
    chunks = []
    for rdata in sorted(rrset.rdatas, key=lambda r: r.canonical_wire()):
        body = rdata.canonical_wire()
        chunks.append(owner_wire + header_fixed + struct.pack("!H", len(body)) + body)
    wire = b"".join(chunks)
    rrset.canonical_memo_put(memo_key, wire)
    return wire


def rrsig_signed_owner(rrsig, rrset):
    """The owner name the signature covers.

    When the RRSIG ``labels`` field is smaller than the owner's label
    count, the RRset was synthesised from a wildcard: the signed owner is
    reconstructed as ``*.<rightmost labels>`` (RFC 4035 §5.3.2).
    """
    owner = rrset.name
    if rrsig.labels < owner.label_count:
        __, suffix = owner.split(rrsig.labels)
        owner = suffix.prepend(b"*")
    return owner


def rrsig_signed_data(rrsig, rrset):
    """The exact byte string an RRSIG's signature covers."""
    return rrsig.rdata_prefix() + canonical_rrset_wire(
        rrset, rrsig.original_ttl, owner=rrsig_signed_owner(rrsig, rrset)
    )


def _owner_labels_for_rrsig(name):
    """The RRSIG ``labels`` field: label count ignoring a leading wildcard."""
    labels = name.labels
    if labels and labels[0] == b"*":
        return len(labels) - 1
    return len(labels)


def sign_rrset(
    rrset,
    keypair,
    signer,
    inception=None,
    expiration=None,
    now=SIMULATION_NOW,
    sign=None,
):
    """Produce an :class:`RRSIG` rdata over *rrset* with *keypair*.

    *signer* is the zone apex name owning the DNSKEY. By default the
    validity window is centred on the simulation clock; pass explicit
    *inception*/*expiration* to create expired or future signatures (the
    ``expired`` control zones of the paper are made this way). *sign*
    optionally overrides the signing primitive with a pre-bound closure
    (``KeyPair.bulk_signer``) so whole-zone loops skip the per-call
    algorithm dispatch and RSA setup; it must produce byte-identical
    signatures to ``keypair.sign``.
    """
    signer = Name.from_text(signer)
    if inception is None:
        inception = now - 3600
    if expiration is None:
        expiration = now + DEFAULT_LIFETIME
    template = RRSIG(
        type_covered=int(rrset.rrtype),
        algorithm=keypair.algorithm,
        labels=_owner_labels_for_rrsig(rrset.name),
        original_ttl=rrset.ttl,
        expiration=expiration,
        inception=inception,
        key_tag=keypair.key_tag,
        signer=signer,
        signature=b"",
    )
    signed = rrsig_signed_data(template, rrset)
    signature = (sign or keypair.sign)(signed)
    return RRSIG(
        template.type_covered,
        template.algorithm,
        template.labels,
        template.original_ttl,
        template.expiration,
        template.inception,
        template.key_tag,
        signer,
        signature,
    )


def make_rrsig_rrset(rrset, rrsigs):
    """Wrap RRSIG rdatas in an RRset parallel to the covered *rrset*."""
    return RRset(rrset.name, RdataType.RRSIG, rrset.ttl, list(rrsigs), rrset.rdclass)
