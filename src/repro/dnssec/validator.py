"""DNSSEC validation primitives (RFC 4035 §5).

This module validates individual RRsets against DNSKEY RRsets and DNSKEYs
against DS records; walking the chain of trust from the root anchor is the
resolver's job (:mod:`repro.resolver.validating`), which composes these
primitives.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro import fastpath, obs
from repro.crypto.keys import (
    SUPPORTED_ALGORITHMS,
    ds_matches_dnskey,
    verify_signature,
)
from repro.dns.name import Name
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.dnssec.signer import (
    SIMULATION_NOW,
    canonical_rrset_wire,
    rrsig_signed_owner,
)


class SecurityStatus(enum.Enum):
    """RFC 4035 §4.3 security states."""

    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"
    INDETERMINATE = "indeterminate"


@dataclass
class ValidationResult:
    """Outcome of validating one RRset."""

    status: SecurityStatus
    reason: str = ""
    rrsig: object = None

    @property
    def secure(self):
        return self.status is SecurityStatus.SECURE


@dataclass
class ValidationContext:
    """Validation-time configuration shared across one resolution."""

    now: int = SIMULATION_NOW
    #: Names of zones whose keys have already been chained to the trust
    #: anchor, mapped to their validated DNSKEY RRsets.
    trusted_keys: dict = field(default_factory=dict)

    def trust_zone_keys(self, zone, dnskey_rrset):
        self.trusted_keys[Name.from_text(zone)] = dnskey_rrset

    def keys_for(self, zone):
        return self.trusted_keys.get(Name.from_text(zone))


class VerificationMemo:
    """A bounded memo of RRSIG verification outcomes.

    Verification is a pure function of the signed data, the signature,
    and the public key; the study re-verifies the very same RRSIGs
    thousands of times across resolvers. The key is
    ``(RRSIG_RDATA prefix, signature, sha256(canonical RRset wire),
    DNSKEY wire)`` — a key rollover changes the DNSKEY component and an
    RRset change the digest, so both force a real verification. Temporal
    validity is checked by the callers *before* the memo is consulted,
    and :meth:`repro.dnssec.costmodel.CostMeter.charge_verification` is
    charged on hit and miss alike, so guard budgets and cost experiments
    never see the memo. Bounded: the table is cleared, not grown, past
    the limit (deterministic, like the NSEC3 digest memo).
    """

    __slots__ = ("limit", "entries", "hits", "misses", "evictions")

    def __init__(self, limit=65536):
        self.limit = limit
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self):
        self.entries.clear()


#: The process-global verification memo (cleared by tests as needed).
verification_memo = VerificationMemo()


#: Resolved per-outcome memo/status counters for the validation hot path.
_VALIDATOR_CHILDREN = obs.ChildCache()


def _count_memo(outcome):
    key = ("memo", outcome)
    child = _VALIDATOR_CHILDREN.get(obs.registry, key)
    if child is None:
        child = _VALIDATOR_CHILDREN.put(
            key,
            obs.registry.counter(
                "repro_validator_memo_events_total",
                "RRSIG verification memo events, by outcome.",
                labelnames=("outcome",),
            ).labels(outcome=outcome),
        )
    child.inc()


def _rrsig_verifies(rrsig, rrset, dnskey):
    """One metered signature verification, through the bounded memo.

    The caller has already charged the meter; this only decides whether
    the bignum math actually runs.
    """
    if not fastpath.enabled("validator_memo"):
        payload = canonical_rrset_wire(
            rrset, rrsig.original_ttl, owner=rrsig_signed_owner(rrsig, rrset)
        )
        return verify_signature(
            dnskey, rrsig.rdata_prefix() + payload, rrsig.signature
        )
    memo = verification_memo
    payload = canonical_rrset_wire(
        rrset, rrsig.original_ttl, owner=rrsig_signed_owner(rrsig, rrset)
    )
    key = (
        rrsig.rdata_prefix(),
        rrsig.signature,
        hashlib.sha256(payload).digest(),
        dnskey.to_wire(),
    )
    cached = memo.entries.get(key)
    if cached is not None:
        memo.hits += 1
        if obs.enabled:
            _count_memo("hit")
        return cached
    memo.misses += 1
    result = verify_signature(
        dnskey, rrsig.rdata_prefix() + payload, rrsig.signature
    )
    if len(memo.entries) >= memo.limit:
        memo.clear()
        memo.evictions += 1
        if obs.enabled:
            _count_memo("eviction")
    memo.entries[key] = result
    if obs.enabled:
        _count_memo("miss")
    return result


def _candidate_keys(dnskey_rrset, rrsig):
    for dnskey in dnskey_rrset:
        if (
            dnskey.protocol == 3
            and dnskey.is_zone_key()
            and not dnskey.is_revoked()
            and dnskey.algorithm == rrsig.algorithm
            and dnskey.key_tag() == rrsig.key_tag
        ):
            yield dnskey


def validate_rrset(rrset, rrsig_rrset, dnskey_rrset, now=SIMULATION_NOW):
    """Validate *rrset* against one of the signatures in *rrsig_rrset*.

    Returns SECURE on the first signature that verifies; BOGUS if
    signatures exist but none verifies (or all are outside their validity
    window); INDETERMINATE when no covering signature is present at all.
    """
    if not obs.enabled:
        return _validate_rrset(rrset, rrsig_rrset, dnskey_rrset, now)
    if obs.tracing:
        # Span attributes (name/type rendering) are only worth computing
        # when a tracer is actually recording.
        with obs.span(
            "dnssec.validate_rrset",
            owner=str(rrset.name),
            type=RdataType.to_text(rrset.rrtype),
        ) as span:
            result = _validate_rrset(rrset, rrsig_rrset, dnskey_rrset, now)
            span.set(status=result.status.value)
    else:
        result = _validate_rrset(rrset, rrsig_rrset, dnskey_rrset, now)
    status = result.status.value
    key = ("status", status)
    child = _VALIDATOR_CHILDREN.get(obs.registry, key)
    if child is None:
        child = _VALIDATOR_CHILDREN.put(
            key,
            obs.registry.counter(
                "repro_rrset_validations_total",
                "RRset validation outcomes, by security status.",
                labelnames=("status",),
            ).labels(status=status),
        )
    child.inc()
    return result


def _validate_rrset(rrset, rrsig_rrset, dnskey_rrset, now):
    if rrsig_rrset is None or not rrsig_rrset:
        return ValidationResult(
            SecurityStatus.INDETERMINATE, "no RRSIG covering the RRset"
        )
    relevant = [
        sig for sig in rrsig_rrset if sig.type_covered == int(rrset.rrtype)
    ]
    if not relevant:
        return ValidationResult(
            SecurityStatus.INDETERMINATE,
            f"no RRSIG covers type {RdataType.to_text(rrset.rrtype)}",
        )
    last_reason = "no signature verified"
    for rrsig in relevant:
        if not rrset.name.is_subdomain_of(rrsig.signer):
            last_reason = "signer is not an ancestor of the owner name"
            continue
        if rrsig.labels > rrset.name.label_count:
            last_reason = "RRSIG labels field exceeds owner label count"
            continue
        if not rrsig.is_valid_at(now):
            last_reason = (
                "signature outside validity window "
                f"({rrsig.inception}..{rrsig.expiration}, now {now})"
            )
            continue
        if rrsig.algorithm not in SUPPORTED_ALGORITHMS:
            last_reason = f"unsupported algorithm {rrsig.algorithm}"
            continue
        for dnskey in _candidate_keys(dnskey_rrset, rrsig):
            meter.charge_verification()
            if _rrsig_verifies(rrsig, rrset, dnskey):
                return ValidationResult(SecurityStatus.SECURE, rrsig=rrsig)
        last_reason = "signature did not verify under any candidate key"
    return ValidationResult(SecurityStatus.BOGUS, last_reason)


def validate_dnskey_with_ds(zone, dnskey_rrset, dnskey_rrsigs, ds_rrset, now=SIMULATION_NOW):
    """Establish trust in a zone's DNSKEY RRset via a validated DS RRset.

    Per RFC 4035 §5.2: some DS must match some SEP-capable DNSKEY, and the
    DNSKEY RRset must be self-signed by that key. *dnskey_rrsigs* is the
    RRSIG RRset accompanying the DNSKEY RRset.
    """
    zone = Name.from_text(zone)
    if ds_rrset is None or not ds_rrset:
        return ValidationResult(
            SecurityStatus.INDETERMINATE, "no DS RRset for the zone"
        )
    for ds in ds_rrset:
        for dnskey in dnskey_rrset:
            if not ds_matches_dnskey(zone, ds, dnskey):
                continue
            result = _validate_self_signature(dnskey_rrset, dnskey_rrsigs, dnskey, now)
            if result.secure:
                return result
    return ValidationResult(
        SecurityStatus.BOGUS, "no DS record matches a self-signing DNSKEY"
    )


def _validate_self_signature(dnskey_rrset, dnskey_rrsigs, anchor_key, now):
    if dnskey_rrsigs is None or not dnskey_rrsigs:
        return ValidationResult(
            SecurityStatus.INDETERMINATE, "DNSKEY RRset carries no RRSIGs"
        )
    for rrsig in dnskey_rrsigs:
        if rrsig.type_covered != int(RdataType.DNSKEY):
            continue
        if rrsig.key_tag != anchor_key.key_tag():
            continue
        if not rrsig.is_valid_at(now):
            continue
        meter.charge_verification()
        if _rrsig_verifies(rrsig, dnskey_rrset, anchor_key):
            return ValidationResult(SecurityStatus.SECURE, rrsig=rrsig)
    return ValidationResult(
        SecurityStatus.BOGUS, "DNSKEY RRset not signed by the DS-matched key"
    )
