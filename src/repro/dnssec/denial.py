"""NSEC3 authenticated denial of existence (RFC 5155 §7/§8).

Shared logic between the authoritative server (which must *assemble*
closest-encloser proofs for negative answers) and the validating resolver
(which must *verify* them — the CPU work CVE-2023-50868 amplifies).

Verification of an NXDOMAIN requires hashing, per candidate ancestor, the
query name with the zone's (iterations, salt): exactly why RFC 9276 caps
iterations at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.base32 import b32hex_decode
from repro.dns.name import Name
from repro.dns.types import RdataType
from repro.dnssec.nsec3hash import nsec3_hash


class DenialError(ValueError):
    """Raised when an NSEC3 proof is structurally unusable."""


def hash_covers(owner_hash, next_hash, target_hash):
    """True iff *target_hash* falls in the open interval (owner, next).

    The NSEC3 chain is circular: the last record points back to the first,
    so when ``owner >= next`` the interval wraps around zero.
    """
    if owner_hash < next_hash:
        return owner_hash < target_hash < next_hash
    # Wrap-around record (or a single-record chain covering everything else).
    return target_hash > owner_hash or target_hash < next_hash


def owner_hash_of(nsec3_owner, zone):
    """Decode the hashed first label of an NSEC3 record owner name."""
    zone = Name.from_text(zone)
    if not nsec3_owner.is_subdomain_of(zone) or nsec3_owner.label_count != zone.label_count + 1:
        raise DenialError(
            f"NSEC3 owner {nsec3_owner} is not a direct child of zone {zone}"
        )
    try:
        label = nsec3_owner.labels[0].decode("ascii", "strict")
        return b32hex_decode(label)
    except (ValueError, UnicodeDecodeError) as exc:
        raise DenialError(f"bad NSEC3 owner label {nsec3_owner.labels[0]!r}") from exc


@dataclass
class Nsec3ProofRecord:
    """One NSEC3 record prepared for proof checking."""

    owner_hash: bytes
    rdata: object  # repro.dns.rdata.nsec3.NSEC3

    def matches(self, target_hash):
        return self.owner_hash == target_hash

    def covers(self, target_hash):
        return hash_covers(self.owner_hash, self.rdata.next_hash, target_hash)


def collect_proof_records(message_section, zone):
    """Extract NSEC3 records from an authority section, keyed for proofs.

    Raises :class:`DenialError` if records disagree on parameters, which
    RFC 5155 §8.2 forbids (the paper's §4.1 consistency filter).
    """
    records = []
    params = None
    for rrset in message_section:
        if int(rrset.rrtype) != int(RdataType.NSEC3):
            continue
        for rdata in rrset:
            if params is None:
                params = rdata.parameters()
            elif params != rdata.parameters():
                raise DenialError("inconsistent NSEC3 parameters in one response")
            records.append(
                Nsec3ProofRecord(owner_hash_of(rrset.name, zone), rdata)
            )
    return records, params


@dataclass
class Nsec3Proof:
    """Verification outcome for a negative response."""

    valid: bool
    reason: str = ""
    closest_encloser: Name | None = None
    opt_out: bool = False
    iterations: int = 0
    salt: bytes = b""


def verify_nxdomain(qname, zone, records, params, require_wildcard=True):
    """Verify the RFC 5155 §8.4 closest-encloser proof for an NXDOMAIN.

    *records* and *params* come from :func:`collect_proof_records`. The
    verifier hashes each candidate ancestor of *qname* (charging the cost
    meter) until it finds the closest encloser, then checks that the next
    closer name and the wildcard at the closest encloser are both covered.
    Opt-out no-DS proofs (§7.2.4) set ``require_wildcard=False``: only the
    closest-provable-encloser part applies there.
    """
    qname = Name.from_text(qname)
    zone = Name.from_text(zone)
    if params is None or not records:
        return Nsec3Proof(False, "no NSEC3 records in the response")
    hash_algorithm, iterations, salt = params
    if not qname.is_subdomain_of(zone):
        return Nsec3Proof(False, f"{qname} is not within zone {zone}")

    def hash_name(name):
        return nsec3_hash(name.canonical_wire(), salt, iterations, hash_algorithm)

    # Walk ancestors from qname towards the apex; the first (deepest) one
    # whose hash MATCHES an NSEC3 record is the closest encloser
    # (RFC 5155 §8.3). The next-closer covering check below is what makes
    # a replayed shallower match unusable.
    closest_encloser = None
    next_closer = None
    chain = []
    candidate = qname
    while candidate.label_count >= zone.label_count:
        chain.append(candidate)
        if candidate.is_root():
            break
        candidate = candidate.parent()
    # chain[0] = qname ... chain[-1] = zone apex
    for index, ancestor in enumerate(chain):
        digest = hash_name(ancestor)
        if any(record.matches(digest) for record in records):
            if index == 0:
                return Nsec3Proof(
                    False,
                    "query name itself matched an NSEC3 record (name exists)",
                    closest_encloser=ancestor,
                    iterations=iterations,
                    salt=salt,
                )
            closest_encloser = ancestor
            next_closer = chain[index - 1]
            break
    if closest_encloser is None:
        return Nsec3Proof(
            False,
            "no closest encloser: not even the zone apex has a matching NSEC3",
            iterations=iterations,
            salt=salt,
        )
    next_closer_hash = hash_name(next_closer)
    covering = [record for record in records if record.covers(next_closer_hash)]
    if not covering:
        return Nsec3Proof(
            False,
            "next closer name not covered by any NSEC3 record",
            closest_encloser=closest_encloser,
            iterations=iterations,
            salt=salt,
        )
    opt_out = any(record.rdata.opt_out for record in covering)

    if not require_wildcard:
        return Nsec3Proof(
            True,
            closest_encloser=closest_encloser,
            opt_out=opt_out,
            iterations=iterations,
            salt=salt,
        )
    wildcard = closest_encloser.prepend(b"*")
    wildcard_hash = hash_name(wildcard)
    wildcard_denied = any(record.covers(wildcard_hash) for record in records)
    if not wildcard_denied:
        return Nsec3Proof(
            False,
            "wildcard at the closest encloser not proven absent",
            closest_encloser=closest_encloser,
            opt_out=opt_out,
            iterations=iterations,
            salt=salt,
        )
    return Nsec3Proof(
        True,
        closest_encloser=closest_encloser,
        opt_out=opt_out,
        iterations=iterations,
        salt=salt,
    )


def verify_nodata(qname, qtype, zone, records, params):
    """Verify an RFC 5155 §8.5 NODATA proof: matching NSEC3 lacking *qtype*."""
    qname = Name.from_text(qname)
    if params is None or not records:
        return Nsec3Proof(False, "no NSEC3 records in the response")
    hash_algorithm, iterations, salt = params
    digest = nsec3_hash(qname.canonical_wire(), salt, iterations, hash_algorithm)
    for record in records:
        if record.matches(digest):
            if record.rdata.covers_type(qtype):
                return Nsec3Proof(
                    False,
                    f"NSEC3 bitmap asserts type {RdataType.to_text(qtype)} exists",
                    iterations=iterations,
                    salt=salt,
                )
            if record.rdata.covers_type(RdataType.CNAME):
                return Nsec3Proof(
                    False,
                    "NSEC3 bitmap asserts a CNAME exists at the name",
                    iterations=iterations,
                    salt=salt,
                )
            return Nsec3Proof(True, iterations=iterations, salt=salt)
    # Fall back to an opt-out style proof: covered, not matched (insecure
    # delegation may exist below an opt-out span). The wildcard denial is
    # not part of this proof (RFC 5155 §7.2.4).
    nx = verify_nxdomain(qname, zone, records, params, require_wildcard=False)
    if nx.valid and nx.opt_out:
        return Nsec3Proof(
            True,
            "covered by an opt-out span (insecure delegation possible)",
            closest_encloser=nx.closest_encloser,
            opt_out=True,
            iterations=iterations,
            salt=salt,
        )
    return Nsec3Proof(
        False,
        "no NSEC3 record matches the query name",
        iterations=iterations,
        salt=salt,
    )
