"""The NSEC3 hash of RFC 5155 §5.

::

    IH(salt, x, 0)   = H(x || salt)
    IH(salt, x, k)   = H(IH(salt, x, k-1) || salt)   for k > 0
    hash(name)       = IH(salt, canonical-owner-name, iterations)

with H = SHA-1 (the only algorithm ever defined). The *iterations* field
counts **additional** applications — the value RFC 9276 Item 2 requires to
be zero, and the lever of CVE-2023-50868.
"""

from __future__ import annotations

import hashlib

from repro import fastpath, obs
from repro.dns.base32 import b32hex_encode
from repro.dns.name import Name
from repro.dns.rdata.nsec3 import NSEC3_HASH_SHA1
from repro.dnssec.costmodel import meter


class UnknownHashAlgorithm(ValueError):
    """Raised for NSEC3 hash algorithm numbers other than 1 (SHA-1)."""


#: Digest memo, one table per chain parameters: the scan hot path hashes
#: the same probe owners against the same ``(salt, iterations)`` over and
#: over (closest-encloser proofs re-hash the zone apex for every query).
#: Bounded: tables are cleared, not grown, past the limits.
_MEMO_PARAMS_LIMIT = 64
_MEMO_OWNERS_LIMIT = 4096
_digest_memo = {}


def _compute_iterated_digest(owner_wire, salt, iterations):
    """The raw RFC 5155 iterated hash, no caching (benchmarks use this)."""
    digest = hashlib.sha1(owner_wire + salt).digest()
    for __ in range(iterations):
        digest = hashlib.sha1(digest + salt).digest()
    return digest


def _iterated_digest(owner_wire, salt, iterations):
    # The meter charges full price even on a memo hit: the cost model
    # describes a resolver that recomputes per query (the CVE-2023-50868
    # exposure), while the memo only saves *our* host CPU.
    if not fastpath.enabled("nsec3_memo"):
        digest = _compute_iterated_digest(owner_wire, salt, iterations)
        meter.charge_nsec3(iterations, len(owner_wire), len(salt))
        return digest
    table_key = (salt, iterations)
    table = _digest_memo.get(table_key)
    if table is None:
        if len(_digest_memo) >= _MEMO_PARAMS_LIMIT:
            _digest_memo.clear()
        table = _digest_memo.setdefault(table_key, {})
    digest = table.get(owner_wire)
    if digest is None:
        digest = _compute_iterated_digest(owner_wire, salt, iterations)
        if len(table) >= _MEMO_OWNERS_LIMIT:
            table.clear()
        table[owner_wire] = digest
    meter.charge_nsec3(iterations, len(owner_wire), len(salt))
    return digest


def nsec3_hash(owner_wire, salt, iterations, hash_algorithm=NSEC3_HASH_SHA1):
    """Hash a canonical wire-format owner name; returns the 20-byte digest."""
    if hash_algorithm != NSEC3_HASH_SHA1:
        raise UnknownHashAlgorithm(f"NSEC3 hash algorithm {hash_algorithm}")
    if not obs.enabled:
        return _iterated_digest(owner_wire, salt, iterations)
    if obs.tracing:
        with obs.span("nsec3.hash", iterations=iterations):
            digest = _iterated_digest(owner_wire, salt, iterations)
    else:
        digest = _iterated_digest(owner_wire, salt, iterations)
    obs.profiler.observe_iterations(iterations)
    return digest


def nsec3_hash_batch(owner_wires, salt, iterations, hash_algorithm=NSEC3_HASH_SHA1):
    """Hash many owner names under one ``(salt, iterations)`` setting.

    Chain builds hash every name in a zone exactly once, so the
    per-owner memo buys nothing there; this single pass instead hoists
    the per-hash setup — one salt-extended iteration buffer reused
    across the whole batch, the SHA-1 constructor bound once — and
    charges the meter per name exactly as :func:`nsec3_hash` would, so
    the cost model cannot tell the batch from N single calls. Callers
    fall back to :func:`nsec3_hash` when span tracing is on (the batch
    emits no per-hash spans).
    """
    if hash_algorithm != NSEC3_HASH_SHA1:
        raise UnknownHashAlgorithm(f"NSEC3 hash algorithm {hash_algorithm}")
    sha1 = hashlib.sha1
    charge = meter.charge_nsec3
    observe = obs.profiler.observe_iterations if obs.enabled else None
    salt_length = len(salt)
    digests = []
    buffer = bytearray(20 + salt_length)
    buffer[20:] = salt
    for wire in owner_wires:
        digest = sha1(wire + salt).digest()
        for __ in range(iterations):
            buffer[:20] = digest
            digest = sha1(buffer).digest()
        digests.append(digest)
        charge(iterations, len(wire), salt_length)
        if observe is not None:
            observe(iterations)
    return digests


def nsec3_hash_name(name, salt, iterations, hash_algorithm=NSEC3_HASH_SHA1):
    """Hash a :class:`~repro.dns.name.Name` (canonicalised first)."""
    name = Name.from_text(name)
    return nsec3_hash(name.canonical_wire(), salt, iterations, hash_algorithm)


def nsec3_owner_name(name, zone, salt, iterations, hash_algorithm=NSEC3_HASH_SHA1):
    """The NSEC3 record owner for *name* in *zone*: ``base32hex(hash).zone``."""
    digest = nsec3_hash_name(name, salt, iterations, hash_algorithm)
    zone = Name.from_text(zone)
    return zone.prepend(b32hex_encode(digest).encode("ascii"))
