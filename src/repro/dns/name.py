"""Domain names: parsing, wire format, canonical form and canonical ordering.

Implements the subset of RFC 1035 name handling that DNS messages need, plus
the DNSSEC canonical form and canonical total order of RFC 4034 §6, which
NSEC chains and RRSIG computation depend on.

Names are immutable and hashable. Internally a name is a tuple of labels
(``bytes``), *not* including a trailing empty label; the root name is the
empty tuple. All names in this library are absolute.
"""

from __future__ import annotations

import functools

MAX_NAME_WIRE_LENGTH = 255
MAX_LABEL_LENGTH = 63


class NameError_(ValueError):
    """Raised for malformed domain names (bad labels, overlong names)."""


#: Bounded intern table for trusted (wire-parsed or sliced) names, keyed
#: on the exact-case label tuple. A campaign decodes the same handful of
#: owner names millions of times; interning lets every parse share one
#: object and therefore one ``_key``/``_hash``/``_canonical_wire`` memo.
#: Cleared outright at the cap — same policy as the other memo tables.
_INTERN = {}
_INTERN_LIMIT = 65536


def _validate_labels(labels):
    total = 1  # trailing root length byte
    for label in labels:
        if not label:
            raise NameError_("empty interior label")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"label exceeds 63 octets: {label[:16]!r}...")
        total += len(label) + 1
    if total > MAX_NAME_WIRE_LENGTH:
        raise NameError_(f"name exceeds 255 octets in wire form ({total})")


@functools.total_ordering
class Name:
    """An absolute domain name.

    >>> Name.from_text("WWW.Example.COM.").to_text()
    'www.example.com.'
    >>> Name.from_text("a.example.") < Name.from_text("Z.example.")
    True
    """

    __slots__ = ("labels", "_hash", "_canonical_key", "_canonical_wire", "_text")

    def __init__(self, labels):
        labels = tuple(bytes(label) for label in labels)
        _validate_labels(labels)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_canonical_key", None)
        object.__setattr__(self, "_canonical_wire", None)
        object.__setattr__(self, "_text", None)

    def __setattr__(self, name, value):
        raise AttributeError("Name objects are immutable")

    # -- constructors ----------------------------------------------------

    @classmethod
    def _trusted(cls, labels):
        """Wrap a label tuple whose invariants are already established.

        Wire parsing enforces the label/name length limits while reading
        and slicing an existing name can only shrink it, so both skip the
        per-label revalidation — name construction is the decode path's
        hottest allocation. *labels* must be a tuple of bytes.

        Trusted names are interned (bounded) so repeated parses of the
        same owner share one object and its memoized canonical forms.
        """
        self = _INTERN.get(labels)
        if self is not None:
            return self
        self = object.__new__(cls)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_canonical_key", None)
        object.__setattr__(self, "_canonical_wire", None)
        object.__setattr__(self, "_text", None)
        if len(_INTERN) >= _INTERN_LIMIT:
            _INTERN.clear()
        _INTERN[labels] = self
        return self

    @classmethod
    def from_text(cls, text):
        """Parse a presentation-format name.

        Accepts both absolute (``example.com.``) and relative-looking
        (``example.com``) spellings; both produce an absolute name. Supports
        ``\\ddd`` decimal escapes and ``\\X`` character escapes.
        """
        if isinstance(text, Name):
            return text
        if text in (".", ""):
            return cls(())
        labels = []
        current = bytearray()
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch == "\\":
                if i + 3 < n + 1 and text[i + 1 : i + 4].isdigit():
                    code = int(text[i + 1 : i + 4])
                    if code > 255:
                        raise NameError_(f"escape out of range in {text!r}")
                    current.append(code)
                    i += 4
                elif i + 1 < n:
                    current.append(ord(text[i + 1]))
                    i += 2
                else:
                    raise NameError_(f"trailing backslash in {text!r}")
            elif ch == ".":
                if not current:
                    raise NameError_(f"empty label in {text!r}")
                labels.append(bytes(current))
                current = bytearray()
                i += 1
            else:
                current.append(ord(ch))
                i += 1
        if current:
            labels.append(bytes(current))
        return cls(labels)

    @classmethod
    def from_labels(cls, *labels):
        """Build a name from text or bytes labels, most-specific first."""
        encoded = [
            label.encode("ascii") if isinstance(label, str) else bytes(label)
            for label in labels
        ]
        return cls(encoded)

    # -- rendering -------------------------------------------------------

    def to_text(self):
        """Presentation format, always with a trailing dot (memoized)."""
        text = self._text
        if text is not None:
            return text
        if not self.labels:
            return "."
        parts = []
        for label in self.labels:
            chunk = []
            for byte in label:
                ch = chr(byte)
                if ch in ".\\":
                    chunk.append("\\" + ch)
                elif 0x21 <= byte <= 0x7E:
                    chunk.append(ch)
                else:
                    chunk.append(f"\\{byte:03d}")
            parts.append("".join(chunk))
        text = ".".join(parts) + "."
        object.__setattr__(self, "_text", text)
        return text

    def __str__(self):
        return self.to_text()

    def __repr__(self):
        return f"Name({self.to_text()!r})"

    # -- wire format -----------------------------------------------------

    def to_wire(self):
        """Uncompressed wire form (compression lives in the writer)."""
        out = bytearray()
        for label in self.labels:
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    def canonical_wire(self):
        """RFC 4034 §6.2 canonical form: wire format with labels lowercased.

        Memoized: signing, NSEC3 hashing, and DS digests all canonicalise
        the same owner names over and over, and names are immutable.
        """
        wire = self._canonical_wire
        if wire is None:
            out = bytearray()
            for label in self.labels:
                out.append(len(label))
                out.extend(label.lower())
            out.append(0)
            wire = bytes(out)
            object.__setattr__(self, "_canonical_wire", wire)
        return wire

    # -- structure -------------------------------------------------------

    @property
    def label_count(self):
        """Number of labels, excluding root (the RRSIG ``labels`` field uses this)."""
        return len(self.labels)

    def is_root(self):
        return not self.labels

    def parent(self):
        """Immediate parent. The root's parent raises :class:`NameError_`."""
        if not self.labels:
            raise NameError_("the root name has no parent")
        return Name._trusted(self.labels[1:])

    def split(self, depth):
        """Return ``(prefix, suffix)`` where *suffix* keeps *depth* labels.

        >>> Name.from_text("a.b.example.com.").split(2)
        (Name('a.b.'), Name('example.com.'))
        """
        if depth > len(self.labels):
            raise NameError_(f"cannot keep {depth} labels of {self}")
        cut = len(self.labels) - depth
        return Name._trusted(self.labels[:cut]), Name._trusted(self.labels[cut:])

    def relativize_labels(self, suffix):
        """Labels of *self* below *suffix* (``self`` must be under *suffix*)."""
        if not self.is_subdomain_of(suffix):
            raise NameError_(f"{self} is not under {suffix}")
        return self.labels[: len(self.labels) - len(suffix.labels)]

    def concatenate(self, suffix):
        """Append *suffix*'s labels below the root, i.e. ``self + suffix``."""
        return Name(self.labels + suffix.labels)

    def prepend(self, label):
        """Return a child name with *label* (str or bytes) prepended."""
        if isinstance(label, str):
            label = label.encode("ascii")
        return Name((bytes(label),) + self.labels)

    def is_subdomain_of(self, other):
        """True if *self* equals *other* or lies beneath it (case-insensitive)."""
        other_key = other._key()
        return self._key()[: len(other_key)] == other_key

    def common_ancestor(self, other):
        """Deepest name that is an ancestor of both (possibly the root)."""
        shared = []
        for mine, theirs in zip(reversed(self.labels), reversed(other.labels)):
            if mine.lower() != theirs.lower():
                break
            shared.append(mine)
        shared.reverse()
        return Name._trusted(tuple(shared))

    # -- ordering & equality ----------------------------------------------

    def _key(self):
        """RFC 4034 §6.1 canonical order key: reversed lowercased labels.

        Memoized: this key backs equality, ordering, hashing, and subtree
        containment — the busiest comparisons in the scan engine.
        """
        key = self._canonical_key
        if key is None:
            key = tuple(label.lower() for label in reversed(self.labels))
            object.__setattr__(self, "_canonical_key", key)
        return key

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Name):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other):
        if not isinstance(other, Name):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self):
        cached = self._hash
        if cached is None:
            cached = hash(self._key())
            object.__setattr__(self, "_hash", cached)
        return cached


#: The root name (``"."``).
root = Name(())
