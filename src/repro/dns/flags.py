"""DNS header flag bits (RFC 1035, RFC 4035)."""

import enum


class Flag(enum.IntFlag):
    """Header flag bits in their wire positions within the 16-bit flags word.

    ``AD`` (Authenticated Data) and ``CD`` (Checking Disabled) come from
    DNSSEC (RFC 4035 §3.1.6, §3.2.2) and are central to the paper's
    resolver measurements: a validating resolver sets AD on responses whose
    data it has cryptographically verified.
    """

    QR = 0x8000
    AA = 0x0400
    TC = 0x0200
    RD = 0x0100
    RA = 0x0080
    AD = 0x0020
    CD = 0x0010

    @classmethod
    def to_text(cls, flags):
        """Render set flags as space-separated mnemonics, e.g. ``"QR RD RA AD"``."""
        names = [f.name for f in cls if flags & f]
        return " ".join(names)
