"""DNS type, class, and opcode registries (RFC 1035, RFC 4034, RFC 5155)."""

import enum


class RdataType(enum.IntEnum):
    """Resource record TYPE values used by this implementation."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    NSEC3 = 50
    NSEC3PARAM = 51
    OPT = 41
    AXFR = 252
    CAA = 257
    ANY = 255

    @classmethod
    def from_text(cls, text):
        """Parse a mnemonic like ``"NSEC3PARAM"`` or ``"TYPE65534"``."""
        text = text.strip().upper()
        if text.startswith("TYPE") and text[4:].isdigit():
            return int(text[4:])
        try:
            return cls[text]
        except KeyError:
            raise ValueError(f"unknown RR type mnemonic: {text!r}") from None

    @classmethod
    def to_text(cls, value):
        """Render a TYPE value as its mnemonic, or ``TYPEnnn`` if unknown.

        Memoised — type rendering sits on per-record telemetry paths and
        the value space is bounded (16 bits).
        """
        try:
            return _TYPE_TEXT[value]
        except KeyError:
            pass
        try:
            text = cls(value).name
        except ValueError:
            text = f"TYPE{int(value)}"
        _TYPE_TEXT[value] = text
        return text


_TYPE_TEXT = {}


class RdataClass(enum.IntEnum):
    """Resource record CLASS values."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255


class Opcode(enum.IntEnum):
    """DNS message opcodes."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5
