"""Base32hex without padding (RFC 4648 §7), as used for NSEC3 owner names.

NSEC3 (RFC 5155 §3.3) encodes hashed owner names with the *extended hex*
alphabet ``0-9A-V`` so that the encoding preserves the hash ordering, which
the NSEC3 chain relies on. Python's :mod:`base64` module offers b32hexencode
only from 3.10 and always pads; DNS never pads, so we implement it directly.
"""

_ALPHABET = "0123456789ABCDEFGHIJKLMNOPQRSTUV"
_DECODE = {ch: i for i, ch in enumerate(_ALPHABET)}
_DECODE.update({ch.lower(): i for i, ch in enumerate(_ALPHABET)})


def b32hex_encode(data):
    """Encode *data* as unpadded base32hex text (uppercase)."""
    bits = 0
    acc = 0
    out = []
    for byte in data:
        acc = (acc << 8) | byte
        bits += 8
        while bits >= 5:
            bits -= 5
            out.append(_ALPHABET[(acc >> bits) & 0x1F])
    if bits:
        out.append(_ALPHABET[(acc << (5 - bits)) & 0x1F])
    return "".join(out)


def b32hex_decode(text):
    """Decode unpadded base32hex text (case-insensitive) to bytes."""
    acc = 0
    bits = 0
    out = bytearray()
    for ch in text:
        if ch == "=":
            continue
        try:
            value = _DECODE[ch]
        except KeyError:
            raise ValueError(f"invalid base32hex character: {ch!r}") from None
        acc = (acc << 5) | value
        bits += 5
        if bits >= 8:
            bits -= 8
            out.append((acc >> bits) & 0xFF)
    return bytes(out)
