"""TXT rdata (RFC 1035 §3.3.14)."""

from __future__ import annotations

from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType


@register(RdataType.TXT)
class TXT(Rdata):
    """A text record holding one or more character-strings (≤255 bytes each)."""

    __slots__ = ("strings",)

    def __init__(self, strings):
        if isinstance(strings, (str, bytes)):
            strings = [strings]
        encoded = tuple(
            s.encode("utf-8") if isinstance(s, str) else bytes(s) for s in strings
        )
        for chunk in encoded:
            if len(chunk) > 255:
                raise ValueError("TXT character-string exceeds 255 bytes")
        if not encoded:
            encoded = (b"",)
        object.__setattr__(self, "strings", encoded)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        for chunk in self.strings:
            writer.write_u8(len(chunk))
            writer.write(chunk)

    @classmethod
    def from_wire(cls, reader, rdlength):
        end = reader.pos + rdlength
        strings = []
        while reader.pos < end:
            length = reader.read_u8()
            strings.append(reader.read(length))
        return cls(strings)

    def to_text(self):
        rendered = []
        for chunk in self.strings:
            escaped = chunk.decode("utf-8", "backslashreplace").replace('"', '\\"')
            rendered.append(f'"{escaped}"')
        return " ".join(rendered)

    @classmethod
    def from_text(cls, text):
        text = text.strip()
        strings = []
        if '"' in text:
            current = None
            for ch in text:
                if ch == '"':
                    if current is None:
                        current = []
                    else:
                        strings.append("".join(current))
                        current = None
                elif current is not None:
                    current.append(ch)
        else:
            strings = text.split()
        return cls(strings or [""])
