"""SOA rdata (RFC 1035 §3.3.13)."""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType
from repro.dns.wire import Writer


@register(RdataType.SOA)
class SOA(Rdata):
    """A start-of-authority record.

    The ``minimum`` field doubles as the negative-caching TTL (RFC 2308),
    which the resolver cache honours for NXDOMAIN/NODATA entries.
    """

    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(self, mname, rname, serial, refresh, retry, expire, minimum):
        object.__setattr__(self, "mname", Name.from_text(mname))
        object.__setattr__(self, "rname", Name.from_text(rname))
        object.__setattr__(self, "serial", int(serial))
        object.__setattr__(self, "refresh", int(refresh))
        object.__setattr__(self, "retry", int(retry))
        object.__setattr__(self, "expire", int(expire))
        object.__setattr__(self, "minimum", int(minimum))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)

    @classmethod
    def from_wire(cls, reader, rdlength):
        mname = reader.read_name()
        rname = reader.read_name()
        serial = reader.read_u32()
        refresh = reader.read_u32()
        retry = reader.read_u32()
        expire = reader.read_u32()
        minimum = reader.read_u32()
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self):
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        if len(fields) != 7:
            raise ValueError(f"SOA needs 7 fields, got {len(fields)}")
        return cls(*fields)

    def canonical_wire(self):
        writer = Writer(enable_compression=False)
        writer.write(self.mname.canonical_wire())
        writer.write(self.rname.canonical_wire())
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)
        return writer.getvalue()
