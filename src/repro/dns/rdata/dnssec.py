"""DNSSEC rdata types: DNSKEY, RRSIG, DS (RFC 4034)."""

from __future__ import annotations

import base64
import calendar
import time

from repro.dns.name import Name
from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType
from repro.dns.wire import Writer

#: DNSKEY flag bit: Zone Key (bit 7).
FLAG_ZONE = 0x0100
#: DNSKEY flag bit: Secure Entry Point, i.e. a KSK (bit 15).
FLAG_SEP = 0x0001
#: DNSKEY flag bit: Revoked (RFC 5011).
FLAG_REVOKE = 0x0080

#: DNSSEC protocol field; always 3 (RFC 4034 §2.1.2).
PROTOCOL_DNSSEC = 3


def sigtime_to_text(value):
    """Render an RRSIG time as ``YYYYMMDDHHmmSS`` (RFC 4034 §3.2)."""
    return time.strftime("%Y%m%d%H%M%S", time.gmtime(value))


def sigtime_from_text(text):
    """Parse ``YYYYMMDDHHmmSS`` or a raw integer into epoch seconds."""
    text = text.strip()
    if len(text) == 14 and text.isdigit():
        parsed = time.strptime(text, "%Y%m%d%H%M%S")
        return calendar.timegm(parsed)
    return int(text)


@register(RdataType.DNSKEY)
class DNSKEY(Rdata):
    """A public key record.

    ``flags`` distinguishes zone-signing keys (256) from key-signing keys
    (257 = zone + SEP). ``algorithm`` selects the signature scheme; this
    library implements RSASHA1 (5), RSASHA256 (8), and ECDSAP256SHA256 (13)
    in :mod:`repro.crypto`.
    """

    __slots__ = ("flags", "protocol", "algorithm", "key", "_wire", "_key_tag")

    def __init__(self, flags, protocol, algorithm, key):
        object.__setattr__(self, "flags", int(flags))
        object.__setattr__(self, "protocol", int(protocol))
        object.__setattr__(self, "algorithm", int(algorithm))
        object.__setattr__(self, "key", bytes(key))
        object.__setattr__(self, "_wire", None)
        object.__setattr__(self, "_key_tag", None)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def is_zone_key(self):
        return bool(self.flags & FLAG_ZONE)

    def is_sep(self):
        return bool(self.flags & FLAG_SEP)

    def is_revoked(self):
        return bool(self.flags & FLAG_REVOKE)

    def to_wire(self):
        # Memoized: the validator rebuilds the wire form for every key-tag
        # comparison and memo key; DNSKEYs are immutable.
        wire = self._wire
        if wire is None:
            wire = super().to_wire()
            object.__setattr__(self, "_wire", wire)
        return wire

    def key_tag(self):
        """RFC 4034 Appendix B key tag over the wire-format rdata (memoized)."""
        tag = self._key_tag
        if tag is not None:
            return tag
        wire = self.to_wire()
        acc = 0
        for index, byte in enumerate(wire):
            acc += byte << 8 if index % 2 == 0 else byte
        acc += (acc >> 16) & 0xFFFF
        tag = acc & 0xFFFF
        object.__setattr__(self, "_key_tag", tag)
        return tag

    def write_wire(self, writer):
        writer.write_u16(self.flags)
        writer.write_u8(self.protocol)
        writer.write_u8(self.algorithm)
        writer.write(self.key)

    @classmethod
    def from_wire(cls, reader, rdlength):
        flags = reader.read_u16()
        protocol = reader.read_u8()
        algorithm = reader.read_u8()
        key = reader.read(rdlength - 4)
        return cls(flags, protocol, algorithm, key)

    def to_text(self):
        key64 = base64.b64encode(self.key).decode("ascii")
        return f"{self.flags} {self.protocol} {self.algorithm} {key64}"

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        flags, protocol, algorithm = fields[:3]
        key = base64.b64decode("".join(fields[3:]))
        return cls(int(flags), int(protocol), int(algorithm), key)


@register(RdataType.RRSIG)
class RRSIG(Rdata):
    """A signature over an RRset (RFC 4034 §3)."""

    __slots__ = (
        "type_covered",
        "algorithm",
        "labels",
        "original_ttl",
        "expiration",
        "inception",
        "key_tag",
        "signer",
        "signature",
        "_prefix",
        "_rdata_wire",
    )

    def __init__(
        self,
        type_covered,
        algorithm,
        labels,
        original_ttl,
        expiration,
        inception,
        key_tag,
        signer,
        signature,
    ):
        object.__setattr__(self, "type_covered", int(type_covered))
        object.__setattr__(self, "algorithm", int(algorithm))
        object.__setattr__(self, "labels", int(labels))
        object.__setattr__(self, "original_ttl", int(original_ttl))
        object.__setattr__(self, "expiration", int(expiration))
        object.__setattr__(self, "inception", int(inception))
        object.__setattr__(self, "key_tag", int(key_tag))
        object.__setattr__(self, "signer", Name.from_text(signer))
        object.__setattr__(self, "signature", bytes(signature))
        object.__setattr__(self, "_prefix", None)
        object.__setattr__(self, "_rdata_wire", None)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def rdata_prefix(self):
        """Wire-format rdata with the signature field empty.

        This is the ``RRSIG_RDATA`` prefix over which signatures are
        computed (RFC 4034 §3.1.8.1); the signer name is in canonical
        form. Memoized: the validator rebuilds it per verification.
        """
        prefix = self._prefix
        if prefix is None:
            writer = Writer(enable_compression=False)
            writer.write_u16(self.type_covered)
            writer.write_u8(self.algorithm)
            writer.write_u8(self.labels)
            writer.write_u32(self.original_ttl)
            writer.write_u32(self.expiration)
            writer.write_u32(self.inception)
            writer.write_u16(self.key_tag)
            writer.write(self.signer.canonical_wire())
            prefix = writer.getvalue()
            object.__setattr__(self, "_prefix", prefix)
        return prefix

    def is_valid_at(self, now):
        """True when *now* falls inside the inception/expiration window."""
        return self.inception <= now <= self.expiration

    def write_wire(self, writer):
        # The signer name is never compressed (RFC 4034 §3.1.7), so the
        # rdata is position-independent and its encoding is memoized —
        # every signed response re-emits the same RRSIG rdatas. Unlike
        # :meth:`rdata_prefix` this preserves the signer's original case.
        wire = self._rdata_wire
        if wire is None:
            sub = Writer(enable_compression=False)
            sub.write_u16(self.type_covered)
            sub.write_u8(self.algorithm)
            sub.write_u8(self.labels)
            sub.write_u32(self.original_ttl)
            sub.write_u32(self.expiration)
            sub.write_u32(self.inception)
            sub.write_u16(self.key_tag)
            sub.write(self.signer.to_wire())
            sub.write(self.signature)
            wire = sub.getvalue()
            object.__setattr__(self, "_rdata_wire", wire)
        writer.write(wire)

    @classmethod
    def from_wire(cls, reader, rdlength):
        end = reader.pos + rdlength
        type_covered = reader.read_u16()
        algorithm = reader.read_u8()
        labels = reader.read_u8()
        original_ttl = reader.read_u32()
        expiration = reader.read_u32()
        inception = reader.read_u32()
        key_tag = reader.read_u16()
        signer = reader.read_name()
        signature = reader.read(end - reader.pos)
        return cls(
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            signature,
        )

    def to_text(self):
        sig64 = base64.b64encode(self.signature).decode("ascii")
        return (
            f"{RdataType.to_text(self.type_covered)} {self.algorithm} "
            f"{self.labels} {self.original_ttl} "
            f"{sigtime_to_text(self.expiration)} {sigtime_to_text(self.inception)} "
            f"{self.key_tag} {self.signer.to_text()} {sig64}"
        )

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        if len(fields) < 9:
            raise ValueError(f"RRSIG needs ≥9 fields, got {len(fields)}")
        return cls(
            RdataType.from_text(fields[0]),
            int(fields[1]),
            int(fields[2]),
            int(fields[3]),
            sigtime_from_text(fields[4]),
            sigtime_from_text(fields[5]),
            int(fields[6]),
            fields[7],
            base64.b64decode("".join(fields[8:])),
        )


#: DS digest type codes (RFC 4034 / RFC 4509).
DS_DIGEST_SHA1 = 1
DS_DIGEST_SHA256 = 2


@register(RdataType.DS)
class DS(Rdata):
    """A delegation signer record: a digest of a child DNSKEY."""

    __slots__ = ("key_tag", "algorithm", "digest_type", "digest")

    def __init__(self, key_tag, algorithm, digest_type, digest):
        object.__setattr__(self, "key_tag", int(key_tag))
        object.__setattr__(self, "algorithm", int(algorithm))
        object.__setattr__(self, "digest_type", int(digest_type))
        object.__setattr__(self, "digest", bytes(digest))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write_u16(self.key_tag)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.digest_type)
        writer.write(self.digest)

    @classmethod
    def from_wire(cls, reader, rdlength):
        key_tag = reader.read_u16()
        algorithm = reader.read_u8()
        digest_type = reader.read_u8()
        digest = reader.read(rdlength - 4)
        return cls(key_tag, algorithm, digest_type, digest)

    def to_text(self):
        return (
            f"{self.key_tag} {self.algorithm} {self.digest_type} "
            f"{self.digest.hex().upper()}"
        )

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        key_tag, algorithm, digest_type = fields[:3]
        digest = bytes.fromhex("".join(fields[3:]))
        return cls(int(key_tag), int(algorithm), int(digest_type), digest)
