"""NSEC3 and NSEC3PARAM rdata (RFC 5155).

These are the records at the heart of the paper. An NSEC3 record's rdata
carries the hash parameters (algorithm, flags with the opt-out bit,
*additional iterations*, salt), the hashed next owner, and a type bitmap.
NSEC3PARAM mirrors the parameters so that authoritative servers know which
chain to serve.

RFC 9276 mandates ``iterations == 0`` (Item 2) and recommends an empty salt
(Item 3); this module only *represents* the records — the compliance logic
lives in :mod:`repro.core`.
"""

from __future__ import annotations

from repro.dns.base32 import b32hex_decode, b32hex_encode
from repro.dns.bitmap import bitmap_to_text, decode_bitmap, encode_bitmap
from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType

#: The only hash algorithm defined for NSEC3 (SHA-1, RFC 5155 §11).
NSEC3_HASH_SHA1 = 1

#: NSEC3 flags field: opt-out bit (RFC 5155 §3.1.2.1).
NSEC3_FLAG_OPTOUT = 0x01


def _encode_params(writer, hash_algorithm, flags, iterations, salt):
    writer.write_u8(hash_algorithm)
    writer.write_u8(flags)
    writer.write_u16(iterations)
    writer.write_u8(len(salt))
    writer.write(salt)


def _salt_to_text(salt):
    return salt.hex().upper() if salt else "-"


def _salt_from_text(text):
    return b"" if text == "-" else bytes.fromhex(text)


@register(RdataType.NSEC3)
class NSEC3(Rdata):
    """A hashed authenticated denial record."""

    __slots__ = (
        "hash_algorithm", "flags", "iterations", "salt", "next_hash", "types",
        "_wire",
    )

    def __init__(self, hash_algorithm, flags, iterations, salt, next_hash, types):
        iterations = int(iterations)
        if not 0 <= iterations <= 0xFFFF:
            raise ValueError(f"iterations out of range: {iterations}")
        salt = bytes(salt)
        if len(salt) > 255:
            raise ValueError("salt exceeds 255 bytes")
        object.__setattr__(self, "hash_algorithm", int(hash_algorithm))
        object.__setattr__(self, "flags", int(flags))
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "salt", salt)
        object.__setattr__(self, "next_hash", bytes(next_hash))
        object.__setattr__(self, "types", tuple(sorted(set(int(t) for t in types))))
        object.__setattr__(self, "_wire", None)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    @property
    def opt_out(self):
        """True when the opt-out flag (Item 4/5 of RFC 9276) is set."""
        return bool(self.flags & NSEC3_FLAG_OPTOUT)

    def covers_type(self, rrtype):
        return int(rrtype) in self.types

    def parameters(self):
        """The ``(hash_algorithm, iterations, salt)`` triple for comparisons."""
        return (self.hash_algorithm, self.iterations, self.salt)

    def write_wire(self, writer):
        # Rdata contains no domain name, so the wire form is position-
        # independent: memoized — zone chain entries are re-encoded into
        # every denial response (the bitmap encoding dominated encode time).
        wire = self._wire
        if wire is None:
            out = bytearray()
            out.append(self.hash_algorithm & 0xFF)
            out.append(self.flags & 0xFF)
            out += self.iterations.to_bytes(2, "big")
            out.append(len(self.salt))
            out += self.salt
            out.append(len(self.next_hash))
            out += self.next_hash
            out += encode_bitmap(self.types)
            wire = bytes(out)
            object.__setattr__(self, "_wire", wire)
        writer.write(wire)

    @classmethod
    def from_wire(cls, reader, rdlength):
        end = reader.pos + rdlength
        hash_algorithm = reader.read_u8()
        flags = reader.read_u8()
        iterations = reader.read_u16()
        salt = reader.read(reader.read_u8())
        next_hash = reader.read(reader.read_u8())
        bitmap = reader.read(end - reader.pos)
        return cls(hash_algorithm, flags, iterations, salt, next_hash, decode_bitmap(bitmap))

    def to_text(self):
        types_text = bitmap_to_text(self.types)
        base = (
            f"{self.hash_algorithm} {self.flags} {self.iterations} "
            f"{_salt_to_text(self.salt)} {b32hex_encode(self.next_hash)}"
        )
        return f"{base} {types_text}".rstrip()

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        if len(fields) < 5:
            raise ValueError(f"NSEC3 needs ≥5 fields, got {len(fields)}")
        return cls(
            int(fields[0]),
            int(fields[1]),
            int(fields[2]),
            _salt_from_text(fields[3]),
            b32hex_decode(fields[4]),
            [RdataType.from_text(t) for t in fields[5:]],
        )


@register(RdataType.NSEC3PARAM)
class NSEC3PARAM(Rdata):
    """The zone-apex record advertising the NSEC3 chain parameters.

    Per RFC 5155 §4.1.2 the flags field of NSEC3PARAM must be zero (the
    opt-out bit is meaningful only on NSEC3 records themselves).
    """

    __slots__ = ("hash_algorithm", "flags", "iterations", "salt")

    def __init__(self, hash_algorithm, flags, iterations, salt):
        iterations = int(iterations)
        if not 0 <= iterations <= 0xFFFF:
            raise ValueError(f"iterations out of range: {iterations}")
        salt = bytes(salt)
        if len(salt) > 255:
            raise ValueError("salt exceeds 255 bytes")
        object.__setattr__(self, "hash_algorithm", int(hash_algorithm))
        object.__setattr__(self, "flags", int(flags))
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "salt", salt)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def parameters(self):
        """The ``(hash_algorithm, iterations, salt)`` triple for comparisons."""
        return (self.hash_algorithm, self.iterations, self.salt)

    def write_wire(self, writer):
        _encode_params(writer, self.hash_algorithm, self.flags, self.iterations, self.salt)

    @classmethod
    def from_wire(cls, reader, rdlength):
        hash_algorithm = reader.read_u8()
        flags = reader.read_u8()
        iterations = reader.read_u16()
        salt = reader.read(reader.read_u8())
        return cls(hash_algorithm, flags, iterations, salt)

    def to_text(self):
        return (
            f"{self.hash_algorithm} {self.flags} {self.iterations} "
            f"{_salt_to_text(self.salt)}"
        )

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        if len(fields) != 4:
            raise ValueError(f"NSEC3PARAM needs 4 fields, got {len(fields)}")
        return cls(int(fields[0]), int(fields[1]), int(fields[2]), _salt_from_text(fields[3]))
