"""A and AAAA rdata (RFC 1035 §3.4.1, RFC 3596)."""

from __future__ import annotations

import ipaddress

from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType


@register(RdataType.A)
class A(Rdata):
    """An IPv4 address record."""

    __slots__ = ("address",)

    def __init__(self, address):
        object.__setattr__(self, "address", ipaddress.IPv4Address(address))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write(self.address.packed)

    @classmethod
    def from_wire(cls, reader, rdlength):
        if rdlength != 4:
            raise ValueError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(reader.read(4))

    def to_text(self):
        return str(self.address)

    @classmethod
    def from_text(cls, text):
        return cls(text.strip())


@register(RdataType.AAAA)
class AAAA(Rdata):
    """An IPv6 address record."""

    __slots__ = ("address",)

    def __init__(self, address):
        object.__setattr__(self, "address", ipaddress.IPv6Address(address))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write(self.address.packed)

    @classmethod
    def from_wire(cls, reader, rdlength):
        if rdlength != 16:
            raise ValueError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(reader.read(16))

    def to_text(self):
        return str(self.address)

    @classmethod
    def from_text(cls, text):
        return cls(text.strip())
