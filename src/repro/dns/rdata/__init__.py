"""Rdata classes, one per supported RR type.

Every concrete rdata class registers itself against its
:class:`~repro.dns.types.RdataType` code and implements:

- ``write_wire(writer)`` — append wire-format rdata (names may be compressed
  only for types RFC 3597 permits; DNSSEC-era types never compress),
- ``from_wire(reader, rdlength)`` — classmethod parser,
- ``to_text()`` / ``from_text(text)`` — presentation format,
- ``canonical_wire()`` — RFC 4034 §6.2 canonical form used for signing,
  ordering within an RRset, and RRSIG computation.

Unknown types round-trip through :class:`GenericRdata` (RFC 3597 style).
"""

from __future__ import annotations

from repro.dns.types import RdataType
from repro.dns.wire import Writer

_REGISTRY = {}


def register(rrtype):
    """Class decorator tying an rdata class to a TYPE code."""

    def wrap(cls):
        cls.rrtype = RdataType(rrtype)
        _REGISTRY[int(rrtype)] = cls
        return cls

    return wrap


def class_for(rrtype):
    """The rdata class for *rrtype*, or :class:`GenericRdata` if unknown."""
    return _REGISTRY.get(int(rrtype), GenericRdata)


class Rdata:
    """Base class for all rdata. Instances are treated as immutable."""

    rrtype = None
    __slots__ = ()

    def write_wire(self, writer):
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader, rdlength):
        raise NotImplementedError

    def to_text(self):
        raise NotImplementedError

    @classmethod
    def from_text(cls, text):
        raise NotImplementedError

    def to_wire(self):
        """Standalone (uncompressed) wire-format rdata bytes."""
        writer = Writer(enable_compression=False)
        self.write_wire(writer)
        return writer.getvalue()

    def canonical_wire(self):
        """Canonical form per RFC 4034 §6.2.

        The default is the plain uncompressed wire form; types that embed
        domain names override this to lowercase them.
        """
        return self.to_wire()

    def __eq__(self, other):
        if not isinstance(other, Rdata):
            return NotImplemented
        return (
            int(self.rrtype) == int(other.rrtype)
            and self.canonical_wire() == other.canonical_wire()
        )

    def __lt__(self, other):
        """RFC 4034 §6.3 canonical rdata ordering (within an RRset)."""
        if not isinstance(other, Rdata):
            return NotImplemented
        return self.canonical_wire() < other.canonical_wire()

    def __hash__(self):
        return hash((int(self.rrtype), self.canonical_wire()))

    def __repr__(self):
        return f"<{type(self).__name__} {self.to_text()}>"


class GenericRdata(Rdata):
    """Opaque rdata for types without a dedicated class (RFC 3597)."""

    __slots__ = ("data", "_rrtype")

    def __init__(self, rrtype, data):
        object.__setattr__(self, "_rrtype", int(rrtype))
        object.__setattr__(self, "data", bytes(data))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    @property
    def rrtype(self):
        return self._rrtype

    def write_wire(self, writer):
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader, rdlength, rrtype=None):
        return cls(rrtype if rrtype is not None else 0, reader.read(rdlength))

    def to_text(self):
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_text(cls, text, rrtype=0):
        parts = text.split()
        if len(parts) < 2 or parts[0] != "\\#":
            raise ValueError(f"not RFC 3597 generic rdata: {text!r}")
        payload = bytes.fromhex("".join(parts[2:]))
        if len(payload) != int(parts[1]):
            raise ValueError("generic rdata length mismatch")
        return cls(rrtype, payload)


def parse_rdata(rrtype, reader, rdlength):
    """Parse rdata of *rrtype* from *reader*, consuming exactly *rdlength*."""
    start = reader.pos
    cls = _REGISTRY.get(int(rrtype))
    if cls is None:
        rdata = GenericRdata(rrtype, reader.read(rdlength))
    else:
        rdata = cls.from_wire(reader, rdlength)
    consumed = reader.pos - start
    if consumed != rdlength:
        raise ValueError(
            f"rdata length mismatch for {RdataType.to_text(rrtype)}: "
            f"declared {rdlength}, consumed {consumed}"
        )
    return rdata


def rdata_from_text(rrtype, text):
    """Parse presentation-format rdata for *rrtype*."""
    cls = _REGISTRY.get(int(rrtype))
    if cls is None:
        return GenericRdata.from_text(text, rrtype=int(rrtype))
    return cls.from_text(text)


# Import concrete types for registration side effects (keep at end).
from repro.dns.rdata import address as _address  # noqa: E402,F401
from repro.dns.rdata import hostlike as _hostlike  # noqa: E402,F401
from repro.dns.rdata import soa as _soa  # noqa: E402,F401
from repro.dns.rdata import txt as _txt  # noqa: E402,F401
from repro.dns.rdata import dnssec as _dnssec  # noqa: E402,F401
from repro.dns.rdata import nsec as _nsec  # noqa: E402,F401
from repro.dns.rdata import nsec3 as _nsec3  # noqa: E402,F401
from repro.dns.rdata import opt as _opt  # noqa: E402,F401

from repro.dns.rdata.address import A, AAAA  # noqa: E402
from repro.dns.rdata.hostlike import NS, CNAME, PTR, MX, SRV  # noqa: E402
from repro.dns.rdata.soa import SOA  # noqa: E402
from repro.dns.rdata.txt import TXT  # noqa: E402
from repro.dns.rdata.dnssec import DNSKEY, RRSIG, DS  # noqa: E402
from repro.dns.rdata.nsec import NSEC  # noqa: E402
from repro.dns.rdata.nsec3 import NSEC3, NSEC3PARAM  # noqa: E402
from repro.dns.rdata.opt import OPT  # noqa: E402

__all__ = [
    "Rdata",
    "GenericRdata",
    "register",
    "class_for",
    "parse_rdata",
    "rdata_from_text",
    "A",
    "AAAA",
    "NS",
    "CNAME",
    "PTR",
    "MX",
    "SRV",
    "SOA",
    "TXT",
    "DNSKEY",
    "RRSIG",
    "DS",
    "NSEC",
    "NSEC3",
    "NSEC3PARAM",
    "OPT",
]
