"""OPT pseudo-RR rdata (RFC 6891): a sequence of EDNS options.

The OPT record is special: its CLASS field carries the sender's UDP payload
size and its TTL packs the extended RCODE, EDNS version, and the DO bit.
That header-level handling lives in :mod:`repro.dns.edns` /
:mod:`repro.dns.message`; this class only models the option list rdata.
"""

from __future__ import annotations

from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType


class EdnsOption:
    """A single EDNS option: ``(code, data)``."""

    __slots__ = ("code", "data")

    def __init__(self, code, data=b""):
        object.__setattr__(self, "code", int(code))
        object.__setattr__(self, "data", bytes(data))

    def __setattr__(self, name, value):
        raise AttributeError("EdnsOption is immutable")

    def __eq__(self, other):
        if not isinstance(other, EdnsOption):
            return NotImplemented
        return self.code == other.code and self.data == other.data

    def __hash__(self):
        return hash((self.code, self.data))

    def __repr__(self):
        return f"EdnsOption(code={self.code}, data={self.data.hex()!r})"


@register(RdataType.OPT)
class OPT(Rdata):
    """OPT rdata: zero or more EDNS options."""

    __slots__ = ("options",)

    def __init__(self, options=()):
        object.__setattr__(self, "options", tuple(options))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def get_options(self, code):
        """All options with the given option code."""
        return [opt for opt in self.options if opt.code == int(code)]

    def write_wire(self, writer):
        for option in self.options:
            writer.write_u16(option.code)
            writer.write_u16(len(option.data))
            writer.write(option.data)

    @classmethod
    def from_wire(cls, reader, rdlength):
        end = reader.pos + rdlength
        options = []
        while reader.pos < end:
            code = reader.read_u16()
            length = reader.read_u16()
            options.append(EdnsOption(code, reader.read(length)))
        return cls(options)

    def to_text(self):
        return " ".join(f"{o.code}:{o.data.hex()}" for o in self.options) or "(empty)"

    @classmethod
    def from_text(cls, text):
        text = text.strip()
        if text in ("", "(empty)"):
            return cls()
        options = []
        for item in text.split():
            code, __, data = item.partition(":")
            options.append(EdnsOption(int(code), bytes.fromhex(data)))
        return cls(options)
