"""NSEC rdata (RFC 4034 §4)."""

from __future__ import annotations

from repro.dns.bitmap import bitmap_to_text, decode_bitmap, encode_bitmap
from repro.dns.name import Name
from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType
from repro.dns.wire import Writer


@register(RdataType.NSEC)
class NSEC(Rdata):
    """The plain-text authenticated denial record.

    ``next_name`` is the next owner name in the zone's canonical order;
    ``types`` is the set of RR types present at this owner. Exposing the
    next *plain* name is what makes NSEC zone-walkable — the problem NSEC3
    was designed to mitigate (paper §2.2).
    """

    __slots__ = ("next_name", "types", "_wire")

    def __init__(self, next_name, types):
        object.__setattr__(self, "next_name", Name.from_text(next_name))
        object.__setattr__(self, "types", tuple(sorted(set(int(t) for t in types))))
        object.__setattr__(self, "_wire", None)

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def covers_type(self, rrtype):
        return int(rrtype) in self.types

    def write_wire(self, writer):
        # next_name is never compressed (RFC 3597/4034), so the rdata is
        # position-independent and the encoding is memoized.
        wire = self._wire
        if wire is None:
            wire = self.next_name.to_wire() + encode_bitmap(self.types)
            object.__setattr__(self, "_wire", wire)
        writer.write(wire)

    @classmethod
    def from_wire(cls, reader, rdlength):
        end = reader.pos + rdlength
        next_name = reader.read_name()
        bitmap = reader.read(end - reader.pos)
        return cls(next_name, decode_bitmap(bitmap))

    def to_text(self):
        return f"{self.next_name.to_text()} {bitmap_to_text(self.types)}".rstrip()

    @classmethod
    def from_text(cls, text):
        fields = text.split()
        return cls(fields[0], [RdataType.from_text(t) for t in fields[1:]])

    def canonical_wire(self):
        writer = Writer(enable_compression=False)
        writer.write(self.next_name.canonical_wire())
        writer.write(encode_bitmap(self.types))
        return writer.getvalue()
