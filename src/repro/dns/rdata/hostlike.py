"""Rdata types whose body is (mostly) a single domain name: NS, CNAME, PTR, MX, SRV."""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.rdata import Rdata, register
from repro.dns.types import RdataType
from repro.dns.wire import Writer


class _SingleName(Rdata):
    """Shared implementation for NS/CNAME/PTR."""

    __slots__ = ("target",)
    _compressible = True

    def __init__(self, target):
        object.__setattr__(self, "target", Name.from_text(target))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write_name(self.target, compress=self._compressible)

    @classmethod
    def from_wire(cls, reader, rdlength):
        return cls(reader.read_name())

    def to_text(self):
        return self.target.to_text()

    @classmethod
    def from_text(cls, text):
        return cls(text.strip())

    def canonical_wire(self):
        # RFC 4034 §6.2: embedded names are lowercased and never compressed.
        return self.target.canonical_wire()


@register(RdataType.NS)
class NS(_SingleName):
    """A delegation name server record."""


@register(RdataType.CNAME)
class CNAME(_SingleName):
    """A canonical-name alias record."""


@register(RdataType.PTR)
class PTR(_SingleName):
    """A pointer record (reverse DNS)."""


@register(RdataType.MX)
class MX(Rdata):
    """A mail exchanger record."""

    __slots__ = ("preference", "exchange")

    def __init__(self, preference, exchange):
        object.__setattr__(self, "preference", int(preference))
        object.__setattr__(self, "exchange", Name.from_text(exchange))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write_u16(self.preference)
        writer.write_name(self.exchange)

    @classmethod
    def from_wire(cls, reader, rdlength):
        preference = reader.read_u16()
        return cls(preference, reader.read_name())

    def to_text(self):
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_text(cls, text):
        preference, exchange = text.split()
        return cls(int(preference), exchange)

    def canonical_wire(self):
        writer = Writer(enable_compression=False)
        writer.write_u16(self.preference)
        writer.write(self.exchange.canonical_wire())
        return writer.getvalue()


@register(RdataType.SRV)
class SRV(Rdata):
    """A service locator record (RFC 2782)."""

    __slots__ = ("priority", "weight", "port", "target")

    def __init__(self, priority, weight, port, target):
        object.__setattr__(self, "priority", int(priority))
        object.__setattr__(self, "weight", int(weight))
        object.__setattr__(self, "port", int(port))
        object.__setattr__(self, "target", Name.from_text(target))

    def __setattr__(self, name, value):
        raise AttributeError("rdata objects are immutable")

    def write_wire(self, writer):
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        writer.write_name(self.target, compress=False)

    @classmethod
    def from_wire(cls, reader, rdlength):
        priority = reader.read_u16()
        weight = reader.read_u16()
        port = reader.read_u16()
        return cls(priority, weight, port, reader.read_name())

    def to_text(self):
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    @classmethod
    def from_text(cls, text):
        priority, weight, port, target = text.split()
        return cls(int(priority), int(weight), int(port), target)

    def canonical_wire(self):
        writer = Writer(enable_compression=False)
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        writer.write(self.target.canonical_wire())
        return writer.getvalue()
