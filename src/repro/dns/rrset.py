"""RRsets: all records sharing an owner name, type, and class (RFC 2181 §5)."""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.types import RdataClass, RdataType


class RRset:
    """A mutable set of rdata under one ``(name, type, class, ttl)``.

    DNSSEC signs whole RRsets, so this is the unit that
    :mod:`repro.dnssec.signer` and the validator operate on.
    """

    __slots__ = ("name", "rrtype", "rdclass", "ttl", "rdatas", "_canonical_memo")

    def __init__(self, name, rrtype, ttl, rdatas=(), rdclass=RdataClass.IN):
        self.name = Name.from_text(name)
        if type(rrtype) is RdataType:
            self.rrtype = rrtype
        else:
            value = int(rrtype)
            self.rrtype = (
                RdataType(value) if value in RdataType._value2member_map_ else value
            )
        self.rdclass = rdclass if type(rdclass) is RdataClass else RdataClass(int(rdclass))
        self.ttl = int(ttl)
        self.rdatas = list(rdatas)
        self._canonical_memo = None

    def add(self, rdata):
        """Add *rdata* if not already present (RRsets are sets)."""
        if rdata not in self.rdatas:
            self.rdatas.append(rdata)
            self._canonical_memo = None
        return self

    def __iter__(self):
        return iter(self.rdatas)

    def __len__(self):
        return len(self.rdatas)

    def __bool__(self):
        return bool(self.rdatas)

    def __getitem__(self, index):
        return self.rdatas[index]

    def key(self):
        """Dictionary key identifying this RRset within a message or zone."""
        return (self.name, int(self.rrtype), int(self.rdclass))

    def sorted_rdatas(self):
        """Rdatas in RFC 4034 §6.3 canonical order (sorted by canonical wire form)."""
        return sorted(self.rdatas, key=lambda r: r.canonical_wire())

    def canonical_memo_get(self, key):
        """Cached canonical signing wire for *key*, or None.

        The memo key must embed ``len(self.rdatas)`` (see
        :func:`repro.dnssec.signer.canonical_rrset_wire`): rebinding or
        slice-editing :attr:`rdatas` bypasses :meth:`add`, and a length
        change is the only such edit the codebase performs.
        """
        memo = self._canonical_memo
        return memo.get(key) if memo is not None else None

    def canonical_memo_put(self, key, wire):
        memo = self._canonical_memo
        if memo is None:
            memo = self._canonical_memo = {}
        elif len(memo) >= 8:
            # A given RRset is signed under at most a couple of
            # (owner, TTL) combinations; clear rather than grow.
            memo.clear()
        memo[key] = wire

    def copy(self, ttl=None):
        return RRset(
            self.name,
            self.rrtype,
            self.ttl if ttl is None else ttl,
            list(self.rdatas),
            self.rdclass,
        )

    def to_text(self):
        lines = []
        type_text = RdataType.to_text(self.rrtype)
        for rdata in self.rdatas:
            lines.append(
                f"{self.name.to_text()} {self.ttl} {self.rdclass.name} "
                f"{type_text} {rdata.to_text()}"
            )
        return "\n".join(lines)

    def __eq__(self, other):
        if not isinstance(other, RRset):
            return NotImplemented
        return (
            self.key() == other.key()
            and self.ttl == other.ttl
            and sorted(self.rdatas, key=lambda r: r.canonical_wire())
            == sorted(other.rdatas, key=lambda r: r.canonical_wire())
        )

    def __repr__(self):
        return (
            f"<RRset {self.name} {RdataType.to_text(self.rrtype)} "
            f"ttl={self.ttl} n={len(self.rdatas)}>"
        )
