"""EDNS(0) support (RFC 6891) and Extended DNS Errors (RFC 8914).

The paper measures how resolvers signal NSEC3-related failures. RFC 8914
defines INFO-CODE 27 (*Unsupported NSEC3 Iterations Value*) and RFC 9276
Items 10/11 say when a resolver SHOULD attach it. This module models the
OPT pseudo-record's header fields and the EDE option payload.
"""

from __future__ import annotations

import struct

from repro.dns.rdata.opt import OPT, EdnsOption

#: EDNS option code for Extended DNS Errors.
OPTION_EDE = 15

# -- Extended DNS Error INFO-CODEs relevant to the study (RFC 8914 §4) ----
EDE_OTHER = 0
EDE_STALE_ANSWER = 3
EDE_DNSSEC_INDETERMINATE = 5
EDE_DNSSEC_BOGUS = 6
EDE_SIGNATURE_EXPIRED = 7
EDE_NSEC_MISSING = 12
EDE_UNSUPPORTED_NSEC3_ITERATIONS = 27

EDE_NAMES = {
    EDE_OTHER: "Other",
    EDE_STALE_ANSWER: "Stale Answer",
    EDE_DNSSEC_INDETERMINATE: "DNSSEC Indeterminate",
    EDE_DNSSEC_BOGUS: "DNSSEC Bogus",
    EDE_SIGNATURE_EXPIRED: "Signature Expired",
    EDE_NSEC_MISSING: "NSEC Missing",
    EDE_UNSUPPORTED_NSEC3_ITERATIONS: "Unsupported NSEC3 Iterations Value",
}


class ExtendedError:
    """An Extended DNS Error: INFO-CODE plus optional EXTRA-TEXT."""

    __slots__ = ("info_code", "extra_text")

    def __init__(self, info_code, extra_text=""):
        object.__setattr__(self, "info_code", int(info_code))
        object.__setattr__(self, "extra_text", str(extra_text))

    def __setattr__(self, name, value):
        raise AttributeError("ExtendedError is immutable")

    def to_option(self):
        payload = struct.pack("!H", self.info_code) + self.extra_text.encode("utf-8")
        return EdnsOption(OPTION_EDE, payload)

    @classmethod
    def from_option(cls, option):
        if option.code != OPTION_EDE:
            raise ValueError(f"not an EDE option (code {option.code})")
        if len(option.data) < 2:
            raise ValueError("EDE option payload too short")
        (info_code,) = struct.unpack("!H", option.data[:2])
        extra = option.data[2:].decode("utf-8", "replace")
        return cls(info_code, extra)

    def __eq__(self, other):
        if not isinstance(other, ExtendedError):
            return NotImplemented
        return self.info_code == other.info_code and self.extra_text == other.extra_text

    def __hash__(self):
        return hash((self.info_code, self.extra_text))

    def __repr__(self):
        name = EDE_NAMES.get(self.info_code, "?")
        return f"ExtendedError({self.info_code} {name!r}, {self.extra_text!r})"


class Edns:
    """The EDNS state attached to a message (decoded OPT pseudo-record)."""

    __slots__ = ("payload_size", "version", "dnssec_ok", "ext_rcode_high", "options")

    def __init__(self, payload_size=1232, version=0, dnssec_ok=False, options=()):
        self.payload_size = int(payload_size)
        self.version = int(version)
        self.dnssec_ok = bool(dnssec_ok)
        self.ext_rcode_high = 0
        self.options = list(options)

    def add_extended_error(self, info_code, extra_text=""):
        self.options.append(ExtendedError(info_code, extra_text).to_option())

    def extended_errors(self):
        """All EDE payloads carried in this OPT record."""
        found = []
        for option in self.options:
            if option.code == OPTION_EDE and len(option.data) >= 2:
                found.append(ExtendedError.from_option(option))
        return found

    def ttl_field(self, rcode):
        """Pack extended-RCODE-high/version/DO into the OPT TTL."""
        high = (int(rcode) >> 4) & 0xFF
        flags = 0x8000 if self.dnssec_ok else 0
        return (high << 24) | (self.version << 16) | flags

    def to_opt_rdata(self):
        return OPT(tuple(self.options))

    @classmethod
    def from_opt(cls, rdata, klass, ttl):
        """Rebuild EDNS state from a parsed OPT record's fields."""
        edns = cls(
            payload_size=klass,
            version=(ttl >> 16) & 0xFF,
            dnssec_ok=bool(ttl & 0x8000),
            options=rdata.options,
        )
        edns.ext_rcode_high = (ttl >> 24) & 0xFF
        return edns
