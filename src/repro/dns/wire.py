"""Low-level wire reading and writing, including RFC 1035 name compression."""

from __future__ import annotations

import struct

from repro.dns.name import Name, MAX_NAME_WIRE_LENGTH


class WireError(ValueError):
    """Raised when a DNS message cannot be parsed from wire bytes."""


#: Decode-time ceiling on the summed header section counts. Each count
#: field can claim up to 65,535 records; garbage from the Corruption
#: fault model (or a hostile server) could otherwise drive the parser
#: through ~256 K record headers per datagram. Generous on purpose: a
#: single-message AXFR of any zone this testbed builds stays far below it.
MAX_DECODE_RECORDS = 16_384

#: Decode-time ceiling on EDNS options carried in one OPT record. Real
#: messages carry a handful (EDE, cookies); hundreds is an attack shape.
MAX_EDNS_OPTIONS = 64


class Writer:
    """Accumulates wire bytes and performs name compression.

    Compression targets are remembered per canonical (lowercased) suffix;
    pointers may only reference offsets below 0x4000 per RFC 1035.
    """

    def __init__(self, enable_compression=True):
        self._buf = bytearray()
        self._targets = {}
        self._compress = enable_compression

    def __len__(self):
        return len(self._buf)

    def getvalue(self):
        return bytes(self._buf)

    def write(self, data):
        self._buf.extend(data)

    def write_u8(self, value):
        self._buf.append(value & 0xFF)

    def write_u16(self, value):
        buf = self._buf
        buf.append((value >> 8) & 0xFF)
        buf.append(value & 0xFF)

    def write_u32(self, value):
        buf = self._buf
        buf.append((value >> 24) & 0xFF)
        buf.append((value >> 16) & 0xFF)
        buf.append((value >> 8) & 0xFF)
        buf.append(value & 0xFF)

    def set_u16(self, offset, value):
        """Patch a previously written 16-bit field (e.g. RDLENGTH)."""
        self._buf[offset : offset + 2] = struct.pack("!H", value & 0xFFFF)

    def write_name(self, name, compress=None):
        """Write *name*, emitting a compression pointer when a suffix matches.

        Suffixes are keyed by slices of the name's memoized canonical key
        (reversed lowercased labels) rather than re-lowercasing per write;
        reversal is a bijection so the target map is equivalent.
        """
        if compress is None:
            compress = self._compress
        labels = name.labels
        key = name._key()
        count = len(labels)
        buf = self._buf
        targets = self._targets
        for index in range(count + 1):
            suffix_key = key[: count - index]
            if compress and suffix_key in targets:
                pointer = targets[suffix_key]
                buf.append(0xC0 | (pointer >> 8))
                buf.append(pointer & 0xFF)
                return
            if index == count:
                buf.append(0)
                return
            if len(buf) < 0x4000 and suffix_key:
                targets[suffix_key] = len(buf)
            label = labels[index]
            buf.append(len(label))
            buf.extend(label)


class Reader:
    """Sequential reader over a full DNS message with pointer chasing."""

    def __init__(self, data):
        self.data = bytes(data)
        self.pos = 0

    def remaining(self):
        return len(self.data) - self.pos

    def _need(self, count):
        if self.pos + count > len(self.data):
            raise WireError(
                f"truncated message: need {count} bytes at offset {self.pos}"
            )

    def read(self, count):
        self._need(count)
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def read_u8(self):
        pos = self.pos
        data = self.data
        if pos >= len(data):
            raise WireError(f"truncated message: need 1 byte at offset {pos}")
        self.pos = pos + 1
        return data[pos]

    def read_u16(self):
        pos = self.pos
        data = self.data
        if pos + 2 > len(data):
            raise WireError(f"truncated message: need 2 bytes at offset {pos}")
        self.pos = pos + 2
        return (data[pos] << 8) | data[pos + 1]

    def read_u32(self):
        pos = self.pos
        data = self.data
        if pos + 4 > len(data):
            raise WireError(f"truncated message: need 4 bytes at offset {pos}")
        self.pos = pos + 4
        return int.from_bytes(data[pos : pos + 4], "big")

    def read_name(self):
        """Read a (possibly compressed) name starting at the current offset."""
        labels = []
        pos = self.pos
        jumped = False
        seen = None  # allocated lazily: most names contain no pointer
        total = 0
        while True:
            if pos >= len(self.data):
                raise WireError("name runs past end of message")
            length = self.data[pos]
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if seen is None:
                    seen = {target}
                elif target in seen:
                    raise WireError("compression pointer loop")
                else:
                    seen.add(target)
                if not jumped:
                    self.pos = pos + 2
                    jumped = True
                pos = target
            elif length & 0xC0:
                raise WireError(f"reserved label type 0x{length:02x}")
            elif length == 0:
                if not jumped:
                    self.pos = pos + 1
                break
            else:
                if pos + 1 + length > len(self.data):
                    raise WireError("label runs past end of message")
                labels.append(self.data[pos + 1 : pos + 1 + length])
                total += length + 1
                if total > MAX_NAME_WIRE_LENGTH:
                    raise WireError("name exceeds 255 octets")
                pos += 1 + length
        # The loop established every Name invariant (labels non-empty,
        # ≤ 63 octets by the 0xC0 tag check, total ≤ 255), so skip the
        # revalidating constructor on this hot path.
        return Name._trusted(tuple(labels))
