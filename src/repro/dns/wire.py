"""Low-level wire reading and writing, including RFC 1035 name compression."""

from __future__ import annotations

import struct

from repro.dns.name import Name, NameError_, MAX_NAME_WIRE_LENGTH


class WireError(ValueError):
    """Raised when a DNS message cannot be parsed from wire bytes."""


#: Decode-time ceiling on the summed header section counts. Each count
#: field can claim up to 65,535 records; garbage from the Corruption
#: fault model (or a hostile server) could otherwise drive the parser
#: through ~256 K record headers per datagram. Generous on purpose: a
#: single-message AXFR of any zone this testbed builds stays far below it.
MAX_DECODE_RECORDS = 16_384

#: Decode-time ceiling on EDNS options carried in one OPT record. Real
#: messages carry a handful (EDE, cookies); hundreds is an attack shape.
MAX_EDNS_OPTIONS = 64


class Writer:
    """Accumulates wire bytes and performs name compression.

    Compression targets are remembered per canonical (lowercased) suffix;
    pointers may only reference offsets below 0x4000 per RFC 1035.
    """

    def __init__(self, enable_compression=True):
        self._buf = bytearray()
        self._targets = {}
        self._compress = enable_compression

    def __len__(self):
        return len(self._buf)

    def getvalue(self):
        return bytes(self._buf)

    def write(self, data):
        self._buf.extend(data)

    def write_u8(self, value):
        self._buf.append(value & 0xFF)

    def write_u16(self, value):
        self._buf.extend(struct.pack("!H", value & 0xFFFF))

    def write_u32(self, value):
        self._buf.extend(struct.pack("!I", value & 0xFFFFFFFF))

    def set_u16(self, offset, value):
        """Patch a previously written 16-bit field (e.g. RDLENGTH)."""
        self._buf[offset : offset + 2] = struct.pack("!H", value & 0xFFFF)

    def write_name(self, name, compress=None):
        """Write *name*, emitting a compression pointer when a suffix matches."""
        if compress is None:
            compress = self._compress
        labels = name.labels
        for index in range(len(labels) + 1):
            suffix_key = tuple(label.lower() for label in labels[index:])
            if compress and suffix_key in self._targets:
                pointer = self._targets[suffix_key]
                self.write_u16(0xC000 | pointer)
                return
            if index == len(labels):
                self.write_u8(0)
                return
            if len(self._buf) < 0x4000 and suffix_key:
                self._targets[suffix_key] = len(self._buf)
            label = labels[index]
            self.write_u8(len(label))
            self.write(label)


class Reader:
    """Sequential reader over a full DNS message with pointer chasing."""

    def __init__(self, data):
        self.data = bytes(data)
        self.pos = 0

    def remaining(self):
        return len(self.data) - self.pos

    def _need(self, count):
        if self.pos + count > len(self.data):
            raise WireError(
                f"truncated message: need {count} bytes at offset {self.pos}"
            )

    def read(self, count):
        self._need(count)
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def read_u8(self):
        return self.read(1)[0]

    def read_u16(self):
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self):
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self):
        """Read a (possibly compressed) name starting at the current offset."""
        labels = []
        pos = self.pos
        jumped = False
        seen = set()
        total = 0
        while True:
            if pos >= len(self.data):
                raise WireError("name runs past end of message")
            length = self.data[pos]
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if target in seen:
                    raise WireError("compression pointer loop")
                seen.add(target)
                if not jumped:
                    self.pos = pos + 2
                    jumped = True
                pos = target
            elif length & 0xC0:
                raise WireError(f"reserved label type 0x{length:02x}")
            elif length == 0:
                if not jumped:
                    self.pos = pos + 1
                break
            else:
                if pos + 1 + length > len(self.data):
                    raise WireError("label runs past end of message")
                labels.append(self.data[pos + 1 : pos + 1 + length])
                total += length + 1
                if total > MAX_NAME_WIRE_LENGTH:
                    raise WireError("name exceeds 255 octets")
                pos += 1 + length
        try:
            return Name(labels)
        except NameError_ as exc:
            raise WireError(str(exc)) from exc
